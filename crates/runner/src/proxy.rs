//! Scale-out proxies (§5.4 of the paper).
//!
//! A proxy pair transparently replaces a shared-memory channel with a network
//! connection: each side connects to its local component through an ordinary
//! channel endpoint and forwards every message (data and SYNC) to its peer
//! proxy, which re-injects it locally. Components cannot tell the difference;
//! only one extra hop of forwarding latency (hidden inside the modelled link
//! latency) and one proxy thread per side are added.
//!
//! The paper implements two proxy flavours, and so does this reimplementation
//! (plus the co-located shared-memory transport the paper uses *instead of*
//! proxies for same-host links):
//!
//! * **Sockets** ([`proxy_channel_over_tcp`], [`ProxyKind::Tcp`]) — messages
//!   are serialized to the wire format and streamed over a TCP connection
//!   (Nagle disabled), with adaptive batching: every message available in the
//!   local queue is forwarded in one write.
//! * **RDMA-style** ([`ProxyKind::Rdma`]) — the paper's RDMA proxy writes
//!   messages directly into the remote queue. Without RDMA hardware we model
//!   this as direct placement into the peer component's queue with no
//!   serialization step, preserving the property that matters: lower
//!   per-message CPU overhead and latency than the sockets proxy.
//! * **Shared memory** ([`ProxyKind::Shm`]) — a file-backed mmap region
//!   carrying one fixed-slot SPSC ring per direction (`crate::shm`), the
//!   §5.2 queue layout made cross-process. No serialization and no syscalls
//!   on the data path; this is what `crate::dist` uses for co-located
//!   partitions (`--transport shm`/`auto`, see [`crate::transport`]).
//!
//! Both flavours report [`ProxyStats`] so harnesses can show batching
//! behaviour and forwarded volume (§7.4.2).
//!
//! When a proxy connection crosses process (or machine) boundaries — the
//! distributed mode of `crate::dist` — the connecting side opens the stream
//! with a length-prefixed **handshake frame** ([`write_handshake`]) naming
//! the link and carrying its serialized [`ChannelParams`]; the accepting side
//! verifies both ([`read_handshake`]) before any simulation message flows, so
//! mismatched wiring fails fast instead of corrupting a run.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use simbricks_base::{channel_pair, ChannelEnd, ChannelParams, OwnedMsg};

/// Which transport a proxy pair uses between the two simulation "hosts".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyKind {
    /// Serialize messages and stream them over a loopback/real TCP socket.
    Tcp,
    /// Directly place messages into the remote queue (RDMA-write stand-in).
    Rdma,
    /// Memory-mapped shared-memory SPSC rings (`crate::shm`): the paper's
    /// co-located fast path — no serialization, no syscalls per message.
    Shm,
}

/// Counters shared by the forwarding threads of a proxy pair or transport
/// (snapshot through [`ProxyStats`]).
#[derive(Debug, Default)]
pub struct ProxyCounters {
    forwarded: AtomicU64,
    bytes: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
}

/// Cooperative shutdown signal shared by the forwarding threads of a proxy.
///
/// Forwarding loops poll the flag every iteration (including inside
/// backpressure retry loops), so raising it unblocks threads that would
/// otherwise spin forever waiting for a stalled peer. Registered TCP streams
/// are also shut down, which turns any in-flight read into an immediate EOF.
#[derive(Default)]
pub struct ShutdownSignal {
    flag: AtomicBool,
    streams: Mutex<Vec<TcpStream>>,
}

impl ShutdownSignal {
    /// Keep a clone of `stream` so [`ShutdownSignal::signal`] can close it.
    pub(crate) fn register_stream(&self, stream: &TcpStream) {
        if let Ok(c) = stream.try_clone() {
            // io-ok: poisoned only if a holder already panicked
            self.streams.lock().unwrap().push(c);
        }
    }

    /// Raise the flag and close every registered stream.
    pub(crate) fn signal(&self) {
        self.flag.store(true, Ordering::Release);
        // io-ok: poisoned only if a holder already panicked
        for s in self.streams.lock().unwrap().iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    pub(crate) fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A snapshot of the work a proxy pair performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Messages forwarded (both directions, data and SYNC).
    pub forwarded: u64,
    /// Wire bytes forwarded (0 for the RDMA-style proxy: no serialization).
    pub bytes: u64,
    /// Number of forwarding batches (writes / placement rounds).
    pub batches: u64,
    /// Largest number of messages coalesced into one batch.
    pub max_batch: u64,
}

impl ProxyStats {
    /// Mean messages per forwarding batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.forwarded as f64 / self.batches as f64
        }
    }
}

/// Handle to a running proxy: the forwarding threads plus their shared
/// statistics and shutdown signal.
///
/// Threads exit on their own once both component endpoints are gone (or the
/// TCP peer closes); [`ProxyHandle::join`] waits for that. When one thread of
/// a pair exits it poisons the shared shutdown signal, so its sibling winds
/// down too and `join` cannot hang on a half-dead pair. Dropping the handle
/// signals shutdown and detaches the threads, so an abandoned handle never
/// leaks spinning forwarders.
pub struct ProxyHandle {
    kind: ProxyKind,
    counters: Arc<ProxyCounters>,
    shutdown: Arc<ShutdownSignal>,
    threads: Vec<JoinHandle<()>>,
}

impl ProxyHandle {
    pub(crate) fn from_parts(
        kind: ProxyKind,
        counters: Arc<ProxyCounters>,
        shutdown: Arc<ShutdownSignal>,
        threads: Vec<JoinHandle<()>>,
    ) -> Self {
        ProxyHandle {
            kind,
            counters,
            shutdown,
            threads,
        }
    }

    pub fn kind(&self) -> ProxyKind {
        self.kind
    }

    /// A point-in-time snapshot of the forwarding counters.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            forwarded: self.counters.forwarded.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            max_batch: self.counters.max_batch.load(Ordering::Relaxed),
        }
    }

    /// Wait for the forwarding threads to exit. They exit once their local
    /// component endpoint is gone, the TCP peer closed, the sibling thread
    /// exited (pair poisoning), or [`ProxyHandle::shutdown`] was requested —
    /// so `join` returns even when one side stalls forever.
    pub fn join(mut self) -> ProxyStats {
        for t in std::mem::take(&mut self.threads) {
            let _ = t.join();
        }
        self.stats()
    }

    /// Explicitly stop the forwarding threads (poison the channel loops and
    /// shut the TCP streams down), then wait for them and return the final
    /// statistics.
    pub fn shutdown(mut self) -> ProxyStats {
        self.shutdown.signal();
        for t in std::mem::take(&mut self.threads) {
            let _ = t.join();
        }
        self.stats()
    }

    /// Detach the threads from the handle without signalling shutdown (legacy
    /// [`proxy_channel_over_tcp`] interface).
    fn detach(mut self) -> Vec<JoinHandle<()>> {
        std::mem::take(&mut self.threads)
    }
}

impl Drop for ProxyHandle {
    fn drop(&mut self) {
        // Only signal when threads are still attached: `join`/`shutdown` take
        // them out first, and `detach` deliberately leaves them running.
        if !self.threads.is_empty() {
            self.shutdown.signal();
        }
    }
}

impl ProxyCounters {
    pub(crate) fn record_batch(&self, msgs: u64, bytes: u64) {
        if msgs == 0 {
            return;
        }
        self.forwarded.fetch_add(msgs, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(msgs, Ordering::Relaxed);
    }
}

// ----- handshake framing -----------------------------------------------------

/// Magic bytes opening every proxy handshake frame.
const HANDSHAKE_MAGIC: [u8; 4] = *b"SBPX";
/// Version of the handshake frame layout.
const HANDSHAKE_VERSION: u8 = 1;
/// Upper bound on a handshake frame (the link name is the only variable part).
const HANDSHAKE_MAX: usize = 4096;

/// Write the length-prefixed proxy handshake frame: `u32` payload length,
/// then magic `"SBPX"`, a version byte, the `u16`-length-prefixed link name,
/// and the serialized [`ChannelParams`]. Sent by the connecting side of a
/// distributed proxy link before any simulation message.
pub fn write_handshake(
    stream: &mut TcpStream,
    link: &str,
    params: &ChannelParams,
) -> io::Result<()> {
    let name = link.as_bytes();
    // Cap against the reader's frame bound so an over-long link name fails
    // here, at the writer, instead of as a confusing handshake rejection on
    // the peer.
    if name.len() > HANDSHAKE_MAX - 7 - ChannelParams::WIRE_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "link name too long"));
    }
    let mut payload = Vec::with_capacity(7 + name.len() + ChannelParams::WIRE_LEN);
    payload.extend_from_slice(&HANDSHAKE_MAGIC);
    payload.push(HANDSHAKE_VERSION);
    payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
    payload.extend_from_slice(name);
    payload.extend_from_slice(&params.to_wire());
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)
}

/// Read and validate a handshake frame written by [`write_handshake`],
/// returning the link name and the peer's channel parameters. The stream must
/// be in blocking mode. Fails with `InvalidData` on bad magic, version, or
/// framing.
pub fn read_handshake(stream: &mut TcpStream) -> io::Result<(String, ChannelParams)> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if !(7 + ChannelParams::WIRE_LEN..=HANDSHAKE_MAX).contains(&len) {
        return Err(bad("handshake frame length out of range"));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    if payload[0..4] != HANDSHAKE_MAGIC {
        return Err(bad("handshake magic mismatch"));
    }
    if payload[4] != HANDSHAKE_VERSION {
        return Err(bad("handshake version mismatch"));
    }
    // io-ok: infallible - the slice is exactly 2 bytes
    let name_len = u16::from_le_bytes(payload[5..7].try_into().unwrap()) as usize;
    if payload.len() != 7 + name_len + ChannelParams::WIRE_LEN {
        return Err(bad("handshake frame length inconsistent"));
    }
    let name = String::from_utf8(payload[7..7 + name_len].to_vec())
        .map_err(|_| bad("handshake link name not utf-8"))?;
    let params = ChannelParams::from_wire(&payload[7 + name_len..])
        .ok_or_else(|| bad("handshake channel params invalid"))?;
    Ok((name, params))
}

// ----- proxy construction ----------------------------------------------------

/// Bridge a channel with a proxy pair of the requested kind. Returns the two
/// channel endpoints the components use plus the [`ProxyHandle`]. The
/// endpoints behave exactly like a directly connected [`channel_pair`]; every
/// message crosses the proxy pair, as in distributed SimBricks simulations.
pub fn proxy_pair(
    kind: ProxyKind,
    params: ChannelParams,
) -> std::io::Result<(ChannelEnd, ChannelEnd, ProxyHandle)> {
    match kind {
        ProxyKind::Tcp => proxy_pair_tcp(params),
        ProxyKind::Rdma => Ok(proxy_pair_rdma(params)),
        ProxyKind::Shm => proxy_pair_shm(params),
    }
}

/// Bridge a channel over a file-backed shared-memory ring pair (the paper's
/// co-located transport). Both sides map the same region; the attach step
/// validates the same handshake metadata as the TCP proxy's SBPX frame.
fn proxy_pair_shm(
    params: ChannelParams,
) -> std::io::Result<(ChannelEnd, ChannelEnd, ProxyHandle)> {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let (for_component_a, proxy_a_local) = channel_pair(params);
    let (for_component_b, proxy_b_local) = channel_pair(params);
    let path = std::env::temp_dir().join(format!(
        "simbricks-proxy-{}-{}.shm",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let shutdown = Arc::new(ShutdownSignal::default());
    let a_end = crate::shm::create_region(&path, "proxy-pair", params)?;
    let b_end = crate::shm::attach_region(
        &path,
        "proxy-pair",
        params,
        std::time::Instant::now() + std::time::Duration::from_secs(5),
        &shutdown,
    )?;
    let counters = Arc::new(ProxyCounters::default());
    let h1 = crate::transport::spawn_transport_forwarder(
        "proxy-shm-a".into(),
        Box::new(crate::shm::ShmTransport::ready(a_end)),
        proxy_a_local,
        counters.clone(),
        shutdown.clone(),
    );
    let h2 = crate::transport::spawn_transport_forwarder(
        "proxy-shm-b".into(),
        Box::new(crate::shm::ShmTransport::ready(b_end)),
        proxy_b_local,
        counters.clone(),
        shutdown.clone(),
    );
    Ok((
        for_component_a,
        for_component_b,
        ProxyHandle::from_parts(ProxyKind::Shm, counters, shutdown, vec![h1, h2]),
    ))
}

/// Bridge a channel over TCP (sockets proxy). Compatibility wrapper around
/// [`proxy_pair`] returning raw join handles; the forwarding threads are
/// detached and exit once both component endpoints are gone.
pub fn proxy_channel_over_tcp(
    params: ChannelParams,
) -> std::io::Result<(ChannelEnd, ChannelEnd, Vec<JoinHandle<()>>)> {
    let (a, b, handle) = proxy_pair_tcp(params)?;
    Ok((a, b, handle.detach()))
}

fn proxy_pair_tcp(
    params: ChannelParams,
) -> std::io::Result<(ChannelEnd, ChannelEnd, ProxyHandle)> {
    // Local channel stubs: component A <-> proxy A, component B <-> proxy B.
    let (for_component_a, proxy_a_local) = channel_pair(params);
    let (for_component_b, proxy_b_local) = channel_pair(params);

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut connect = TcpStream::connect(addr)?;
    let (mut accepted, _) = listener.accept()?;
    // Same handshake as a cross-process link, so the framing is exercised on
    // every in-process proxy pair too.
    write_handshake(&mut connect, "proxy-pair", &params)?;
    let (link, peer_params) = read_handshake(&mut accepted)?;
    if link != "proxy-pair" || peer_params != params {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "proxy pair handshake mismatch",
        ));
    }
    connect.set_nodelay(true)?;
    accepted.set_nodelay(true)?;

    let counters = Arc::new(ProxyCounters::default());
    let shutdown = Arc::new(ShutdownSignal::default());
    shutdown.register_stream(&connect);
    shutdown.register_stream(&accepted);
    let h1 = spawn_tcp_forwarder("proxy-a".into(), proxy_a_local, connect, counters.clone(), shutdown.clone());
    let h2 = spawn_tcp_forwarder("proxy-b".into(), proxy_b_local, accepted, counters.clone(), shutdown.clone());
    Ok((
        for_component_a,
        for_component_b,
        ProxyHandle::from_parts(ProxyKind::Tcp, counters, shutdown, vec![h1, h2]),
    ))
}

/// Spawn a thread running [`tcp_forward_loop`]; when the loop exits (for any
/// reason) the shared shutdown signal is raised so sibling forwarders wind
/// down too.
pub(crate) fn spawn_tcp_forwarder(
    name: String,
    local: ChannelEnd,
    stream: TcpStream,
    counters: Arc<ProxyCounters>,
    shutdown: Arc<ShutdownSignal>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            tcp_forward_loop(local, stream, &counters, &shutdown);
            shutdown.signal();
        })
        // io-ok: thread-spawn failure is resource exhaustion, not peer I/O
        .expect("spawn proxy thread")
}

/// One side of a sockets proxy: forward everything between the local channel
/// stub and the TCP stream until the local component endpoint disappears, the
/// TCP peer closes, or `shutdown` is signalled.
pub(crate) fn tcp_forward_loop(
    mut local: ChannelEnd,
    stream: TcpStream,
    counters: &ProxyCounters,
    shutdown: &ShutdownSignal,
) {
    // Non-blocking reads: the forwarding loop must never stall the
    // local->remote direction while waiting for remote bytes, or the
    // peer simulator blocks on missing SYNC messages.
    stream.set_nonblocking(true).ok();
    let mut tx = match stream.try_clone() {
        Ok(t) => t,
        Err(_) => return,
    };
    let mut rx = stream;
    let mut rx_buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16384];
    loop {
        if shutdown.is_set() {
            return;
        }
        let mut idle = true;
        // Read the close flag before draining: the producer drops its end
        // only after its last send, so a drain performed after observing the
        // flag is guaranteed to have flushed everything.
        let local_closing = local.peer_closed();
        // Local -> remote: forward everything queued on the local
        // channel (adaptive batching: drain the whole queue at once).
        let mut batch = Vec::new();
        let mut batch_msgs = 0u64;
        while let Some(msg) = local.recv_raw() {
            batch.extend_from_slice(&msg.to_wire());
            batch_msgs += 1;
        }
        if !batch.is_empty() {
            if tx.write_all(&batch).is_err() {
                return;
            }
            counters.record_batch(batch_msgs, batch.len() as u64);
            idle = false;
        }
        if local_closing {
            return;
        }
        // Remote -> local.
        match rx.read(&mut tmp) {
            Ok(0) => return, // peer proxy closed
            Ok(n) => {
                rx_buf.extend_from_slice(&tmp[..n]);
                idle = false;
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
        let mut consumed = 0;
        // Zero-allocation decode: borrow each message straight out of the
        // receive buffer and copy its payload directly into the local queue
        // slot (no intermediate `OwnedMsg` materialization).
        while let Some((ts, ty, payload, used)) = OwnedMsg::peek_wire(&rx_buf[consumed..]) {
            // Retry until there is queue space (peer component drains).
            loop {
                if shutdown.is_set() {
                    return;
                }
                match local.send_raw(ts, ty, payload) {
                    Ok(()) => break,
                    Err(simbricks_base::SendError::Full) => std::thread::yield_now(),
                    Err(_) => return,
                }
            }
            consumed += used;
        }
        if consumed > 0 {
            rx_buf.drain(..consumed);
        }
        if idle {
            std::thread::yield_now();
        }
    }
}

/// RDMA-style proxy pair: one forwarding thread per direction that places
/// messages straight into the remote component's queue, with no
/// serialization. The extra hop is invisible to the components (identical to
/// the TCP proxy), but per-message overhead is lower — the property the
/// paper's RDMA proxy provides.
fn proxy_pair_rdma(params: ChannelParams) -> (ChannelEnd, ChannelEnd, ProxyHandle) {
    let (for_component_a, proxy_a_local) = channel_pair(params);
    let (for_component_b, proxy_b_local) = channel_pair(params);
    let counters = Arc::new(ProxyCounters::default());
    let shutdown = Arc::new(ShutdownSignal::default());
    let h = spawn_rdma_forwarders(proxy_a_local, proxy_b_local, counters.clone(), shutdown.clone());
    (
        for_component_a,
        for_component_b,
        ProxyHandle::from_parts(ProxyKind::Rdma, counters, shutdown, vec![h]),
    )
}

fn spawn_rdma_forwarders(
    mut a: ChannelEnd,
    mut b: ChannelEnd,
    counters: Arc<ProxyCounters>,
    shutdown: Arc<ShutdownSignal>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("proxy-rdma".into())
        .spawn(move || {
            let mut pending_ab: Option<OwnedMsg> = None;
            let mut pending_ba: Option<OwnedMsg> = None;
            loop {
                if shutdown.is_set() {
                    return;
                }
                let mut idle = true;
                idle &= !forward_direction(&mut a, &mut b, &mut pending_ab, &counters);
                idle &= !forward_direction(&mut b, &mut a, &mut pending_ba, &counters);
                if (a.peer_closed() && pending_ab.is_none())
                    || (b.peer_closed() && pending_ba.is_none())
                {
                    return;
                }
                if idle {
                    std::thread::yield_now();
                }
            }
        })
        // io-ok: thread-spawn failure is resource exhaustion, not peer I/O
        .expect("spawn rdma proxy thread")
}

/// Move every available message from `src` to `dst`; returns true if any
/// progress was made. A message that cannot be placed because the destination
/// queue is full is kept in `pending` and retried on the next round, so
/// nothing is ever dropped or reordered.
fn forward_direction(
    src: &mut ChannelEnd,
    dst: &mut ChannelEnd,
    pending: &mut Option<OwnedMsg>,
    counters: &ProxyCounters,
) -> bool {
    let mut moved = 0u64;
    loop {
        let msg = match pending.take() {
            Some(m) => m,
            None => match src.recv_raw() {
                Some(m) => m,
                None => break,
            },
        };
        match dst.send_raw(msg.timestamp, msg.ty, &msg.data) {
            Ok(()) => moved += 1,
            Err(simbricks_base::SendError::Full) => {
                *pending = Some(msg);
                break;
            }
            Err(_) => break,
        }
    }
    counters.record_batch(moved, 0);
    moved > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{SimTime, MSG_SYNC};

    fn exchange_over(kind: ProxyKind) -> (Vec<u64>, bool, ProxyStats) {
        let (mut a, mut b, handle) = proxy_pair(kind, ChannelParams::default_sync()).unwrap();
        for i in 0..50u64 {
            a.send_raw(SimTime::from_ns(i * 10), 5, &i.to_le_bytes())
                .unwrap();
        }
        b.send_raw(SimTime::from_ns(7), MSG_SYNC, &[]).unwrap();

        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while got.len() < 50 && std::time::Instant::now() < deadline {
            while let Some(m) = b.recv_raw() {
                assert_eq!(m.ty, 5);
                got.push(u64::from_le_bytes(m.data.as_slice().try_into().unwrap()));
            }
            std::thread::yield_now();
        }

        let mut sync_seen = false;
        while std::time::Instant::now() < deadline && !sync_seen {
            while let Some(m) = a.recv_raw() {
                if m.ty == MSG_SYNC {
                    sync_seen = true;
                }
            }
            std::thread::yield_now();
        }
        let stats = handle.stats();
        drop(a);
        drop(b);
        (got, sync_seen, stats)
    }

    #[test]
    fn messages_cross_the_tcp_proxy_in_order_and_both_directions() {
        let (got, sync_seen, stats) = exchange_over(ProxyKind::Tcp);
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "in order, none lost");
        assert!(sync_seen, "reverse direction works too");
        assert_eq!(stats.forwarded, 51, "50 data + 1 sync");
        assert!(stats.bytes > 0, "tcp proxy serializes to wire bytes");
        assert!(stats.batches <= stats.forwarded);
        assert!(stats.mean_batch() >= 1.0);
    }

    #[test]
    fn messages_cross_the_rdma_proxy_in_order_and_both_directions() {
        let (got, sync_seen, stats) = exchange_over(ProxyKind::Rdma);
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "in order, none lost");
        assert!(sync_seen, "reverse direction works too");
        assert_eq!(stats.forwarded, 51);
        assert_eq!(stats.bytes, 0, "rdma-style proxy does not serialize");
    }

    #[test]
    #[cfg(unix)]
    fn messages_cross_the_shm_proxy_in_order_and_both_directions() {
        let (got, sync_seen, stats) = exchange_over(ProxyKind::Shm);
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "in order, none lost");
        assert!(sync_seen, "reverse direction works too");
        assert_eq!(stats.forwarded, 51, "50 data + 1 sync");
        assert!(stats.batches <= stats.forwarded);
    }

    #[test]
    fn legacy_tcp_wrapper_still_works() {
        let (mut a, mut b, _threads) =
            proxy_channel_over_tcp(ChannelParams::default_sync()).unwrap();
        a.send_raw(SimTime::from_ns(1), 9, b"hello").unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut got = None;
        while got.is_none() && std::time::Instant::now() < deadline {
            got = b.recv_raw();
            std::thread::yield_now();
        }
        let msg = got.expect("message crossed the proxy");
        assert_eq!(msg.ty, 9);
        assert_eq!(msg.data, b"hello");
    }

    #[test]
    fn rdma_proxy_survives_destination_backpressure() {
        // Tiny queue on the B side: the forwarder has to keep retrying while
        // the consumer drains slowly; nothing may be lost or reordered.
        let params = ChannelParams::default_sync().with_queue_len(4);
        let (mut a, mut b, handle) = proxy_pair(ProxyKind::Rdma, params).unwrap();
        let total = 200u64;
        let producer = std::thread::spawn(move || {
            for i in 0..total {
                loop {
                    match a.send_raw(SimTime::from_ns(i), 7, &i.to_le_bytes()) {
                        Ok(()) => break,
                        Err(simbricks_base::SendError::Full) => std::thread::yield_now(),
                        Err(e) => panic!("send failed: {e:?}"),
                    }
                }
            }
            a
        });
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while got.len() < total as usize && std::time::Instant::now() < deadline {
            while let Some(m) = b.recv_raw() {
                got.push(u64::from_le_bytes(m.data.as_slice().try_into().unwrap()));
            }
            std::thread::yield_now();
        }
        assert_eq!(got, (0..total).collect::<Vec<_>>());
        let _a = producer.join().unwrap();
        assert_eq!(handle.stats().forwarded, total);
    }

    /// Regression test for the proxy-lifecycle hang: join() must return even
    /// though one component endpoint never sends (and never closes), because
    /// the other side exiting poisons the pair.
    #[test]
    fn join_returns_when_one_peer_exits_early() {
        let (a, _b, handle) = proxy_pair(ProxyKind::Tcp, ChannelParams::default_sync()).unwrap();
        // Component A is done and drops its endpoint; component B stalls
        // forever, holding `_b` without ever sending or receiving.
        drop(a);
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let done2 = done.clone();
        let joiner = std::thread::spawn(move || {
            handle.join();
            done2.store(true, Ordering::Release);
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !done.load(Ordering::Acquire) && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(done.load(Ordering::Acquire), "join() hung on a stalled peer");
        joiner.join().unwrap();
    }

    /// Explicit shutdown stops the forwarders while both endpoints are alive.
    #[test]
    fn explicit_shutdown_stops_live_proxies() {
        for kind in [ProxyKind::Tcp, ProxyKind::Rdma, ProxyKind::Shm] {
            if kind == ProxyKind::Shm && !crate::shm::shm_supported() {
                continue;
            }
            let (_a, _b, handle) = proxy_pair(kind, ChannelParams::default_sync()).unwrap();
            // Neither endpoint is dropped; without the signal this would hang.
            let _ = handle.shutdown();
        }
    }

    #[test]
    fn handshake_roundtrip_and_validation() {
        let params = ChannelParams::default_sync().with_queue_len(8);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        write_handshake(&mut tx, "up0", &params).unwrap();
        let (name, got) = read_handshake(&mut rx).unwrap();
        assert_eq!(name, "up0");
        assert_eq!(got, params);

        // Garbage instead of a handshake is rejected, not misinterpreted.
        tx.write_all(&[0u8; 64]).unwrap();
        assert!(read_handshake(&mut rx).is_err());
    }

    #[test]
    fn proxy_stats_mean_batch_math() {
        let s = ProxyStats {
            forwarded: 10,
            bytes: 100,
            batches: 4,
            max_batch: 5,
        };
        assert!((s.mean_batch() - 2.5).abs() < 1e-9);
        assert_eq!(ProxyStats::default().mean_batch(), 0.0);
    }
}
