//! # simbricks-runner
//!
//! Orchestration for SimBricks simulations (§A.1 of the paper): experiments
//! are assembled from component simulators and channels, then executed either
//! with one thread per component (the paper's one-process-per-simulator
//! architecture) or cooperatively on a single core, and the results (wall
//! clock simulation time, per-component statistics, event logs, application
//! reports) are collected for the evaluation harness.

// The runner is host-side orchestration, not simulated code: it measures real
// wall-clock time and keys transient tables by host-process identifiers, so
// the workspace-wide `clippy.toml` determinism bans (Instant::now, HashMap, …)
// are waived per module here. Simulation-path crates get no such waiver —
// `cargo run -p simcheck` enforces the same rules there at token level.
pub mod build;
pub mod checkpoint;
#[allow(clippy::disallowed_methods, clippy::disallowed_types)]
pub mod dist;
#[allow(clippy::disallowed_methods, clippy::disallowed_types)]
pub mod executor;
#[allow(clippy::disallowed_methods, clippy::disallowed_types)]
pub mod experiment;
pub mod partition;
#[allow(clippy::disallowed_methods, clippy::disallowed_types)]
pub mod proxy;
#[allow(clippy::disallowed_methods, clippy::disallowed_types)]
pub mod shm;
pub mod transport;

pub use build::{attach_host_nic, attach_host_nvme, host_component, nic_model, NetworkKind};
pub use checkpoint::{
    prune_ring, ring_entries, ring_entry_path, ring_prune_plan, write_blob, CheckpointFile,
    RingMeta, CKPT_MAGIC, CKPT_VERSION, RING_META_FILE, RING_SCENARIO_FILE,
};
pub use dist::{
    maybe_worker, run_distributed, run_local, DistError, DistOptions, DistResult, FaultKind,
    FaultSpec, PartitionBuilder, RecoveryReport, RingOptions,
};
pub use executor::{default_workers, ShardedOptions};
pub use experiment::{Execution, Experiment, RunResult};
pub use partition::{PartitionAssignment, PartitionGraph};
pub use proxy::{
    proxy_channel_over_tcp, proxy_pair, read_handshake, write_handshake, ProxyHandle, ProxyKind,
    ProxyStats,
};
pub use shm::{shm_supported, ShmEndpoint, ShmPushError, ShmTransport};
pub use transport::{Transport, TransportKind, ENV_TRANSPORT};
