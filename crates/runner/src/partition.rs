//! Automatic latency-aware experiment partitioning.
//!
//! Distributed runs (§5.4) and sharded executors split an experiment's
//! components across partitions. Synchronization cost is dominated by the
//! links that *cross* partitions: every crossing link needs a proxy pair and
//! per-link promises, while internal links sync through cheap in-process
//! channels. The paper places partition cuts on the physical machine
//! boundaries, which in practice are the highest-latency links of the
//! topology (rack uplinks, WAN hops).
//!
//! This module automates that choice: [`PartitionGraph::partition`] computes
//! a deterministic K-way split that greedily keeps the *lowest*-latency links
//! internal (Kruskal-style agglomeration under a balance cap), so the cut
//! falls on the highest-latency links — a lightweight min-cut heuristic that
//! is exact on trees with distinct uplink latencies (e.g. the fat-tree
//! benchmark topologies, where host→ToR links are cheap and core uplinks are
//! expensive).
//!
//! Determinism matters because partition assignment feeds distributed run
//! setup: the same experiment must map to the same partitions on every
//! machine. The algorithm uses only stable orderings (edge sort by latency
//! then endpoint ids, cluster ordering by smallest member id), never hash-map
//! iteration order.

use simbricks_base::SimTime;

/// An undirected, latency-weighted multigraph over an experiment's
/// components. Node ids are dense `0..n` component indices.
#[derive(Clone, Debug, Default)]
pub struct PartitionGraph {
    n: usize,
    edges: Vec<(usize, usize, SimTime)>,
}

/// Result of a K-way partition: the assignment plus the links it cut.
#[derive(Clone, Debug)]
pub struct PartitionAssignment {
    /// Partition index in `0..k` for each component `0..n`.
    pub assignment: Vec<usize>,
    /// Number of links whose endpoints landed in different partitions.
    pub cut_links: usize,
    /// Smallest latency among cut links (`SimTime::MAX` when nothing is cut);
    /// the quality figure of the heuristic — it should be at least as large
    /// as the latency of every internal link class below it.
    pub min_cut_latency: SimTime,
}

/// Union-find over component ids with cluster sizes, used for the
/// agglomerative merge phase.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the clusters of `a` and `b` unless the union would exceed
    /// `cap` members. Returns whether a merge happened.
    fn union_capped(&mut self, a: usize, b: usize, cap: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] + self.size[rb] > cap {
            return false;
        }
        // Attach the higher root under the lower one so representative ids
        // are deterministic (smallest member id wins).
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
        self.size[lo] += self.size[hi];
        true
    }
}

impl PartitionGraph {
    /// An empty graph over `n` components and no links.
    pub fn new(n: usize) -> Self {
        PartitionGraph { n, edges: Vec::new() }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no components.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add an undirected link of latency `latency` between components `a`
    /// and `b`. Parallel links and self-loops are allowed (self-loops never
    /// affect the cut).
    ///
    /// # Panics
    /// If `a` or `b` is out of range.
    pub fn add_link(&mut self, a: usize, b: usize, latency: SimTime) {
        assert!(a < self.n && b < self.n, "link endpoint out of range");
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.edges.push((a, b, latency));
    }

    /// Split the components into `k` balanced partitions, cutting the
    /// highest-latency links.
    ///
    /// Greedy agglomeration: links are visited from lowest to highest
    /// latency (ties broken by endpoint ids) and their endpoint clusters
    /// merged whenever the union stays within the balance cap
    /// `ceil(n / k)`. Remaining clusters are then packed onto the `k`
    /// partitions largest-first, each going to the least-loaded partition.
    /// Both phases are fully deterministic.
    ///
    /// # Panics
    /// If `k` is zero.
    pub fn partition(&self, k: usize) -> PartitionAssignment {
        assert!(k > 0, "cannot partition into zero partitions");
        let n = self.n;
        let cap = n.div_ceil(k.min(n.max(1)).max(1));
        let mut uf = UnionFind::new(n);
        let mut order = self.edges.clone();
        order.sort_unstable_by_key(|&(a, b, lat)| (lat, a, b));
        for &(a, b, _) in &order {
            uf.union_capped(a, b, cap);
        }
        // Clusters keyed by representative (== smallest member id).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            let r = uf.find(i);
            members[r].push(i);
        }
        let mut clusters: Vec<Vec<usize>> = members.into_iter().filter(|m| !m.is_empty()).collect();
        // Largest first; ties by smallest member id (already the natural
        // order of the filter above, made explicit for clarity).
        clusters.sort_by_key(|m| (std::cmp::Reverse(m.len()), m[0]));
        let mut load = vec![0usize; k];
        let mut assignment = vec![0usize; n];
        for m in &clusters {
            let target = (0..k).min_by_key(|&p| (load[p], p)).unwrap();
            load[target] += m.len();
            for &c in m {
                assignment[c] = target;
            }
        }
        let mut cut_links = 0usize;
        let mut min_cut_latency = SimTime::MAX;
        for &(a, b, lat) in &self.edges {
            if assignment[a] != assignment[b] {
                cut_links += 1;
                min_cut_latency = min_cut_latency.min(lat);
            }
        }
        PartitionAssignment {
            assignment,
            cut_links,
            min_cut_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimTime {
        SimTime::from_ns(v)
    }

    /// Two racks of three hosts behind ToR switches joined by one slow
    /// uplink: the cut must land on the uplink.
    fn two_racks() -> PartitionGraph {
        // 0,1,2 hosts + 3 ToR | 4,5,6 hosts + 7 ToR; 3--7 uplink.
        let mut g = PartitionGraph::new(8);
        for h in 0..3 {
            g.add_link(h, 3, ns(500));
        }
        for h in 4..7 {
            g.add_link(h, 7, ns(500));
        }
        g.add_link(3, 7, ns(4000));
        g
    }

    #[test]
    fn cuts_the_slow_uplink() {
        let g = two_racks();
        let r = g.partition(2);
        assert_eq!(r.cut_links, 1);
        assert_eq!(r.min_cut_latency, ns(4000));
        // Each rack stays whole.
        for h in 0..3 {
            assert_eq!(r.assignment[h], r.assignment[3]);
        }
        for h in 4..7 {
            assert_eq!(r.assignment[h], r.assignment[7]);
        }
        assert_ne!(r.assignment[3], r.assignment[7]);
    }

    #[test]
    fn k1_is_trivial_and_uncut() {
        let g = two_racks();
        let r = g.partition(1);
        assert!(r.assignment.iter().all(|&p| p == 0));
        assert_eq!(r.cut_links, 0);
        assert_eq!(r.min_cut_latency, SimTime::MAX);
    }

    #[test]
    fn balance_cap_prevents_one_giant_partition() {
        // A chain of 8 equal-latency links: with k=4 every partition must
        // hold exactly two components.
        let mut g = PartitionGraph::new(8);
        for i in 0..7 {
            g.add_link(i, i + 1, ns(100));
        }
        let r = g.partition(4);
        let mut load = [0usize; 4];
        for &p in &r.assignment {
            load[p] += 1;
        }
        assert_eq!(load, [2, 2, 2, 2]);
    }

    #[test]
    fn deterministic_across_runs_and_edge_order() {
        let g = two_racks();
        let a = g.partition(2).assignment;
        // Same links inserted in reverse order must give the same split.
        let mut rev = PartitionGraph::new(8);
        rev.add_link(7, 3, ns(4000));
        for h in (4..7).rev() {
            rev.add_link(7, h, ns(500));
        }
        for h in (0..3).rev() {
            rev.add_link(3, h, ns(500));
        }
        assert_eq!(rev.partition(2).assignment, a);
    }

    #[test]
    fn more_partitions_than_components() {
        let mut g = PartitionGraph::new(2);
        g.add_link(0, 1, ns(10));
        let r = g.partition(5);
        assert_eq!(r.assignment.len(), 2);
        assert_ne!(r.assignment[0], r.assignment[1], "cap of 1 forces a split");
    }

    #[test]
    fn isolated_components_spread_evenly() {
        let g = PartitionGraph::new(6);
        let r = g.partition(3);
        let mut load = [0usize; 3];
        for &p in &r.assignment {
            load[p] += 1;
        }
        assert_eq!(load, [2, 2, 2]);
    }
}
