//! True multi-process distributed execution (§5.4, Fig. 6/Fig. 8).
//!
//! The paper's headline capability is that modular simulators run as
//! *separate OS processes* connected by message-queue channels, scaling out
//! across machines via socket/RDMA proxies. This module provides that
//! execution mode for one machine (loopback TCP), honestly extensible to
//! many:
//!
//! * An experiment is described once by a **build function**
//!   `fn(scenario, &mut PartitionBuilder)` that assigns every component to a
//!   named partition and declares every cross-partition channel by name.
//! * [`run_local`] instantiates all partitions in one process (the baseline
//!   the distributed run must reproduce bit for bit).
//! * [`run_distributed`] is the **orchestrator**: it self-`exec`s the running
//!   harness binary once per partition (hidden `--dist-worker` mode, see
//!   [`maybe_worker`]), performs listen/connect handshaking for every
//!   cross-partition proxy link, starts all workers behind a barrier,
//!   collects per-worker statistics and event logs over a control socket,
//!   and tears everything down cleanly.
//! * Each **worker** process rebuilds only its partition; every
//!   cross-partition channel is transparently replaced by one side of a
//!   sockets proxy (§5.4), so components cannot tell they are talking to a
//!   different process.
//!
//! The §5.5 synchronization protocol makes simulation results independent of
//! message arrival wall-time, so a distributed run produces event logs
//! bit-identical to the in-process sequential run — the property
//! `tests/integration_determinism.rs` asserts and `fig08_distributed_scaling
//! --dist N` measures.
//!
//! ## Control protocol
//!
//! All control frames are `u32` length-prefixed, a one-byte type, then a
//! type-specific payload:
//!
//! | frame    | direction      | payload                                      |
//! |----------|----------------|----------------------------------------------|
//! | `HELLO`  | worker → orch  | partition name                               |
//! | `LINKS`  | worker → orch  | rendezvous address per owned cross link      |
//! | `ADDRS`  | orch → worker  | full link-name → address map                 |
//! | `CKPT`   | orch → worker  | ckpt presence + time, restore presence + blob|
//! | `READY`  | worker → orch  | (empty) partition built, proxies wired       |
//! | `GO`     | orch → worker  | (empty) barrier release, start simulating    |
//! | `CKPT_SAVE` | worker → orch | partition snapshot captured mid-run       |
//! | `RESULT` | worker → orch  | wall seconds + per-component stats and logs  |
//! | `DONE`   | orch → worker  | (empty) all results in, tear down            |
//!
//! ## Channel transports
//!
//! Each cross-partition link is carried by a pluggable transport
//! ([`crate::transport`]): the §5.4 sockets proxy over loopback/real TCP, or
//! — the paper's same-host fast path — a file-backed shared-memory ring pair
//! ([`crate::shm`]). Selection (`--transport` in harnesses,
//! [`DistOptions::transport`], environment `SIMBRICKS_TRANSPORT`) is
//! negotiated per link over the existing control protocol: the owning side
//! advertises a scheme-prefixed rendezvous address in `LINKS`
//! (`tcp:127.0.0.1:PORT` or `shm:/path/to/region`), and the connecting side
//! follows that scheme. `auto` resolves to shared memory whenever the
//! platform supports it. Region files live in a per-run directory that the
//! orchestrator creates before spawning workers and removes when workers are
//! reaped (normally or on abort); the creating worker additionally unlinks
//! its regions on clean teardown. The §5.5 synchronization protocol makes
//! the merged event log bit-identical under either transport — the property
//! the CI loopback smoke test pins for both.
//!
//! Limitations (documented, not silent): distributed runs require
//! synchronized experiments (the emulation-mode stop flag and the global
//! barrier of Fig. 6 are process-local), and the build function must be
//! deterministic — it runs once for discovery and once for instantiation.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use simbricks_base::{channel_pair, ChannelEnd, ChannelParams, EventLog, KernelStats, SimTime};
use simbricks_hostsim::{Application, HostConfig};

use crate::experiment::{AnyModel, Execution, Experiment, RunResult};
use crate::proxy::{
    read_handshake, write_handshake, ProxyCounters, ProxyHandle, ProxyKind, ShutdownSignal,
};
use crate::shm;
use crate::transport::{spawn_transport_forwarder, TcpTransport, TransportKind};

/// Environment variable carrying the orchestrator's control-socket address;
/// its presence is what makes [`maybe_worker`] take over the process.
pub const ENV_CONTROL: &str = "SIMBRICKS_DIST_CONTROL";
/// Environment variable naming the partition a worker instantiates.
pub const ENV_PARTITION: &str = "SIMBRICKS_DIST_PARTITION";
/// Environment variable carrying the opaque scenario string.
pub const ENV_SCENARIO: &str = "SIMBRICKS_DIST_SCENARIO";
/// Environment variable selecting the in-worker executor
/// ([`Execution::parse`] syntax).
pub const ENV_EXEC: &str = "SIMBRICKS_DIST_EXEC";
/// Environment variable carrying the orchestrator-resolved cross-partition
/// transport (`tcp` or `shm`) for the links a worker *owns*. The connecting
/// side of each link follows the owner's advertised address scheme instead,
/// so transport is negotiated per link over the existing control protocol.
pub const ENV_DIST_TRANSPORT: &str = "SIMBRICKS_DIST_TRANSPORT";
/// Environment variable naming the per-run directory for shared-memory
/// region files (created and removed by the orchestrator).
pub const ENV_SHM_DIR: &str = "SIMBRICKS_DIST_SHM_DIR";

const MSG_HELLO: u8 = 1;
const MSG_LINKS: u8 = 2;
const MSG_ADDRS: u8 = 3;
const MSG_READY: u8 = 4;
const MSG_GO: u8 = 5;
const MSG_RESULT: u8 = 6;
const MSG_DONE: u8 = 7;
/// Orchestrator → worker, after `ADDRS`: checkpoint configuration — a
/// presence byte and the virtual time to checkpoint at, the checkpoint-ring
/// period and keep bound (both 0 = no ring) plus, when restoring, the
/// partition's encoded snapshot container.
const MSG_CKPT: u8 = 8;
/// Worker → orchestrator, before `RESULT`: the partition's encoded snapshot
/// container captured at the configured checkpoint time. With a checkpoint
/// ring configured, a second `CKPT_SAVE` frame follows carrying the
/// partition's ring as count-prefixed `(time u64, len u32, blob)` entries.
const MSG_CKPT_SAVE: u8 = 9;

/// Upper bound on one control frame (results carry whole event logs).
const MAX_FRAME: usize = 256 * 1024 * 1024;
/// How long control-socket reads may stall before the run is declared dead.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(600);
/// How long the orchestrator waits for all workers to connect.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(120);

/// The build function shared by the orchestrator, the workers, and the
/// in-process baseline: constructs the experiment for `scenario` into the
/// given [`PartitionBuilder`]. Must be deterministic (it runs more than once)
/// and must call [`PartitionBuilder::init`] before anything else.
pub type BuildFn = dyn Fn(&str, &mut PartitionBuilder);

// ---------------------------------------------------------------------------
// Partition builder
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BuildMode {
    /// Instantiate every partition in this process (in-process baseline).
    Local,
    /// Record cross-link declarations only; drop all components.
    Discover,
    /// Instantiate one partition; bridge cross links with TCP proxies.
    Worker,
}

/// A declared cross-partition channel. The channel parameters are not stored
/// here: each side re-derives them in its own build and the proxy handshake
/// verifies they agree.
#[derive(Clone, Debug)]
struct LinkDecl {
    name: String,
    a: String,
    b: String,
}

/// Builder handed to the experiment build function. It mirrors
/// [`Experiment`]'s assembly API but every component is placed into a named
/// partition and every channel that may cross partitions is declared by name
/// through [`PartitionBuilder::channel`]. The same build code then serves
/// three purposes: the in-process baseline, cross-link discovery, and worker
/// instantiation (where off-partition components are dropped and cross links
/// become sockets proxies).
pub struct PartitionBuilder {
    mode: BuildMode,
    local: Option<String>,
    exp: Option<Experiment>,
    links: Vec<LinkDecl>,
    next_global: usize,
    local_globals: Vec<usize>,
    /// Component names in global build order (recorded in every mode; the
    /// orchestrator needs them to merge per-partition ring checkpoints into
    /// whole-experiment containers).
    global_names: Vec<String>,
    listeners: HashMap<String, TcpListener>,
    addr_map: HashMap<String, String>,
    proxies: Vec<ProxyHandle>,
    /// Transport for links this worker owns (resolved, never `Auto`).
    transport: TransportKind,
    /// Per-run directory for shm region files (worker mode with shm links).
    shm_dir: Option<PathBuf>,
}

/// A channel endpoint whose peer is already gone (used as a placeholder for
/// ports of components that live in another partition).
fn dangling(params: ChannelParams) -> ChannelEnd {
    channel_pair(params).0
}

impl PartitionBuilder {
    fn new(mode: BuildMode, local: Option<String>) -> Self {
        PartitionBuilder {
            mode,
            local,
            exp: None,
            links: Vec::new(),
            next_global: 0,
            local_globals: Vec::new(),
            global_names: Vec::new(),
            listeners: HashMap::new(),
            addr_map: HashMap::new(),
            proxies: Vec::new(),
            transport: TransportKind::Tcp,
            shm_dir: None,
        }
    }

    /// A builder that assembles everything into one local in-process
    /// experiment (partition names are recorded but every component is
    /// instantiated). This is what scenario loaders and benches use to run a
    /// partition-aware build function single-process.
    pub fn new_local() -> Self {
        Self::new(BuildMode::Local, None)
    }

    /// Consume the builder and hand back the assembled [`Experiment`].
    /// Panics if the build function never called [`PartitionBuilder::init`].
    pub fn into_experiment(mut self) -> Experiment {
        self.exp.take().expect("build function must call init()")
    }

    /// Install the experiment this builder assembles into. Must be the first
    /// call the build function makes.
    pub fn init(&mut self, exp: Experiment) {
        assert!(self.exp.is_none(), "PartitionBuilder::init called twice");
        self.exp = Some(exp);
    }

    /// The experiment under assembly (for channel parameters etc.).
    /// Panics if [`PartitionBuilder::init`] has not been called.
    pub fn exp(&mut self) -> &mut Experiment {
        self.exp.as_mut().expect("build function must call init() first")
    }

    /// The partition this builder instantiates, or `None` when every
    /// partition is built in-process.
    pub fn partition(&self) -> Option<&str> {
        match self.mode {
            BuildMode::Local => None,
            _ => self.local.as_deref(),
        }
    }

    fn is_local(&self, partition: &str) -> bool {
        match self.mode {
            BuildMode::Local => true,
            BuildMode::Discover => false,
            BuildMode::Worker => self.local.as_deref() == Some(partition),
        }
    }

    /// Add a component that lives in `partition`. Ports and model are
    /// dropped unless that partition is instantiated here. Returns the
    /// component's **global** id — stable across all build modes, so results
    /// collected from different worker processes can be reassembled in the
    /// exact order of the in-process baseline.
    pub fn add(
        &mut self,
        partition: &str,
        name: impl Into<String>,
        model: Box<dyn AnyModel>,
        ports: Vec<ChannelEnd>,
    ) -> usize {
        let global = self.next_global;
        self.next_global += 1;
        let name = name.into();
        self.global_names.push(name.clone());
        if self.is_local(partition) {
            self.exp().add(name, model, ports);
            self.local_globals.push(global);
        }
        global
    }

    /// Declare a named channel between partitions `a` and `b` and return its
    /// two endpoints (`a`-side first). When the partitions differ this is a
    /// **cross link**: in a worker it is transparently bridged by one side of
    /// a sockets proxy (the `a` side listens, the `b` side connects, with the
    /// handshake of [`write_handshake`] verifying link name and parameters).
    /// Endpoints belonging to partitions not instantiated here are dangling
    /// placeholders that must not be attached to live components.
    pub fn channel(
        &mut self,
        link: &str,
        a: &str,
        b: &str,
        params: ChannelParams,
    ) -> (ChannelEnd, ChannelEnd) {
        if a != b {
            assert!(
                !self.links.iter().any(|l| l.name == link),
                "duplicate cross-link name {link:?}"
            );
            self.links.push(LinkDecl {
                name: link.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            });
        }
        match self.mode {
            BuildMode::Local => channel_pair(params),
            BuildMode::Discover => (dangling(params), dangling(params)),
            BuildMode::Worker => {
                let local = self.local.clone().expect("worker mode has a partition");
                if a == b {
                    if a == local {
                        channel_pair(params)
                    } else {
                        (dangling(params), dangling(params))
                    }
                } else if a == local {
                    (self.cross_end(link, params, true), dangling(params))
                } else if b == local {
                    (dangling(params), self.cross_end(link, params, false))
                } else {
                    (dangling(params), dangling(params))
                }
            }
        }
    }

    /// Worker-side half of a cross-partition link: a local channel stub
    /// whose other end is forwarded by a dedicated transport thread. The
    /// owning (`a`) side uses the worker's resolved transport — a pre-bound
    /// TCP listener accepted lazily, or an shm region created here and
    /// attached lazily by the peer — and the connecting (`b`) side follows
    /// the scheme of the owner's advertised address (`tcp:`/`shm:`), so the
    /// transport is negotiated per link and the build never blocks on
    /// connection ordering.
    fn cross_end(&mut self, link: &str, params: ChannelParams, listen: bool) -> ChannelEnd {
        let (mut component_end, proxy_local) = channel_pair(params);
        // Impairment streams are seeded by logical link direction. A
        // cross-partition endpoint comes from a fresh local pair, so its tag
        // must be forced to the side it plays globally: the listening side is
        // always the link's `a` endpoint (dir 0), the connecting side `b`
        // (dir 1). Without this, both partitions would draw dir-0 streams and
        // a distributed run would diverge from the local one.
        component_end.set_dir(if listen { 0 } else { 1 });
        let counters = Arc::new(ProxyCounters::default());
        let shutdown = Arc::new(ShutdownSignal::default());
        if listen && self.transport == TransportKind::Shm {
            // Owner side, shared memory: create + publish the region now
            // (header carries the SBPX handshake metadata); the forwarding
            // thread waits for the peer to attach before forwarding.
            let dir = self.shm_dir.clone().unwrap_or_else(std::env::temp_dir);
            let path = shm::region_path(&dir, link);
            let endpoint = shm::create_region(&path, link, params)
                .unwrap_or_else(|e| panic!("create shm region for link {link:?}: {e}"));
            let transport =
                shm::ShmTransport::await_peer(endpoint, Instant::now() + CONNECT_TIMEOUT);
            let thread = spawn_transport_forwarder(
                format!("dist-{link}"),
                Box::new(transport),
                proxy_local,
                counters.clone(),
                shutdown.clone(),
            );
            self.proxies
                .push(ProxyHandle::from_parts(ProxyKind::Shm, counters, shutdown, vec![thread]));
            return component_end;
        }
        if !listen {
            let addr = self
                .addr_map
                .get(link)
                .unwrap_or_else(|| panic!("no peer address for link {link:?}"))
                .clone();
            if let Some(path) = addr.strip_prefix("shm:") {
                // Owner advertised a shared-memory region: attach lazily (the
                // owner may not have built it yet) on the forwarding thread.
                let transport = shm::ShmTransport::attach(
                    PathBuf::from(path),
                    link,
                    params,
                    Instant::now() + CONNECT_TIMEOUT,
                );
                let thread = spawn_transport_forwarder(
                    format!("dist-{link}"),
                    Box::new(transport),
                    proxy_local,
                    counters.clone(),
                    shutdown.clone(),
                );
                self.proxies
                    .push(ProxyHandle::from_parts(ProxyKind::Shm, counters, shutdown, vec![thread]));
                return component_end;
            }
            // TCP (scheme-prefixed or legacy bare address).
            let addr = addr.strip_prefix("tcp:").unwrap_or(&addr).to_string();
            let mut stream = TcpStream::connect(&addr)
                .unwrap_or_else(|e| panic!("connect cross link {link:?} at {addr}: {e}"));
            write_handshake(&mut stream, link, &params)
                .unwrap_or_else(|e| panic!("handshake on link {link:?}: {e}"));
            stream.set_nodelay(true).ok();
            shutdown.register_stream(&stream);
            let thread = spawn_transport_forwarder(
                format!("dist-{link}"),
                Box::new(TcpTransport::new(stream)),
                proxy_local,
                counters.clone(),
                shutdown.clone(),
            );
            self.proxies
                .push(ProxyHandle::from_parts(ProxyKind::Tcp, counters, shutdown, vec![thread]));
            return component_end;
        }
        let thread = {
            let listener = self
                .listeners
                .remove(link)
                .unwrap_or_else(|| panic!("no pre-bound listener for owned link {link:?}"));
            let link_name = link.to_string();
            let counters = counters.clone();
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name(format!("dist-{link}"))
                .spawn(move || {
                    // Poll-accept so a signalled shutdown can interrupt a
                    // wait for a partner that never connects.
                    listener.set_nonblocking(true).ok();
                    let deadline = Instant::now() + CONNECT_TIMEOUT;
                    let mut stream = loop {
                        if shutdown.is_set() || Instant::now() > deadline {
                            shutdown.signal();
                            return;
                        }
                        match listener.accept() {
                            Ok((s, _)) => break s,
                            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(_) => {
                                shutdown.signal();
                                return;
                            }
                        }
                    };
                    stream.set_nonblocking(false).ok();
                    // Register (and bound) the stream *before* the blocking
                    // handshake read, so a shutdown signal or a peer that
                    // connects and then dies cannot strand this thread.
                    shutdown.register_stream(&stream);
                    stream.set_read_timeout(Some(CONNECT_TIMEOUT)).ok();
                    match read_handshake(&mut stream) {
                        Ok((name, peer)) if name == link_name && peer == params => {}
                        _ => {
                            eprintln!("dist: handshake mismatch on link {link_name:?}");
                            shutdown.signal();
                            return;
                        }
                    }
                    stream.set_read_timeout(None).ok();
                    stream.set_nodelay(true).ok();
                    crate::proxy::tcp_forward_loop(proxy_local, stream, &counters, &shutdown);
                    shutdown.signal();
                })
                .expect("spawn dist proxy thread")
        };
        self.proxies
            .push(ProxyHandle::from_parts(ProxyKind::Tcp, counters, shutdown, vec![thread]));
        component_end
    }

    /// Add a host + NIC pair (PCIe-connected, as in
    /// [`crate::build::attach_host_nic`]) to `partition`. Returns the two
    /// global component ids plus the network-side Ethernet endpoint, which is
    /// only live when the partition is instantiated here and must stay within
    /// the same partition — use [`PartitionBuilder::attach_host_nic_on`] when
    /// the Ethernet link itself crosses partitions.
    pub fn attach_host_nic(
        &mut self,
        partition: &str,
        name: &str,
        cfg: HostConfig,
        app: Box<dyn Application>,
        rtl_nic: bool,
    ) -> (usize, usize, ChannelEnd) {
        let eth_params = self.exp().eth_params();
        let (eth_nic, eth_net) = channel_pair(eth_params);
        let (h, n) = self.attach_host_nic_on(partition, name, cfg, app, rtl_nic, eth_nic);
        (h, n, eth_net)
    }

    /// Like [`PartitionBuilder::attach_host_nic`], but the NIC's Ethernet
    /// endpoint is supplied by the caller — typically one side of a
    /// [`PartitionBuilder::channel`] whose other side is a network simulator
    /// in a different partition.
    pub fn attach_host_nic_on(
        &mut self,
        partition: &str,
        name: &str,
        mut cfg: HostConfig,
        app: Box<dyn Application>,
        rtl_nic: bool,
        eth_nic: ChannelEnd,
    ) -> (usize, usize) {
        let (pcie_params, synchronized) = {
            let e = self.exp();
            (e.pcie_params(), e.is_synchronized())
        };
        if !synchronized {
            cfg.quit_when_done = true;
        }
        let (pcie_host, pcie_nic) = channel_pair(pcie_params);
        let h = self.add(
            partition,
            format!("{name}.host"),
            crate::build::host_component(cfg, app),
            vec![pcie_host],
        );
        let n = self.add(
            partition,
            format!("{name}.nic"),
            crate::build::nic_model(cfg.nic, rtl_nic),
            vec![pcie_nic, eth_nic],
        );
        (h, n)
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Options for a distributed run.
#[derive(Clone, Debug)]
pub struct DistOptions {
    /// Partition names; one worker OS process is launched per entry.
    pub partitions: Vec<String>,
    /// Opaque scenario string handed to the build function (workers receive
    /// it via [`ENV_SCENARIO`]).
    pub scenario: String,
    /// Executor each worker uses for its partition.
    pub exec: Execution,
    /// Cross-partition channel transport ([`TransportKind::Auto`] picks
    /// shared memory on platforms that support it, TCP otherwise). The
    /// orchestrator resolves this once and hands the result to every worker;
    /// the connecting side of each link then follows the owner's advertised
    /// address scheme, so mixed-transport topologies remain possible.
    pub transport: TransportKind,
    /// Extra command-line arguments for the self-`exec`ed worker processes.
    /// Harness binaries use the default hidden `--dist-worker` flag; test
    /// binaries route to their worker-entry test instead.
    pub worker_args: Vec<String>,
    /// Mid-run checkpoint: quiesce every partition at the given virtual time
    /// and write one region file per partition (`<dir>/<partition>.ckpt`)
    /// into the given directory. Snapshots travel from the workers to the
    /// orchestrator over the control socket.
    pub checkpoint: Option<(SimTime, PathBuf)>,
    /// Restore every partition from `<dir>/<partition>.ckpt` before the
    /// start barrier; the run then resumes at the checkpoint's virtual time.
    pub restore_from: Option<PathBuf>,
    /// Checkpoint ring: every worker quiesces at each multiple of the period
    /// and ships its partition's snapshots to the orchestrator, which merges
    /// the partitions of each quiesce time into one whole-experiment SBCK
    /// container `<dir>/ck-<time_ps>.ckpt` (restorable through the ordinary
    /// local path). Only the newest `keep` entries survive (0 = keep all).
    pub ring: Option<RingOptions>,
}

/// Checkpoint-ring configuration for a distributed run.
#[derive(Clone, Debug)]
pub struct RingOptions {
    /// Virtual time between ring entries.
    pub period: SimTime,
    /// Newest entries kept (0 = keep all).
    pub keep: usize,
    /// Directory the merged whole-experiment containers are written into.
    pub dir: PathBuf,
}

impl DistOptions {
    /// Options for `partitions` workers running `scenario` with the
    /// sequential in-worker executor, the transport selected by
    /// `SIMBRICKS_TRANSPORT` (default `auto`), and the default
    /// `--dist-worker` argv.
    pub fn new(partitions: Vec<String>, scenario: impl Into<String>) -> Self {
        DistOptions {
            partitions,
            scenario: scenario.into(),
            exec: Execution::Sequential,
            transport: TransportKind::from_env_or(TransportKind::Auto),
            worker_args: vec!["--dist-worker".into()],
            checkpoint: None,
            restore_from: None,
            ring: None,
        }
    }

    /// Request a mid-run checkpoint at virtual time `at`, written as one
    /// file per partition into `dir`.
    pub fn with_checkpoint(mut self, at: SimTime, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some((at, dir.into()));
        self
    }

    /// Restore all partitions from the per-partition files in `dir`.
    pub fn with_restore(mut self, dir: impl Into<PathBuf>) -> Self {
        self.restore_from = Some(dir.into());
        self
    }

    /// Request a checkpoint ring: merged whole-experiment containers written
    /// into `dir` at every multiple of `period`, pruned to the newest `keep`.
    pub fn with_checkpoint_ring(
        mut self,
        period: SimTime,
        keep: usize,
        dir: impl Into<PathBuf>,
    ) -> Self {
        self.ring = Some(RingOptions {
            period,
            keep,
            dir: dir.into(),
        });
        self
    }

    /// Select the executor used inside each worker.
    pub fn with_exec(mut self, exec: Execution) -> Self {
        self.exec = exec;
        self
    }

    /// Select the cross-partition channel transport.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Replace the argv passed to spawned workers.
    pub fn with_worker_args(mut self, args: Vec<String>) -> Self {
        self.worker_args = args;
        self
    }
}

/// Results of a completed distributed run, reassembled in the global
/// component order of the in-process baseline.
pub struct DistResult {
    /// Orchestrator-measured wall clock from barrier release (`GO`) until the
    /// last worker reported its result.
    pub wall: Duration,
    /// Partition names, in [`DistOptions::partitions`] order.
    pub partition_names: Vec<String>,
    /// Per-partition simulation wall seconds, as measured by each worker.
    pub partition_walls: Vec<f64>,
    /// Component names in global build order.
    pub component_names: Vec<String>,
    /// Per-component kernel statistics, parallel to `component_names`.
    pub stats: Vec<KernelStats>,
    /// Per-component event logs, parallel to `component_names`.
    pub logs: Vec<EventLog>,
}

impl DistResult {
    /// Merge all per-component logs into one global, time-sorted log —
    /// directly comparable (length and fingerprint) with
    /// [`RunResult::merged_log`] of the in-process baseline.
    pub fn merged_log(&self) -> EventLog {
        let refs: Vec<&EventLog> = self.logs.iter().collect();
        EventLog::merge(&refs)
    }

    /// Aggregate statistics over all components of all partitions.
    pub fn total_stats(&self) -> KernelStats {
        KernelStats::merged(&self.stats)
    }

    /// The largest per-partition simulation wall time — the distributed
    /// analogue of [`RunResult::wall_seconds`] (process spawn and handshake
    /// overheads excluded).
    pub fn max_partition_wall(&self) -> f64 {
        self.partition_walls.iter().copied().fold(0.0, f64::max)
    }
}

/// Run the experiment described by `build` entirely in this process (all
/// partitions instantiated, cross links as plain channels) — the baseline a
/// distributed run of the same build function must reproduce bit for bit.
pub fn run_local(scenario: &str, build: &BuildFn, exec: Execution) -> RunResult {
    let mut pb = PartitionBuilder::new(BuildMode::Local, None);
    build(scenario, &mut pb);
    let exp = pb.exp.take().expect("build function must call init()");
    exp.run(exec)
}

/// Worker-process hook: call this first thing in `main` of every harness that
/// supports `--dist`. When the process was spawned by [`run_distributed`]
/// (detected via [`ENV_CONTROL`]), it runs the worker protocol for its
/// partition and **exits the process**; otherwise it returns immediately.
pub fn maybe_worker(build: &BuildFn) {
    if std::env::var_os(ENV_CONTROL).is_none() {
        return;
    }
    let code = match run_worker(build) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("simbricks dist worker failed: {e}");
            1
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------------

fn write_frame(s: &mut TcpStream, ty: u8, payload: &[u8]) -> io::Result<()> {
    // Mirror the reader's bound so an oversized payload (e.g. a gigantic
    // event log in RESULT) fails loudly on the writer side instead of
    // wrapping the u32 length prefix and corrupting the protocol.
    if payload.len() + 1 > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("control frame too large ({} bytes)", payload.len()),
        ));
    }
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.extend_from_slice(&((payload.len() + 1) as u32).to_le_bytes());
    frame.push(ty);
    frame.extend_from_slice(payload);
    s.write_all(&frame)
}

fn read_frame(s: &mut TcpStream) -> io::Result<(u8, Vec<u8>)> {
    let mut len = [0u8; 4];
    s.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "control frame length"));
    }
    let mut buf = vec![0u8; len];
    s.read_exact(&mut buf)?;
    let payload = buf.split_off(1);
    Ok((buf[0], payload))
}

fn expect_frame(s: &mut TcpStream, ty: u8) -> io::Result<Vec<u8>> {
    let (got, payload) = read_frame(s)?;
    if got != ty {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected control frame {ty}, got {got}"),
        ));
    }
    Ok(payload)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Byte-slice reader for control payloads.
struct Dec<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, off: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.off + n > self.buf.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated control payload"));
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 control string"))
    }
}

/// Intern a log tag received over the control socket. [`EventLog`] records
/// tags as `&'static str`; the set of distinct tags is small and fixed, so
/// leaking one copy per unique tag is bounded.
fn intern_tag(tag: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static TAGS: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut tags = TAGS.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    if let Some(t) = tags.iter().find(|t| **t == tag) {
        return t;
    }
    let leaked: &'static str = Box::leak(tag.to_string().into_boxed_str());
    tags.push(leaked);
    leaked
}

fn encode_result(result: &RunResult, local_globals: &[usize]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&result.wall_seconds().to_bits().to_le_bytes());
    out.extend_from_slice(&(result.component_names.len() as u32).to_le_bytes());
    for (i, name) in result.component_names.iter().enumerate() {
        out.extend_from_slice(&(local_globals[i] as u64).to_le_bytes());
        put_str(&mut out, name);
        out.extend_from_slice(&result.stats[i].to_wire());
        let log = &result.logs[i];
        out.extend_from_slice(&(log.len() as u32).to_le_bytes());
        for e in log.entries() {
            out.extend_from_slice(&e.time.as_ps().to_le_bytes());
            put_str(&mut out, e.tag);
            out.extend_from_slice(&e.a.to_le_bytes());
            out.extend_from_slice(&e.b.to_le_bytes());
        }
    }
    out
}

struct WorkerReport {
    wall_seconds: f64,
    /// (global id, name, stats, log) per component of the partition.
    components: Vec<(usize, String, KernelStats, EventLog)>,
}

fn decode_result(payload: &[u8]) -> io::Result<WorkerReport> {
    let mut d = Dec::new(payload);
    let wall_seconds = f64::from_bits(d.u64()?);
    let ncomp = d.u32()? as usize;
    let mut components = Vec::with_capacity(ncomp);
    for _ in 0..ncomp {
        let global = d.u64()? as usize;
        let name = d.str()?;
        let stats = KernelStats::from_wire(d.take(KernelStats::WIRE_LEN)?)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad stats encoding"))?;
        let nlog = d.u32()? as usize;
        let mut log = EventLog::enabled();
        for _ in 0..nlog {
            let time = SimTime::from_ps(d.u64()?);
            let tag = d.str()?;
            let a = d.u64()?;
            let b = d.u64()?;
            log.record(time, intern_tag(&tag), a, b);
        }
        components.push((global, name, stats, log));
    }
    Ok(WorkerReport {
        wall_seconds,
        components,
    })
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn env_string(key: &str) -> io::Result<String> {
    std::env::var(key)
        .map_err(|_| io::Error::new(io::ErrorKind::NotFound, format!("{key} not set")))
}

fn run_worker(build: &BuildFn) -> io::Result<()> {
    let control_addr = env_string(ENV_CONTROL)?;
    let partition = env_string(ENV_PARTITION)?;
    let scenario = std::env::var(ENV_SCENARIO).unwrap_or_default();
    let exec = std::env::var(ENV_EXEC)
        .ok()
        .as_deref()
        .and_then(Execution::parse)
        .unwrap_or(Execution::Sequential);
    // The orchestrator hands every worker the resolved transport for the
    // links it owns; a worker spawned by an older orchestrator (no env)
    // falls back to TCP, the wire-compatible default.
    let transport = std::env::var(ENV_DIST_TRANSPORT)
        .ok()
        .as_deref()
        .and_then(TransportKind::parse)
        .unwrap_or(TransportKind::Tcp)
        .resolve_local();
    let shm_dir = std::env::var_os(ENV_SHM_DIR)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    // Discovery pass: learn the cross-link set so the rendezvous point for
    // every owned link — a bound TCP listener or an shm region path — can be
    // advertised before any partner tries to connect.
    let mut pb = PartitionBuilder::new(BuildMode::Discover, Some(partition.clone()));
    build(&scenario, &mut pb);
    let links = pb.links;

    let mut listeners = HashMap::new();
    let mut my_links = Vec::new();
    for l in &links {
        if l.a == partition && l.b != partition {
            match transport {
                TransportKind::Shm => {
                    let path = shm::region_path(&shm_dir, &l.name);
                    my_links.push((l.name.clone(), format!("shm:{}", path.display())));
                }
                _ => {
                    let listener = TcpListener::bind("127.0.0.1:0")?;
                    my_links.push((l.name.clone(), format!("tcp:{}", listener.local_addr()?)));
                    listeners.insert(l.name.clone(), listener);
                }
            }
        }
    }

    let mut ctrl = TcpStream::connect(&control_addr)?;
    ctrl.set_read_timeout(Some(CONTROL_TIMEOUT))?;
    ctrl.set_nodelay(true)?;
    write_frame(&mut ctrl, MSG_HELLO, partition.as_bytes())?;
    let mut payload = Vec::new();
    payload.extend_from_slice(&(my_links.len() as u32).to_le_bytes());
    for (name, addr) in &my_links {
        put_str(&mut payload, name);
        put_str(&mut payload, addr);
    }
    write_frame(&mut ctrl, MSG_LINKS, &payload)?;

    let payload = expect_frame(&mut ctrl, MSG_ADDRS)?;
    let mut d = Dec::new(&payload);
    let n = d.u32()? as usize;
    let mut addr_map = HashMap::new();
    for _ in 0..n {
        let name = d.str()?;
        let addr = d.str()?;
        addr_map.insert(name, addr);
    }

    // Real build: instantiate this partition, bridging cross links.
    let mut pb = PartitionBuilder::new(BuildMode::Worker, Some(partition.clone()));
    pb.listeners = listeners;
    pb.addr_map = addr_map;
    pb.transport = transport;
    pb.shm_dir = Some(shm_dir);
    build(&scenario, &mut pb);
    let mut exp = pb.exp.take().expect("build function must call init()");
    if !exp.is_synchronized() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "distributed runs require a synchronized experiment",
        ));
    }
    // Remote promises arrive asynchronously: an all-blocked partition is a
    // normal transient state, not a deadlock.
    exp.set_external_inputs();
    let local_globals = std::mem::take(&mut pb.local_globals);
    let proxies = std::mem::take(&mut pb.proxies);

    // Checkpoint configuration: the orchestrator tells every worker whether
    // (and when) to quiesce, and hands it its restore snapshot, if any.
    let ckpt_cfg = expect_frame(&mut ctrl, MSG_CKPT)?;
    let mut d = Dec::new(&ckpt_cfg);
    let has_ckpt = d.take(1)?[0] != 0;
    let ckpt_at = d.u64()?;
    let ring_period = d.u64()?;
    let ring_keep = d.u64()? as usize;
    let has_restore = d.take(1)?[0] != 0;
    if has_restore {
        let blob = d.take(ckpt_cfg.len() - d.off)?.to_vec();
        exp.restore_from_blob(&blob).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("restoring partition {partition:?}: {e}"),
            )
        })?;
    }
    if has_ckpt {
        exp.checkpoint_at(SimTime::from_ps(ckpt_at), None);
    }
    if ring_period != 0 {
        // Every worker quiesces at the same virtual times (pause promises
        // keep the partitions in lockstep through the proxies), so each
        // partition contributes a snapshot for every ring slot.
        exp.set_checkpoint_ring(SimTime::from_ps(ring_period), ring_keep);
    }

    // Barrier-synchronized start: report readiness, wait for the release.
    write_frame(&mut ctrl, MSG_READY, &[])?;
    expect_frame(&mut ctrl, MSG_GO)?;

    let result = exp.run(exec);

    if has_ckpt {
        let blob = result.checkpoint.as_deref().unwrap_or(&[]);
        write_frame(&mut ctrl, MSG_CKPT_SAVE, blob)?;
    }
    if ring_period != 0 {
        // Ship the partition's ring: count-prefixed (time, blob) entries.
        let mut payload = Vec::new();
        payload.extend_from_slice(&(result.ring.len() as u32).to_le_bytes());
        for (at, blob) in &result.ring {
            payload.extend_from_slice(&at.as_ps().to_le_bytes());
            payload.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            payload.extend_from_slice(blob);
        }
        write_frame(&mut ctrl, MSG_CKPT_SAVE, &payload)?;
    }
    let payload = encode_result(&result, &local_globals);
    write_frame(&mut ctrl, MSG_RESULT, &payload)?;
    // Keep proxies alive until every worker has reported: our forwarders have
    // flushed everything our components sent, and the orchestrator's DONE
    // confirms no peer still depends on them.
    expect_frame(&mut ctrl, MSG_DONE)?;
    for p in proxies {
        p.shutdown();
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------------

/// Kills still-running workers when the orchestrator bails out early, and
/// removes the per-run shm region directory in every exit path — normal
/// completion, early error, and child reaping alike — so crashed or killed
/// runs never leak region files.
struct ChildGuard {
    children: Vec<(String, Child)>,
    shm_dir: Option<PathBuf>,
}

impl ChildGuard {
    fn disarm(&mut self) -> Vec<(String, Child)> {
        std::mem::take(&mut self.children)
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(dir) = self.shm_dir.take() {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Resolve the requested transport for this run, creating the per-run shm
/// region directory when shared memory is selected. `Auto` falls back to TCP
/// when the directory cannot be created; an explicit `shm` request fails
/// loudly instead.
fn resolve_run_transport(
    requested: TransportKind,
) -> io::Result<(TransportKind, Option<PathBuf>)> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_RUN: AtomicU64 = AtomicU64::new(0);
    match requested.resolve_local() {
        TransportKind::Shm => {
            let dir = std::env::temp_dir().join(format!(
                "simbricks-dist-{}-{}",
                std::process::id(),
                NEXT_RUN.fetch_add(1, Ordering::Relaxed)
            ));
            match std::fs::create_dir_all(&dir) {
                Ok(()) => Ok((TransportKind::Shm, Some(dir))),
                Err(e) if requested == TransportKind::Auto => {
                    eprintln!("dist: shm region dir unavailable ({e}), falling back to tcp");
                    Ok((TransportKind::Tcp, None))
                }
                Err(e) => Err(e),
            }
        }
        kind => Ok((kind, None)),
    }
}

/// Orchestrate a true multi-process distributed run: spawn one worker process
/// per partition (self-`exec` of the current binary; workers enter via
/// [`maybe_worker`]), wire every cross-partition link through loopback TCP
/// proxies with listen/connect handshaking, release all workers from a start
/// barrier, collect per-worker statistics and event logs over the control
/// socket, and tear everything down. Returns the reassembled [`DistResult`].
pub fn run_distributed(opts: &DistOptions, build: &BuildFn) -> io::Result<DistResult> {
    // Local discovery: validate the build function against the options.
    let mut pb = PartitionBuilder::new(BuildMode::Discover, None);
    build(&opts.scenario, &mut pb);
    for l in &pb.links {
        for p in [&l.a, &l.b] {
            if !opts.partitions.contains(p) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("link {:?} references unknown partition {p:?}", l.name),
                ));
            }
        }
    }
    let expected_components = pb.next_global;
    let global_names = std::mem::take(&mut pb.global_names);

    let (transport, shm_dir) = resolve_run_transport(opts.transport)?;
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let control_addr = listener.local_addr()?;
    let exe = std::env::current_exe()?;
    let mut guard = ChildGuard {
        children: Vec::new(),
        shm_dir: shm_dir.clone(),
    };
    for p in &opts.partitions {
        let mut cmd = Command::new(&exe);
        cmd.args(&opts.worker_args)
            .env(ENV_CONTROL, control_addr.to_string())
            .env(ENV_PARTITION, p)
            .env(ENV_SCENARIO, &opts.scenario)
            .env(ENV_EXEC, opts.exec.to_arg())
            .env(ENV_DIST_TRANSPORT, transport.to_arg())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if let Some(dir) = &shm_dir {
            cmd.env(ENV_SHM_DIR, dir);
        }
        let child = cmd.spawn()?;
        guard.children.push((p.clone(), child));
    }

    // Accept one control connection per worker (with a deadline so a worker
    // that dies before connecting fails the run instead of hanging it).
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    let mut conns: HashMap<String, TcpStream> = HashMap::new();
    while conns.len() < opts.partitions.len() {
        if Instant::now() > deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "workers did not connect"));
        }
        for (name, child) in &mut guard.children {
            if let Some(status) = child.try_wait()? {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    format!("worker {name:?} exited early with {status}"),
                ));
            }
        }
        match listener.accept() {
            Ok((mut s, _)) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(CONTROL_TIMEOUT))?;
                s.set_nodelay(true)?;
                let hello = expect_frame(&mut s, MSG_HELLO)?;
                let partition = String::from_utf8(hello)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad HELLO"))?;
                if !opts.partitions.contains(&partition) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown worker partition {partition:?}"),
                    ));
                }
                conns.insert(partition, s);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }

    // Gather every worker's listener addresses, then broadcast the full map.
    let mut addr_map: Vec<(String, String)> = Vec::new();
    for p in &opts.partitions {
        let payload = expect_frame(conns.get_mut(p).unwrap(), MSG_LINKS)?;
        let mut d = Dec::new(&payload);
        let n = d.u32()? as usize;
        for _ in 0..n {
            let name = d.str()?;
            let addr = d.str()?;
            addr_map.push((name, addr));
        }
    }
    let mut payload = Vec::new();
    payload.extend_from_slice(&(addr_map.len() as u32).to_le_bytes());
    for (name, addr) in &addr_map {
        put_str(&mut payload, name);
        put_str(&mut payload, addr);
    }
    for p in &opts.partitions {
        write_frame(conns.get_mut(p).unwrap(), MSG_ADDRS, &payload)?;
    }

    // Checkpoint configuration: an explicit presence byte plus the quiesce
    // time, then — when restoring — each partition's own snapshot file
    // shipped over the control socket. The presence byte (not a zero-time
    // sentinel) keys both sides, so a checkpoint at virtual time 0 works.
    if let Some((_, dir)) = &opts.checkpoint {
        std::fs::create_dir_all(dir)?;
    }
    if let Some(ring) = &opts.ring {
        if ring.period == SimTime::ZERO {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint ring period must be non-zero",
            ));
        }
        std::fs::create_dir_all(&ring.dir)?;
    }
    for p in &opts.partitions {
        let mut payload = Vec::new();
        payload.push(opts.checkpoint.is_some() as u8);
        let ckpt_at = opts.checkpoint.as_ref().map(|(at, _)| at.as_ps()).unwrap_or(0);
        payload.extend_from_slice(&ckpt_at.to_le_bytes());
        let (ring_period, ring_keep) = opts
            .ring
            .as_ref()
            .map(|r| (r.period.as_ps(), r.keep as u64))
            .unwrap_or((0, 0));
        payload.extend_from_slice(&ring_period.to_le_bytes());
        payload.extend_from_slice(&ring_keep.to_le_bytes());
        match &opts.restore_from {
            Some(dir) => {
                let blob = std::fs::read(dir.join(format!("{p}.ckpt")))?;
                payload.push(1);
                payload.extend_from_slice(&blob);
            }
            None => payload.push(0),
        }
        write_frame(conns.get_mut(p).unwrap(), MSG_CKPT, &payload)?;
    }

    // Barrier-synchronized start: wait until every partition is built and
    // its proxies are wired, then release all workers together.
    for p in &opts.partitions {
        expect_frame(conns.get_mut(p).unwrap(), MSG_READY)?;
    }
    let start = Instant::now();
    for p in &opts.partitions {
        write_frame(conns.get_mut(p).unwrap(), MSG_GO, &[])?;
    }

    let mut partition_walls = Vec::new();
    let mut all: Vec<(usize, String, KernelStats, EventLog)> = Vec::new();
    // Per ring slot time: the partitions' containers collected so far.
    let mut ring_parts: std::collections::BTreeMap<u64, Vec<crate::checkpoint::CheckpointFile>> =
        std::collections::BTreeMap::new();
    for p in &opts.partitions {
        if let Some((_, dir)) = &opts.checkpoint {
            let blob = expect_frame(conns.get_mut(p).unwrap(), MSG_CKPT_SAVE)?;
            if blob.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("worker {p:?} reported an empty checkpoint"),
                ));
            }
            crate::checkpoint::write_blob(&dir.join(format!("{p}.ckpt")), &blob)
                .map_err(|e| io::Error::other(format!("writing checkpoint of {p:?}: {e}")))?;
        }
        if opts.ring.is_some() {
            let payload = expect_frame(conns.get_mut(p).unwrap(), MSG_CKPT_SAVE)?;
            let mut d = Dec::new(&payload);
            let n = d.u32()? as usize;
            for _ in 0..n {
                let at = d.u64()?;
                let len = d.u32()? as usize;
                let blob = d.take(len)?;
                let file = crate::checkpoint::CheckpointFile::decode(blob).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("ring entry of {p:?} at {at}ps: {e}"),
                    )
                })?;
                ring_parts.entry(at).or_default().push(file);
            }
        }
        let payload = expect_frame(conns.get_mut(p).unwrap(), MSG_RESULT)?;
        let report = decode_result(&payload)?;
        partition_walls.push(report.wall_seconds);
        all.extend(report.components);
    }
    let wall = start.elapsed();

    // Merge each ring slot's per-partition containers into one
    // whole-experiment container in global build order — byte-identical to a
    // single-process checkpoint of the same slot, so the ring restores
    // through the ordinary local path.
    if let Some(ring) = &opts.ring {
        for (at, parts) in &ring_parts {
            if parts.len() != opts.partitions.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "ring slot at {at}ps has {} partition snapshots, expected {}",
                        parts.len(),
                        opts.partitions.len()
                    ),
                ));
            }
            let merged = crate::checkpoint::CheckpointFile::merge(parts, &global_names)
                .map_err(|e| io::Error::other(format!("merging ring slot at {at}ps: {e}")))?;
            let path = crate::checkpoint::ring_entry_path(&ring.dir, SimTime::from_ps(*at));
            merged
                .write_to(&path)
                .map_err(|e| io::Error::other(format!("writing {}: {e}", path.display())))?;
        }
        crate::checkpoint::prune_ring(&ring.dir, ring.keep)
            .map_err(|e| io::Error::other(format!("pruning ring {}: {e}", ring.dir.display())))?;
    }

    // Clean teardown: acknowledge, then reap the worker processes.
    for p in &opts.partitions {
        write_frame(conns.get_mut(p).unwrap(), MSG_DONE, &[])?;
    }
    for (name, mut child) in guard.disarm() {
        let status = child.wait()?;
        if !status.success() {
            return Err(io::Error::other(format!("worker {name:?} exited with {status}")));
        }
    }

    // Reassemble in global build order so logs and stats line up with the
    // in-process baseline.
    all.sort_by_key(|(global, _, _, _)| *global);
    if all.len() != expected_components {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "workers reported {} components, build declares {}",
                all.len(),
                expected_components
            ),
        ));
    }
    let mut component_names = Vec::with_capacity(all.len());
    let mut stats = Vec::with_capacity(all.len());
    let mut logs = Vec::with_capacity(all.len());
    for (_, name, s, l) in all {
        component_names.push(name);
        stats.push(s);
        logs.push(l);
    }
    Ok(DistResult {
        wall,
        partition_names: opts.partitions.clone(),
        partition_walls,
        component_names,
        stats,
        logs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{Kernel, Model, OwnedMsg, PortId};

    /// Minimal ping model used to exercise the builder plumbing.
    struct Pinger {
        count: u64,
        sent: u64,
        received: u64,
    }

    impl Model for Pinger {
        fn init(&mut self, k: &mut Kernel) {
            if self.count > 0 {
                k.schedule_at(SimTime::from_ns(100), 0);
            }
        }
        fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {
            self.received += 1;
        }
        fn on_timer(&mut self, k: &mut Kernel, _t: u64) {
            k.send(PortId(0), 1, b"ping");
            self.sent += 1;
            if self.sent < self.count {
                k.schedule_in(SimTime::from_us(1), 0);
            }
        }
    }

    fn two_partition_build(_scenario: &str, pb: &mut PartitionBuilder) {
        pb.init(Experiment::new("pb-test", SimTime::from_us(50)).with_logging());
        let params = pb.exp().eth_params();
        let (a, b) = pb.channel("x-link", "p0", "p1", params);
        pb.add(
            "p0",
            "left",
            Box::new(Pinger { count: 5, sent: 0, received: 0 }),
            vec![a],
        );
        pb.add(
            "p1",
            "right",
            Box::new(Pinger { count: 0, sent: 0, received: 0 }),
            vec![b],
        );
    }

    #[test]
    fn local_mode_builds_and_runs_everything() {
        let r = run_local("", &two_partition_build, Execution::Sequential);
        assert_eq!(r.component_names, vec!["left", "right"]);
        let right: &Pinger = r.model(1).unwrap();
        assert_eq!(right.received, 5);
    }

    #[test]
    fn discover_mode_records_links_and_global_order_without_instantiating() {
        let mut pb = PartitionBuilder::new(BuildMode::Discover, None);
        two_partition_build("", &mut pb);
        assert_eq!(pb.next_global, 2, "both components counted");
        assert!(pb.local_globals.is_empty(), "nothing instantiated");
        assert_eq!(pb.links.len(), 1);
        assert_eq!(pb.links[0].name, "x-link");
        assert_eq!((pb.links[0].a.as_str(), pb.links[0].b.as_str()), ("p0", "p1"));
        assert_eq!(pb.exp().num_components(), 0);
    }

    #[test]
    fn worker_mode_instantiates_only_its_partition() {
        // No sockets involved: an intra-partition channel plus a foreign
        // component exercise the filtering logic without cross links.
        let mut pb = PartitionBuilder::new(BuildMode::Worker, Some("p0".into()));
        pb.init(Experiment::new("w", SimTime::from_us(10)));
        let params = pb.exp().eth_params();
        let (a, b) = pb.channel("local-link", "p0", "p0", params);
        let g0 = pb.add(
            "p0",
            "mine-a",
            Box::new(Pinger { count: 0, sent: 0, received: 0 }),
            vec![a],
        );
        let g1 = pb.add(
            "p1",
            "theirs",
            Box::new(Pinger { count: 0, sent: 0, received: 0 }),
            vec![],
        );
        let g2 = pb.add(
            "p0",
            "mine-b",
            Box::new(Pinger { count: 0, sent: 0, received: 0 }),
            vec![b],
        );
        assert_eq!((g0, g1, g2), (0, 1, 2), "global ids count every component");
        assert_eq!(pb.exp().num_components(), 2, "only p0 components instantiated");
        assert_eq!(pb.local_globals, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate cross-link name")]
    fn duplicate_link_names_are_rejected() {
        let mut pb = PartitionBuilder::new(BuildMode::Discover, None);
        pb.init(Experiment::new("dup", SimTime::from_us(1)));
        let params = pb.exp().eth_params();
        let _ = pb.channel("l", "a", "b", params);
        let _ = pb.channel("l", "a", "c", params);
    }

    #[test]
    fn dist_options_builders() {
        let o = DistOptions::new(vec!["p0".into()], "s")
            .with_exec(Execution::Sharded { workers: 2 })
            .with_worker_args(vec!["x".into()]);
        assert_eq!(o.exec, Execution::Sharded { workers: 2 });
        assert_eq!(o.worker_args, vec!["x"]);
        assert_eq!(o.scenario, "s");
    }
}
