//! True multi-process distributed execution (§5.4, Fig. 6/Fig. 8).
//!
//! The paper's headline capability is that modular simulators run as
//! *separate OS processes* connected by message-queue channels, scaling out
//! across machines via socket/RDMA proxies. This module provides that
//! execution mode for one machine (loopback TCP), honestly extensible to
//! many:
//!
//! * An experiment is described once by a **build function**
//!   `fn(scenario, &mut PartitionBuilder)` that assigns every component to a
//!   named partition and declares every cross-partition channel by name.
//! * [`run_local`] instantiates all partitions in one process (the baseline
//!   the distributed run must reproduce bit for bit).
//! * [`run_distributed`] is the **orchestrator**: it self-`exec`s the running
//!   harness binary once per partition (hidden `--dist-worker` mode, see
//!   [`maybe_worker`]), performs listen/connect handshaking for every
//!   cross-partition proxy link, starts all workers behind a barrier,
//!   collects per-worker statistics and event logs over a control socket,
//!   and tears everything down cleanly.
//! * Each **worker** process rebuilds only its partition; every
//!   cross-partition channel is transparently replaced by one side of a
//!   sockets proxy (§5.4), so components cannot tell they are talking to a
//!   different process.
//!
//! The §5.5 synchronization protocol makes simulation results independent of
//! message arrival wall-time, so a distributed run produces event logs
//! bit-identical to the in-process sequential run — the property
//! `tests/integration_determinism.rs` asserts and `fig08_distributed_scaling
//! --dist N` measures.
//!
//! ## Control protocol
//!
//! All control frames are `u32` length-prefixed, a one-byte type, then a
//! type-specific payload:
//!
//! | frame    | direction      | payload                                      |
//! |----------|----------------|----------------------------------------------|
//! | `HELLO`  | worker → orch  | partition name                               |
//! | `LINKS`  | worker → orch  | rendezvous address per owned cross link      |
//! | `ADDRS`  | orch → worker  | full link-name → address map                 |
//! | `CKPT`   | orch → worker  | ckpt presence + time, restore presence + blob|
//! | `READY`  | worker → orch  | (empty) partition built, proxies wired       |
//! | `GO`     | orch → worker  | (empty) barrier release, start simulating    |
//! | `CKPT_SAVE` | worker → orch | partition snapshot captured mid-run       |
//! | `RESULT` | worker → orch  | wall seconds + per-component stats and logs  |
//! | `DONE`   | orch → worker  | (empty) all results in, tear down            |
//! | `HEARTBEAT` | worker → orch | liveness + virtual-time progress (u64 ps) |
//! | `RING`   | worker → orch  | one ring snapshot (time + blob), streamed    |
//! | `SEVER`  | orch → worker  | link name whose proxy must be torn down      |
//!
//! ## Supervision and recovery
//!
//! After `GO` each worker starts a control **pump thread** that sends
//! `HEARTBEAT` frames on a wall-clock period ([`DistOptions::heartbeat`]) and
//! watches for orchestrator frames (`SEVER`, `DONE`) and control-channel EOF.
//! The orchestrator's supervisor loop classifies failures — worker process
//! exit, heartbeat silence, control EOF, protocol violations — as typed
//! [`DistError`]s instead of hanging. When a failure is
//! [`DistError::retryable`] and restarts remain
//! ([`DistOptions::max_restarts`]), the whole fleet is torn down and
//! relaunched from the newest checkpoint-ring slot for which every
//! partition's snapshot was received *and decodes cleanly* (torn or corrupt
//! blobs are rejected and older slots tried); with no usable slot the run
//! restarts from virtual time zero. Because §5.5 synchronization makes
//! results independent of wall time and snapshots carry the event logs, a
//! recovered run is bit-identical to an undisturbed one — the property
//! `tests/integration_faults.rs` asserts. A worker whose pump thread sees
//! control EOF before the run completes exits immediately, so an aborting
//! orchestrator never leaks orphan workers.
//!
//! Deterministic **fault injection** ([`DistOptions::faults`]) drives the
//! same machinery on purpose: the orchestrator injects each scheduled fault
//! when the fleet's minimum reported virtual time crosses the fault's
//! threshold — kill a worker, sever a proxy link, corrupt or truncate the
//! newest ring entry — so a fault schedule replays identically run over run.
//!
//! ## Channel transports
//!
//! Each cross-partition link is carried by a pluggable transport
//! ([`crate::transport`]): the §5.4 sockets proxy over loopback/real TCP, or
//! — the paper's same-host fast path — a file-backed shared-memory ring pair
//! ([`crate::shm`]). Selection (`--transport` in harnesses,
//! [`DistOptions::transport`], environment `SIMBRICKS_TRANSPORT`) is
//! negotiated per link over the existing control protocol: the owning side
//! advertises a scheme-prefixed rendezvous address in `LINKS`
//! (`tcp:127.0.0.1:PORT` or `shm:/path/to/region`), and the connecting side
//! follows that scheme. `auto` resolves to shared memory whenever the
//! platform supports it. Region files live in a per-run directory that the
//! orchestrator creates before spawning workers and removes when workers are
//! reaped (normally or on abort); the creating worker additionally unlinks
//! its regions on clean teardown. The §5.5 synchronization protocol makes
//! the merged event log bit-identical under either transport — the property
//! the CI loopback smoke test pins for both.
//!
//! Limitations (documented, not silent): distributed runs require
//! synchronized experiments (the emulation-mode stop flag and the global
//! barrier of Fig. 6 are process-local), and the build function must be
//! deterministic — it runs once for discovery and once for instantiation.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use simbricks_base::{channel_pair, ChannelEnd, ChannelParams, EventLog, KernelStats, SimTime};
use simbricks_hostsim::{Application, HostConfig};

use crate::experiment::{AnyModel, Execution, Experiment, RunResult};
use crate::proxy::{
    read_handshake, write_handshake, ProxyCounters, ProxyHandle, ProxyKind, ShutdownSignal,
};
use crate::shm;
use crate::transport::{spawn_transport_forwarder, TcpTransport, TransportKind};

/// Environment variable carrying the orchestrator's control-socket address;
/// its presence is what makes [`maybe_worker`] take over the process.
pub const ENV_CONTROL: &str = "SIMBRICKS_DIST_CONTROL";
/// Environment variable naming the partition a worker instantiates.
pub const ENV_PARTITION: &str = "SIMBRICKS_DIST_PARTITION";
/// Environment variable carrying the opaque scenario string.
pub const ENV_SCENARIO: &str = "SIMBRICKS_DIST_SCENARIO";
/// Environment variable selecting the in-worker executor
/// ([`Execution::parse`] syntax).
pub const ENV_EXEC: &str = "SIMBRICKS_DIST_EXEC";
/// Environment variable carrying the orchestrator-resolved cross-partition
/// transport (`tcp` or `shm`) for the links a worker *owns*. The connecting
/// side of each link follows the owner's advertised address scheme instead,
/// so transport is negotiated per link over the existing control protocol.
pub const ENV_DIST_TRANSPORT: &str = "SIMBRICKS_DIST_TRANSPORT";
/// Environment variable naming the per-run directory for shared-memory
/// region files (created and removed by the orchestrator).
pub const ENV_SHM_DIR: &str = "SIMBRICKS_DIST_SHM_DIR";

const MSG_HELLO: u8 = 1;
const MSG_LINKS: u8 = 2;
const MSG_ADDRS: u8 = 3;
const MSG_READY: u8 = 4;
const MSG_GO: u8 = 5;
const MSG_RESULT: u8 = 6;
const MSG_DONE: u8 = 7;
/// Orchestrator → worker, after `ADDRS`: checkpoint configuration — a
/// presence byte and the virtual time to checkpoint at, the checkpoint-ring
/// period and keep bound (both 0 = no ring) plus, when restoring, the
/// partition's encoded snapshot container.
const MSG_CKPT: u8 = 8;
/// Worker → orchestrator, before `RESULT`: the partition's encoded snapshot
/// container captured at the configured checkpoint time.
const MSG_CKPT_SAVE: u8 = 9;
/// Worker → orchestrator, periodically after `GO`: liveness beacon carrying
/// the partition's virtual-time progress (u64 picoseconds). Sent by the
/// worker's pump thread on a wall-clock period, so it keeps flowing even
/// while the simulation stalls waiting on peers.
const MSG_HEARTBEAT: u8 = 10;
/// Worker → orchestrator, after each ring quiesce: one ring snapshot as
/// `time u64` + the partition's encoded container. Streamed mid-run (not
/// batched at the end) so the orchestrator always holds the newest complete
/// slot when a worker dies.
const MSG_RING: u8 = 11;
/// Orchestrator → worker (fault injection): the named cross link's proxy is
/// torn down by signalling its shutdown handle. Payload: link name (UTF-8).
const MSG_SEVER: u8 = 12;

/// Upper bound on one control frame (results carry whole event logs).
const MAX_FRAME: usize = 256 * 1024 * 1024;
/// How long control-socket reads may stall before the run is declared dead.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(600);
/// How long the orchestrator waits for all workers to connect.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(120);
/// Default wall-clock period between worker heartbeats.
const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(100);
/// Per-read poll interval used by the supervisor loop and the worker pump
/// thread (`SO_RCVTIMEO`, so the sockets stay blocking for writes).
const POLL_TIMEOUT: Duration = Duration::from_millis(2);
/// Bounded connect retry: attempts and initial backoff (doubles per retry).
const CONNECT_RETRIES: u32 = 6;
const CONNECT_BACKOFF: Duration = Duration::from_millis(10);

/// The build function shared by the orchestrator, the workers, and the
/// in-process baseline: constructs the experiment for `scenario` into the
/// given [`PartitionBuilder`]. Must be deterministic (it runs more than once)
/// and must call [`PartitionBuilder::init`] before anything else.
pub type BuildFn = dyn Fn(&str, &mut PartitionBuilder);

// ---------------------------------------------------------------------------
// Errors, faults, recovery report
// ---------------------------------------------------------------------------

/// Typed failure classification for distributed runs. The supervisor loop
/// produces these instead of hanging or panicking; [`DistError::retryable`]
/// failures are candidates for checkpoint-ring recovery.
#[derive(Debug)]
pub enum DistError {
    /// Invalid options or a build/options mismatch. Not retryable.
    Invalid(String),
    /// Orchestrator-local I/O failure (bind, spawn, checkpoint files, …).
    /// Not retryable: the environment, not a worker, is broken.
    Io(String),
    /// Not all workers connected to the control socket within the deadline.
    ConnectTimeout {
        /// Partitions that never connected.
        missing: Vec<String>,
    },
    /// A worker process exited before reporting its result.
    WorkerExited {
        /// The dead worker's partition.
        partition: String,
        /// Its exit status, as reported by the OS.
        status: String,
    },
    /// A worker's control connection hit EOF or an I/O error mid-run.
    ControlLost {
        /// The lost worker's partition.
        partition: String,
        /// The underlying I/O error.
        error: String,
    },
    /// No heartbeat from a worker within the tolerance window.
    HeartbeatTimeout {
        /// The silent worker's partition.
        partition: String,
        /// How long it has been silent.
        silent: Duration,
    },
    /// A worker violated the control protocol.
    Protocol {
        /// The offending worker's partition.
        partition: String,
        /// What went wrong.
        error: String,
    },
    /// An injected `sever_link` fault tore down the named link; the fleet is
    /// restarted to re-handshake it. Always retryable.
    FaultSever {
        /// The severed link's name.
        link: String,
    },
    /// A retryable failure occurred but the restart budget was spent.
    RestartsExhausted {
        /// Restarts performed before giving up.
        restarts: u32,
        /// The failure that ended the run.
        last: Box<DistError>,
        /// What recovery did manage before giving up.
        report: RecoveryReport,
    },
}

impl DistError {
    /// Whether checkpoint-ring recovery (or restart-from-zero) can address
    /// this failure. Environment and configuration errors are final.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            DistError::ConnectTimeout { .. }
                | DistError::WorkerExited { .. }
                | DistError::ControlLost { .. }
                | DistError::HeartbeatTimeout { .. }
                | DistError::FaultSever { .. }
        )
    }
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Invalid(msg) => write!(f, "invalid distributed run: {msg}"),
            DistError::Io(msg) => write!(f, "distributed run I/O error: {msg}"),
            DistError::ConnectTimeout { missing } => {
                write!(f, "workers did not connect: {missing:?}")
            }
            DistError::WorkerExited { partition, status } => {
                write!(f, "worker {partition:?} exited ({status}) before its result")
            }
            DistError::ControlLost { partition, error } => {
                write!(f, "control connection to worker {partition:?} lost: {error}")
            }
            DistError::HeartbeatTimeout { partition, silent } => {
                write!(f, "worker {partition:?} silent for {silent:?} (heartbeat timeout)")
            }
            DistError::Protocol { partition, error } => {
                write!(f, "protocol violation from worker {partition:?}: {error}")
            }
            DistError::FaultSever { link } => {
                write!(f, "injected fault severed link {link:?}")
            }
            DistError::RestartsExhausted { restarts, last, .. } => {
                write!(f, "gave up after {restarts} restart(s); last failure: {last}")
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<io::Error> for DistError {
    fn from(e: io::Error) -> Self {
        DistError::Io(e.to_string())
    }
}

/// One scheduled fault in a deterministic injection schedule
/// ([`DistOptions::faults`]). Faults are injected by the orchestrator when
/// the fleet's minimum reported virtual time reaches [`FaultSpec::at`], so a
/// schedule replays identically run over run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Virtual-time threshold: inject once every partition has progressed to
    /// at least this simulation time.
    pub at: SimTime,
    /// What to break.
    pub kind: FaultKind,
}

/// The kinds of deterministic faults the orchestrator can inject.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill the named partition's worker process (SIGKILL).
    KillWorker {
        /// Partition whose worker dies.
        partition: String,
    },
    /// Tear down the named cross link's proxy on both ends, forcing a fleet
    /// restart that re-handshakes every link.
    SeverLink {
        /// The cross link to sever.
        link: String,
    },
    /// Flip one bit in every partition blob of the newest complete ring slot
    /// (and the merged on-disk entry), exercising checksum rejection.
    CorruptCheckpoint,
    /// Truncate every partition blob of the newest complete ring slot (and
    /// the merged on-disk entry) to half length, exercising torn-write
    /// rejection.
    TruncateCheckpoint,
}

/// Structured end-of-run recovery report: what was injected, what broke, and
/// what recovery cost. Attached to every [`DistResult`] (trivial when the run
/// was undisturbed) and to [`DistError::RestartsExhausted`].
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Human-readable record of each injected fault, in injection order.
    pub faults_injected: Vec<String>,
    /// Fleet restarts performed.
    pub restarts: u32,
    /// Per restart: the ring slot restored from (`None` = restart from zero).
    pub ring_entries_used: Vec<Option<SimTime>>,
    /// Ring entries rejected as corrupt/torn during recovery or merging.
    pub rejected_entries: Vec<String>,
    /// Virtual time re-simulated: the sum over restarts of (progress high
    /// water at failure − restore point).
    pub time_lost: SimTime,
}

impl RecoveryReport {
    /// `true` when nothing noteworthy happened (no faults, no restarts).
    pub fn is_trivial(&self) -> bool {
        self.restarts == 0 && self.faults_injected.is_empty() && self.rejected_entries.is_empty()
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "recovery report:")?;
        writeln!(f, "  faults injected: {}", self.faults_injected.len())?;
        for s in &self.faults_injected {
            writeln!(f, "    - {s}")?;
        }
        writeln!(f, "  restarts: {}", self.restarts)?;
        for (i, used) in self.ring_entries_used.iter().enumerate() {
            match used {
                Some(at) => writeln!(
                    f,
                    "    restart {}: restored from ring entry at {} ps",
                    i + 1,
                    at.as_ps()
                )?,
                None => writeln!(f, "    restart {}: no usable ring entry, from zero", i + 1)?,
            }
        }
        for s in &self.rejected_entries {
            writeln!(f, "  rejected ring entry: {s}")?;
        }
        write!(f, "  virtual time re-simulated: {} ps", self.time_lost.as_ps())
    }
}

// ---------------------------------------------------------------------------
// Partition builder
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BuildMode {
    /// Instantiate every partition in this process (in-process baseline).
    Local,
    /// Record cross-link declarations only; drop all components.
    Discover,
    /// Instantiate one partition; bridge cross links with TCP proxies.
    Worker,
}

/// A declared cross-partition channel. The channel parameters are not stored
/// here: each side re-derives them in its own build and the proxy handshake
/// verifies they agree.
#[derive(Clone, Debug)]
struct LinkDecl {
    name: String,
    a: String,
    b: String,
}

/// Builder handed to the experiment build function. It mirrors
/// [`Experiment`]'s assembly API but every component is placed into a named
/// partition and every channel that may cross partitions is declared by name
/// through [`PartitionBuilder::channel`]. The same build code then serves
/// three purposes: the in-process baseline, cross-link discovery, and worker
/// instantiation (where off-partition components are dropped and cross links
/// become sockets proxies).
pub struct PartitionBuilder {
    mode: BuildMode,
    local: Option<String>,
    exp: Option<Experiment>,
    links: Vec<LinkDecl>,
    next_global: usize,
    local_globals: Vec<usize>,
    /// Component names in global build order (recorded in every mode; the
    /// orchestrator needs them to merge per-partition ring checkpoints into
    /// whole-experiment containers).
    global_names: Vec<String>,
    listeners: HashMap<String, TcpListener>,
    addr_map: HashMap<String, String>,
    proxies: Vec<ProxyHandle>,
    /// Transport for links this worker owns (resolved, never `Auto`).
    transport: TransportKind,
    /// Per-run directory for shm region files (worker mode with shm links).
    shm_dir: Option<PathBuf>,
    /// Cross-link wiring failures collected during a worker build. The build
    /// function's signature cannot carry a `Result`, so [`cross_end`]
    /// records failures here (returning a dangling end) and the worker turns
    /// them into one typed error after the build returns.
    ///
    /// [`cross_end`]: PartitionBuilder::cross_end
    build_errors: Vec<String>,
    /// Per cross link wired in this worker: the proxy's shutdown handle, so
    /// an injected `SEVER` can tear one link down by name.
    link_shutdowns: Vec<(String, Arc<ShutdownSignal>)>,
}

/// A channel endpoint whose peer is already gone (used as a placeholder for
/// ports of components that live in another partition).
fn dangling(params: ChannelParams) -> ChannelEnd {
    channel_pair(params).0
}

impl PartitionBuilder {
    fn new(mode: BuildMode, local: Option<String>) -> Self {
        PartitionBuilder {
            mode,
            local,
            exp: None,
            links: Vec::new(),
            next_global: 0,
            local_globals: Vec::new(),
            global_names: Vec::new(),
            listeners: HashMap::new(),
            addr_map: HashMap::new(),
            proxies: Vec::new(),
            transport: TransportKind::Tcp,
            shm_dir: None,
            build_errors: Vec::new(),
            link_shutdowns: Vec::new(),
        }
    }

    /// A builder that assembles everything into one local in-process
    /// experiment (partition names are recorded but every component is
    /// instantiated). This is what scenario loaders and benches use to run a
    /// partition-aware build function single-process.
    pub fn new_local() -> Self {
        Self::new(BuildMode::Local, None)
    }

    /// Consume the builder and hand back the assembled [`Experiment`].
    /// Panics if the build function never called [`PartitionBuilder::init`].
    pub fn into_experiment(mut self) -> Experiment {
        // io-ok: API contract (documented panic), not an I/O failure
        self.exp.take().expect("build function must call init()")
    }

    /// Install the experiment this builder assembles into. Must be the first
    /// call the build function makes.
    pub fn init(&mut self, exp: Experiment) {
        assert!(self.exp.is_none(), "PartitionBuilder::init called twice");
        self.exp = Some(exp);
    }

    /// The experiment under assembly (for channel parameters etc.).
    /// Panics if [`PartitionBuilder::init`] has not been called.
    pub fn exp(&mut self) -> &mut Experiment {
        // io-ok: API contract (documented panic), not an I/O failure
        self.exp.as_mut().expect("build function must call init() first")
    }

    /// The partition this builder instantiates, or `None` when every
    /// partition is built in-process.
    pub fn partition(&self) -> Option<&str> {
        match self.mode {
            BuildMode::Local => None,
            _ => self.local.as_deref(),
        }
    }

    fn is_local(&self, partition: &str) -> bool {
        match self.mode {
            BuildMode::Local => true,
            BuildMode::Discover => false,
            BuildMode::Worker => self.local.as_deref() == Some(partition),
        }
    }

    /// Add a component that lives in `partition`. Ports and model are
    /// dropped unless that partition is instantiated here. Returns the
    /// component's **global** id — stable across all build modes, so results
    /// collected from different worker processes can be reassembled in the
    /// exact order of the in-process baseline.
    pub fn add(
        &mut self,
        partition: &str,
        name: impl Into<String>,
        model: Box<dyn AnyModel>,
        ports: Vec<ChannelEnd>,
    ) -> usize {
        let global = self.next_global;
        self.next_global += 1;
        let name = name.into();
        self.global_names.push(name.clone());
        if self.is_local(partition) {
            self.exp().add(name, model, ports);
            self.local_globals.push(global);
        }
        global
    }

    /// Declare a named channel between partitions `a` and `b` and return its
    /// two endpoints (`a`-side first). When the partitions differ this is a
    /// **cross link**: in a worker it is transparently bridged by one side of
    /// a sockets proxy (the `a` side listens, the `b` side connects, with the
    /// handshake of [`write_handshake`] verifying link name and parameters).
    /// Endpoints belonging to partitions not instantiated here are dangling
    /// placeholders that must not be attached to live components.
    pub fn channel(
        &mut self,
        link: &str,
        a: &str,
        b: &str,
        params: ChannelParams,
    ) -> (ChannelEnd, ChannelEnd) {
        if a != b {
            assert!(
                !self.links.iter().any(|l| l.name == link),
                "duplicate cross-link name {link:?}"
            );
            self.links.push(LinkDecl {
                name: link.to_string(),
                a: a.to_string(),
                b: b.to_string(),
            });
        }
        match self.mode {
            BuildMode::Local => channel_pair(params),
            BuildMode::Discover => (dangling(params), dangling(params)),
            BuildMode::Worker => {
                // io-ok: constructor invariant - worker mode always carries one
                let local = self.local.clone().expect("worker mode has a partition");
                if a == b {
                    if a == local {
                        channel_pair(params)
                    } else {
                        (dangling(params), dangling(params))
                    }
                } else if a == local {
                    (self.cross_end(link, params, true), dangling(params))
                } else if b == local {
                    (dangling(params), self.cross_end(link, params, false))
                } else {
                    (dangling(params), dangling(params))
                }
            }
        }
    }

    /// Worker-side half of a cross-partition link: a local channel stub
    /// whose other end is forwarded by a dedicated transport thread. The
    /// owning (`a`) side uses the worker's resolved transport — a pre-bound
    /// TCP listener accepted lazily, or an shm region created here and
    /// attached lazily by the peer — and the connecting (`b`) side follows
    /// the scheme of the owner's advertised address (`tcp:`/`shm:`), so the
    /// transport is negotiated per link and the build never blocks on
    /// connection ordering.
    fn cross_end(&mut self, link: &str, params: ChannelParams, listen: bool) -> ChannelEnd {
        let (mut component_end, proxy_local) = channel_pair(params);
        // Impairment streams are seeded by logical link direction. A
        // cross-partition endpoint comes from a fresh local pair, so its tag
        // must be forced to the side it plays globally: the listening side is
        // always the link's `a` endpoint (dir 0), the connecting side `b`
        // (dir 1). Without this, both partitions would draw dir-0 streams and
        // a distributed run would diverge from the local one.
        component_end.set_dir(if listen { 0 } else { 1 });
        let counters = Arc::new(ProxyCounters::default());
        let shutdown = Arc::new(ShutdownSignal::default());
        self.link_shutdowns.push((link.to_string(), shutdown.clone()));
        if listen && self.transport == TransportKind::Shm {
            // Owner side, shared memory: create + publish the region now
            // (header carries the SBPX handshake metadata); the forwarding
            // thread waits for the peer to attach before forwarding.
            let dir = self.shm_dir.clone().unwrap_or_else(std::env::temp_dir);
            let path = shm::region_path(&dir, link);
            let endpoint = match shm::create_region(&path, link, params) {
                Ok(ep) => ep,
                Err(e) => {
                    self.build_errors.push(format!("create shm region for link {link:?}: {e}"));
                    return component_end;
                }
            };
            let transport =
                shm::ShmTransport::await_peer(endpoint, Instant::now() + CONNECT_TIMEOUT);
            let thread = spawn_transport_forwarder(
                format!("dist-{link}"),
                Box::new(transport),
                proxy_local,
                counters.clone(),
                shutdown.clone(),
            );
            self.proxies
                .push(ProxyHandle::from_parts(ProxyKind::Shm, counters, shutdown, vec![thread]));
            return component_end;
        }
        if !listen {
            let addr = match self.addr_map.get(link) {
                Some(a) => a.clone(),
                None => {
                    self.build_errors.push(format!("no peer address for link {link:?}"));
                    return component_end;
                }
            };
            if let Some(path) = addr.strip_prefix("shm:") {
                // Owner advertised a shared-memory region: attach lazily (the
                // owner may not have built it yet) on the forwarding thread.
                let transport = shm::ShmTransport::attach(
                    PathBuf::from(path),
                    link,
                    params,
                    Instant::now() + CONNECT_TIMEOUT,
                );
                let thread = spawn_transport_forwarder(
                    format!("dist-{link}"),
                    Box::new(transport),
                    proxy_local,
                    counters.clone(),
                    shutdown.clone(),
                );
                self.proxies
                    .push(ProxyHandle::from_parts(ProxyKind::Shm, counters, shutdown, vec![thread]));
                return component_end;
            }
            // TCP (scheme-prefixed or legacy bare address). A freshly
            // advertised listener may not be accepting yet, and transient
            // refusals happen during fleet restarts — retry with bounded
            // exponential backoff instead of failing on the first attempt.
            let addr = addr.strip_prefix("tcp:").unwrap_or(&addr).to_string();
            let mut stream = match connect_with_backoff(&addr) {
                Ok(s) => s,
                Err(e) => {
                    self.build_errors
                        .push(format!("connect cross link {link:?} at {addr}: {e}"));
                    return component_end;
                }
            };
            if let Err(e) = write_handshake(&mut stream, link, &params) {
                self.build_errors.push(format!("handshake on link {link:?}: {e}"));
                return component_end;
            }
            stream.set_nodelay(true).ok();
            shutdown.register_stream(&stream);
            let thread = spawn_transport_forwarder(
                format!("dist-{link}"),
                Box::new(TcpTransport::new(stream)),
                proxy_local,
                counters.clone(),
                shutdown.clone(),
            );
            self.proxies
                .push(ProxyHandle::from_parts(ProxyKind::Tcp, counters, shutdown, vec![thread]));
            return component_end;
        }
        let thread = {
            let listener = match self.listeners.remove(link) {
                Some(l) => l,
                None => {
                    self.build_errors
                        .push(format!("no pre-bound listener for owned link {link:?}"));
                    return component_end;
                }
            };
            let link_name = link.to_string();
            let counters = counters.clone();
            let shutdown = shutdown.clone();
            match std::thread::Builder::new()
                .name(format!("dist-{link}"))
                .spawn(move || {
                    // Poll-accept so a signalled shutdown can interrupt a
                    // wait for a partner that never connects.
                    listener.set_nonblocking(true).ok();
                    let deadline = Instant::now() + CONNECT_TIMEOUT;
                    let mut stream = loop {
                        if shutdown.is_set() || Instant::now() > deadline {
                            shutdown.signal();
                            return;
                        }
                        match listener.accept() {
                            Ok((s, _)) => break s,
                            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(_) => {
                                shutdown.signal();
                                return;
                            }
                        }
                    };
                    stream.set_nonblocking(false).ok();
                    // Register (and bound) the stream *before* the blocking
                    // handshake read, so a shutdown signal or a peer that
                    // connects and then dies cannot strand this thread.
                    shutdown.register_stream(&stream);
                    stream.set_read_timeout(Some(CONNECT_TIMEOUT)).ok();
                    match read_handshake(&mut stream) {
                        Ok((name, peer)) if name == link_name && peer == params => {}
                        _ => {
                            eprintln!("dist: handshake mismatch on link {link_name:?}");
                            shutdown.signal();
                            return;
                        }
                    }
                    stream.set_read_timeout(None).ok();
                    stream.set_nodelay(true).ok();
                    crate::proxy::tcp_forward_loop(proxy_local, stream, &counters, &shutdown);
                    shutdown.signal();
                }) {
                Ok(t) => t,
                Err(e) => {
                    self.build_errors
                        .push(format!("spawn proxy thread for link {link:?}: {e}"));
                    return component_end;
                }
            }
        };
        self.proxies
            .push(ProxyHandle::from_parts(ProxyKind::Tcp, counters, shutdown, vec![thread]));
        component_end
    }

    /// Add a host + NIC pair (PCIe-connected, as in
    /// [`crate::build::attach_host_nic`]) to `partition`. Returns the two
    /// global component ids plus the network-side Ethernet endpoint, which is
    /// only live when the partition is instantiated here and must stay within
    /// the same partition — use [`PartitionBuilder::attach_host_nic_on`] when
    /// the Ethernet link itself crosses partitions.
    pub fn attach_host_nic(
        &mut self,
        partition: &str,
        name: &str,
        cfg: HostConfig,
        app: Box<dyn Application>,
        rtl_nic: bool,
    ) -> (usize, usize, ChannelEnd) {
        let eth_params = self.exp().eth_params();
        let (eth_nic, eth_net) = channel_pair(eth_params);
        let (h, n) = self.attach_host_nic_on(partition, name, cfg, app, rtl_nic, eth_nic);
        (h, n, eth_net)
    }

    /// Like [`PartitionBuilder::attach_host_nic`], but the NIC's Ethernet
    /// endpoint is supplied by the caller — typically one side of a
    /// [`PartitionBuilder::channel`] whose other side is a network simulator
    /// in a different partition.
    pub fn attach_host_nic_on(
        &mut self,
        partition: &str,
        name: &str,
        mut cfg: HostConfig,
        app: Box<dyn Application>,
        rtl_nic: bool,
        eth_nic: ChannelEnd,
    ) -> (usize, usize) {
        let (pcie_params, synchronized) = {
            let e = self.exp();
            (e.pcie_params(), e.is_synchronized())
        };
        if !synchronized {
            cfg.quit_when_done = true;
        }
        let (pcie_host, pcie_nic) = channel_pair(pcie_params);
        let h = self.add(
            partition,
            format!("{name}.host"),
            crate::build::host_component(cfg, app),
            vec![pcie_host],
        );
        let n = self.add(
            partition,
            format!("{name}.nic"),
            crate::build::nic_model(cfg.nic, rtl_nic),
            vec![pcie_nic, eth_nic],
        );
        (h, n)
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Options for a distributed run.
#[derive(Clone, Debug)]
pub struct DistOptions {
    /// Partition names; one worker OS process is launched per entry.
    pub partitions: Vec<String>,
    /// Opaque scenario string handed to the build function (workers receive
    /// it via [`ENV_SCENARIO`]).
    pub scenario: String,
    /// Executor each worker uses for its partition.
    pub exec: Execution,
    /// Cross-partition channel transport ([`TransportKind::Auto`] picks
    /// shared memory on platforms that support it, TCP otherwise). The
    /// orchestrator resolves this once and hands the result to every worker;
    /// the connecting side of each link then follows the owner's advertised
    /// address scheme, so mixed-transport topologies remain possible.
    pub transport: TransportKind,
    /// Extra command-line arguments for the self-`exec`ed worker processes.
    /// Harness binaries use the default hidden `--dist-worker` flag; test
    /// binaries route to their worker-entry test instead.
    pub worker_args: Vec<String>,
    /// Mid-run checkpoint: quiesce every partition at the given virtual time
    /// and write one region file per partition (`<dir>/<partition>.ckpt`)
    /// into the given directory. Snapshots travel from the workers to the
    /// orchestrator over the control socket.
    pub checkpoint: Option<(SimTime, PathBuf)>,
    /// Restore every partition from `<dir>/<partition>.ckpt` before the
    /// start barrier; the run then resumes at the checkpoint's virtual time.
    pub restore_from: Option<PathBuf>,
    /// Checkpoint ring: every worker quiesces at each multiple of the period
    /// and ships its partition's snapshots to the orchestrator, which merges
    /// the partitions of each quiesce time into one whole-experiment SBCK
    /// container `<dir>/ck-<time_ps>.ckpt` (restorable through the ordinary
    /// local path). Only the newest `keep` entries survive (0 = keep all).
    pub ring: Option<RingOptions>,
    /// Deterministic fault schedule injected by the orchestrator (sorted or
    /// not — each fault fires once when the fleet's minimum virtual time
    /// reaches its threshold).
    pub faults: Vec<FaultSpec>,
    /// How many fleet restarts the supervisor may perform before giving up
    /// with [`DistError::RestartsExhausted`]. 0 = fail on first crash.
    pub max_restarts: u32,
    /// Wall-clock period between worker heartbeats. A worker silent for
    /// `max(20 × heartbeat, 15 s)` is declared dead.
    pub heartbeat: Duration,
}

/// Checkpoint-ring configuration for a distributed run.
#[derive(Clone, Debug)]
pub struct RingOptions {
    /// Virtual time between ring entries.
    pub period: SimTime,
    /// Newest entries kept (0 = keep all).
    pub keep: usize,
    /// Directory the merged whole-experiment containers are written into.
    pub dir: PathBuf,
}

impl DistOptions {
    /// Options for `partitions` workers running `scenario` with the
    /// sequential in-worker executor, the transport selected by
    /// `SIMBRICKS_TRANSPORT` (default `auto`), and the default
    /// `--dist-worker` argv.
    pub fn new(partitions: Vec<String>, scenario: impl Into<String>) -> Self {
        DistOptions {
            partitions,
            scenario: scenario.into(),
            exec: Execution::Sequential,
            transport: TransportKind::from_env_or(TransportKind::Auto),
            worker_args: vec!["--dist-worker".into()],
            checkpoint: None,
            restore_from: None,
            ring: None,
            faults: Vec::new(),
            max_restarts: 0,
            heartbeat: DEFAULT_HEARTBEAT,
        }
    }

    /// Request a mid-run checkpoint at virtual time `at`, written as one
    /// file per partition into `dir`.
    pub fn with_checkpoint(mut self, at: SimTime, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some((at, dir.into()));
        self
    }

    /// Restore all partitions from the per-partition files in `dir`.
    pub fn with_restore(mut self, dir: impl Into<PathBuf>) -> Self {
        self.restore_from = Some(dir.into());
        self
    }

    /// Request a checkpoint ring: merged whole-experiment containers written
    /// into `dir` at every multiple of `period`, pruned to the newest `keep`.
    pub fn with_checkpoint_ring(
        mut self,
        period: SimTime,
        keep: usize,
        dir: impl Into<PathBuf>,
    ) -> Self {
        self.ring = Some(RingOptions {
            period,
            keep,
            dir: dir.into(),
        });
        self
    }

    /// Select the executor used inside each worker.
    pub fn with_exec(mut self, exec: Execution) -> Self {
        self.exec = exec;
        self
    }

    /// Select the cross-partition channel transport.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Replace the argv passed to spawned workers.
    pub fn with_worker_args(mut self, args: Vec<String>) -> Self {
        self.worker_args = args;
        self
    }

    /// Install a deterministic fault schedule.
    pub fn with_faults(mut self, faults: Vec<FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// Allow up to `n` fleet restarts for retryable failures.
    pub fn with_max_restarts(mut self, n: u32) -> Self {
        self.max_restarts = n;
        self
    }

    /// Set the worker heartbeat period.
    pub fn with_heartbeat(mut self, period: Duration) -> Self {
        self.heartbeat = period;
        self
    }
}

/// Results of a completed distributed run, reassembled in the global
/// component order of the in-process baseline.
pub struct DistResult {
    /// Orchestrator-measured wall clock from barrier release (`GO`) until the
    /// last worker reported its result.
    pub wall: Duration,
    /// Partition names, in [`DistOptions::partitions`] order.
    pub partition_names: Vec<String>,
    /// Per-partition simulation wall seconds, as measured by each worker.
    pub partition_walls: Vec<f64>,
    /// Component names in global build order.
    pub component_names: Vec<String>,
    /// Per-component kernel statistics, parallel to `component_names`.
    pub stats: Vec<KernelStats>,
    /// Per-component event logs, parallel to `component_names`.
    pub logs: Vec<EventLog>,
    /// What supervision saw: faults injected, restarts performed, ring
    /// entries used. Trivial ([`RecoveryReport::is_trivial`]) for an
    /// undisturbed run.
    pub recovery: RecoveryReport,
}

impl DistResult {
    /// Merge all per-component logs into one global, time-sorted log —
    /// directly comparable (length and fingerprint) with
    /// [`RunResult::merged_log`] of the in-process baseline.
    pub fn merged_log(&self) -> EventLog {
        let refs: Vec<&EventLog> = self.logs.iter().collect();
        EventLog::merge(&refs)
    }

    /// Aggregate statistics over all components of all partitions.
    pub fn total_stats(&self) -> KernelStats {
        KernelStats::merged(&self.stats)
    }

    /// The largest per-partition simulation wall time — the distributed
    /// analogue of [`RunResult::wall_seconds`] (process spawn and handshake
    /// overheads excluded).
    pub fn max_partition_wall(&self) -> f64 {
        self.partition_walls.iter().copied().fold(0.0, f64::max)
    }
}

/// Run the experiment described by `build` entirely in this process (all
/// partitions instantiated, cross links as plain channels) — the baseline a
/// distributed run of the same build function must reproduce bit for bit.
pub fn run_local(scenario: &str, build: &BuildFn, exec: Execution) -> RunResult {
    let mut pb = PartitionBuilder::new(BuildMode::Local, None);
    build(scenario, &mut pb);
    // io-ok: API contract (documented panic), not an I/O failure
    let exp = pb.exp.take().expect("build function must call init()");
    exp.run(exec)
}

/// Worker-process hook: call this first thing in `main` of every harness that
/// supports `--dist`. When the process was spawned by [`run_distributed`]
/// (detected via [`ENV_CONTROL`]), it runs the worker protocol for its
/// partition and **exits the process**; otherwise it returns immediately.
pub fn maybe_worker(build: &BuildFn) {
    if std::env::var_os(ENV_CONTROL).is_none() {
        return;
    }
    let code = match run_worker(build) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("simbricks dist worker failed: {e}");
            1
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------------

fn write_frame(s: &mut TcpStream, ty: u8, payload: &[u8]) -> io::Result<()> {
    // Mirror the reader's bound so an oversized payload (e.g. a gigantic
    // event log in RESULT) fails loudly on the writer side instead of
    // wrapping the u32 length prefix and corrupting the protocol.
    if payload.len() + 1 > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("control frame too large ({} bytes)", payload.len()),
        ));
    }
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.extend_from_slice(&((payload.len() + 1) as u32).to_le_bytes());
    frame.push(ty);
    frame.extend_from_slice(payload);
    s.write_all(&frame)
}

fn read_frame(s: &mut TcpStream) -> io::Result<(u8, Vec<u8>)> {
    let mut len = [0u8; 4];
    s.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "control frame length"));
    }
    let mut buf = vec![0u8; len];
    s.read_exact(&mut buf)?;
    let payload = buf.split_off(1);
    Ok((buf[0], payload))
}

fn expect_frame(s: &mut TcpStream, ty: u8) -> io::Result<Vec<u8>> {
    let (got, payload) = read_frame(s)?;
    if got != ty {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected control frame {ty}, got {got}"),
        ));
    }
    Ok(payload)
}

/// Bounded retry-with-exponential-backoff TCP connect: [`CONNECT_RETRIES`]
/// attempts starting at [`CONNECT_BACKOFF`], doubling per retry. Transient
/// refusals are normal while a fleet is (re)starting — a listener may be
/// advertised before its accept loop runs.
fn connect_with_backoff(addr: &str) -> io::Result<TcpStream> {
    let mut backoff = CONNECT_BACKOFF;
    let mut last = None;
    for attempt in 0..CONNECT_RETRIES {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < CONNECT_RETRIES {
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("connect failed"))) // io-ok: loop ran >= 1 time
}

/// Incremental reassembly buffer for control frames read from a socket
/// polled with a short `SO_RCVTIMEO` (partial reads are routine there).
#[derive(Default)]
struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop one complete frame if buffered: `(type, payload)`.
    fn pop(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "control frame length"));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let ty = self.buf[4];
        let payload = self.buf[5..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some((ty, payload)))
    }
}

/// One poll-read from a control socket into `fb`. Returns `Ok(true)` on EOF.
/// The socket stays blocking (writes unaffected); a short read timeout makes
/// this a bounded poll.
fn drain_ctrl(s: &mut TcpStream, fb: &mut FrameBuf, scratch: &mut [u8]) -> io::Result<bool> {
    loop {
        match s.read(scratch) {
            Ok(0) => return Ok(true),
            Ok(n) => {
                fb.push(&scratch[..n]);
                // A full scratch buffer usually means more is queued.
                if n < scratch.len() {
                    return Ok(false);
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return Ok(false)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Byte-slice reader for control payloads.
struct Dec<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, off: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.off + n > self.buf.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated control payload"));
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        // io-ok: infallible - take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        // io-ok: infallible - take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 control string"))
    }
}

/// Intern a log tag received over the control socket. [`EventLog`] records
/// tags as `&'static str`; the set of distinct tags is small and fixed, so
/// leaking one copy per unique tag is bounded.
fn intern_tag(tag: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static TAGS: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    // io-ok: process-global table; poisoned only if a holder already panicked
    let mut tags = TAGS.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    if let Some(t) = tags.iter().find(|t| **t == tag) {
        return t;
    }
    let leaked: &'static str = Box::leak(tag.to_string().into_boxed_str());
    tags.push(leaked);
    leaked
}

fn encode_result(result: &RunResult, local_globals: &[usize]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&result.wall_seconds().to_bits().to_le_bytes());
    out.extend_from_slice(&(result.component_names.len() as u32).to_le_bytes());
    for (i, name) in result.component_names.iter().enumerate() {
        out.extend_from_slice(&(local_globals[i] as u64).to_le_bytes());
        put_str(&mut out, name);
        out.extend_from_slice(&result.stats[i].to_wire());
        let log = &result.logs[i];
        out.extend_from_slice(&(log.len() as u32).to_le_bytes());
        for e in log.entries() {
            out.extend_from_slice(&e.time.as_ps().to_le_bytes());
            put_str(&mut out, e.tag);
            out.extend_from_slice(&e.a.to_le_bytes());
            out.extend_from_slice(&e.b.to_le_bytes());
        }
    }
    out
}

struct WorkerReport {
    wall_seconds: f64,
    /// (global id, name, stats, log) per component of the partition.
    components: Vec<(usize, String, KernelStats, EventLog)>,
}

fn decode_result(payload: &[u8]) -> io::Result<WorkerReport> {
    let mut d = Dec::new(payload);
    let wall_seconds = f64::from_bits(d.u64()?);
    let ncomp = d.u32()? as usize;
    let mut components = Vec::with_capacity(ncomp);
    for _ in 0..ncomp {
        let global = d.u64()? as usize;
        let name = d.str()?;
        let stats = KernelStats::from_wire(d.take(KernelStats::WIRE_LEN)?)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad stats encoding"))?;
        let nlog = d.u32()? as usize;
        let mut log = EventLog::enabled();
        for _ in 0..nlog {
            let time = SimTime::from_ps(d.u64()?);
            let tag = d.str()?;
            let a = d.u64()?;
            let b = d.u64()?;
            log.record(time, intern_tag(&tag), a, b);
        }
        components.push((global, name, stats, log));
    }
    Ok(WorkerReport {
        wall_seconds,
        components,
    })
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn env_string(key: &str) -> io::Result<String> {
    std::env::var(key)
        .map_err(|_| io::Error::new(io::ErrorKind::NotFound, format!("{key} not set")))
}

fn run_worker(build: &BuildFn) -> io::Result<()> {
    let control_addr = env_string(ENV_CONTROL)?;
    let partition = env_string(ENV_PARTITION)?;
    let scenario = std::env::var(ENV_SCENARIO).unwrap_or_default();
    let exec = std::env::var(ENV_EXEC)
        .ok()
        .as_deref()
        .and_then(Execution::parse)
        .unwrap_or(Execution::Sequential);
    // The orchestrator hands every worker the resolved transport for the
    // links it owns; a worker spawned by an older orchestrator (no env)
    // falls back to TCP, the wire-compatible default.
    let transport = std::env::var(ENV_DIST_TRANSPORT)
        .ok()
        .as_deref()
        .and_then(TransportKind::parse)
        .unwrap_or(TransportKind::Tcp)
        .resolve_local();
    let shm_dir = std::env::var_os(ENV_SHM_DIR)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    // Discovery pass: learn the cross-link set so the rendezvous point for
    // every owned link — a bound TCP listener or an shm region path — can be
    // advertised before any partner tries to connect.
    let mut pb = PartitionBuilder::new(BuildMode::Discover, Some(partition.clone()));
    build(&scenario, &mut pb);
    let links = pb.links;

    let mut listeners = HashMap::new();
    let mut my_links = Vec::new();
    for l in &links {
        if l.a == partition && l.b != partition {
            match transport {
                TransportKind::Shm => {
                    let path = shm::region_path(&shm_dir, &l.name);
                    my_links.push((l.name.clone(), format!("shm:{}", path.display())));
                }
                _ => {
                    let listener = TcpListener::bind("127.0.0.1:0")?;
                    my_links.push((l.name.clone(), format!("tcp:{}", listener.local_addr()?)));
                    listeners.insert(l.name.clone(), listener);
                }
            }
        }
    }

    // The orchestrator binds its control socket before spawning workers, but
    // a restarting fleet can race it — bounded backoff instead of one shot.
    let mut ctrl = connect_with_backoff(&control_addr)?;
    ctrl.set_read_timeout(Some(CONTROL_TIMEOUT))?;
    ctrl.set_nodelay(true)?;
    write_frame(&mut ctrl, MSG_HELLO, partition.as_bytes())?;
    let mut payload = Vec::new();
    payload.extend_from_slice(&(my_links.len() as u32).to_le_bytes());
    for (name, addr) in &my_links {
        put_str(&mut payload, name);
        put_str(&mut payload, addr);
    }
    write_frame(&mut ctrl, MSG_LINKS, &payload)?;

    let payload = expect_frame(&mut ctrl, MSG_ADDRS)?;
    let mut d = Dec::new(&payload);
    let n = d.u32()? as usize;
    let mut addr_map = HashMap::new();
    for _ in 0..n {
        let name = d.str()?;
        let addr = d.str()?;
        addr_map.insert(name, addr);
    }

    // Real build: instantiate this partition, bridging cross links.
    let mut pb = PartitionBuilder::new(BuildMode::Worker, Some(partition.clone()));
    pb.listeners = listeners;
    pb.addr_map = addr_map;
    pb.transport = transport;
    pb.shm_dir = Some(shm_dir);
    build(&scenario, &mut pb);
    if !pb.build_errors.is_empty() {
        return Err(io::Error::other(format!(
            "partition {partition:?} build failed: {}",
            pb.build_errors.join("; ")
        )));
    }
    let mut exp = pb.exp.take().expect("build function must call init()"); // io-ok: API contract
    if !exp.is_synchronized() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "distributed runs require a synchronized experiment",
        ));
    }
    // Remote promises arrive asynchronously: an all-blocked partition is a
    // normal transient state, not a deadlock.
    exp.set_external_inputs();
    let local_globals = std::mem::take(&mut pb.local_globals);
    let proxies = std::mem::take(&mut pb.proxies);
    let link_shutdowns = std::mem::take(&mut pb.link_shutdowns);

    // Checkpoint configuration: the orchestrator tells every worker whether
    // (and when) to quiesce, and hands it its restore snapshot, if any.
    let ckpt_cfg = expect_frame(&mut ctrl, MSG_CKPT)?;
    let mut d = Dec::new(&ckpt_cfg);
    let has_ckpt = d.take(1)?[0] != 0;
    let ckpt_at = d.u64()?;
    let ring_period = d.u64()?;
    let ring_keep = d.u64()? as usize;
    let heartbeat = match d.u64()? {
        0 => DEFAULT_HEARTBEAT,
        ms => Duration::from_millis(ms),
    };
    let has_restore = d.take(1)?[0] != 0;
    if has_restore {
        let blob = d.take(ckpt_cfg.len() - d.off)?.to_vec();
        exp.restore_from_blob(&blob).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("restoring partition {partition:?}: {e}"),
            )
        })?;
    }
    if has_ckpt {
        exp.checkpoint_at(SimTime::from_ps(ckpt_at), None);
    }
    if ring_period != 0 {
        // Every worker quiesces at the same virtual times (pause promises
        // keep the partitions in lockstep through the proxies), so each
        // partition contributes a snapshot for every ring slot.
        exp.set_checkpoint_ring(SimTime::from_ps(ring_period), ring_keep);
    }

    // Barrier-synchronized start: report readiness, wait for the release.
    write_frame(&mut ctrl, MSG_READY, &[])?;
    expect_frame(&mut ctrl, MSG_GO)?;

    // Post-GO the control channel goes full duplex: a pump thread owns the
    // read side (heartbeats out, SEVER/DONE in, EOF detection) while the
    // main thread simulates and later ships results through a shared writer.
    let writer = Arc::new(Mutex::new(ctrl.try_clone()?));
    let progress = exp.progress_handle();
    let run_done = Arc::new(AtomicBool::new(false));
    let done_acked = Arc::new(AtomicBool::new(false));
    let ctrl_gone = Arc::new(AtomicBool::new(false));
    if ring_period != 0 {
        // Stream each ring snapshot to the orchestrator as it is captured,
        // so the newest complete slot is already there when this worker (or
        // a peer) dies. Send failures are ignored here: the pump thread
        // classifies a dead control channel authoritatively.
        let w = writer.clone();
        exp.set_ring_sink(Box::new(move |at, blob| {
            let mut payload = Vec::with_capacity(8 + blob.len());
            payload.extend_from_slice(&at.as_ps().to_le_bytes());
            payload.extend_from_slice(blob);
            if let Ok(mut s) = w.lock() {
                let _ = write_frame(&mut s, MSG_RING, &payload);
            }
        }));
    }
    let pump = {
        let writer = writer.clone();
        let run_done = run_done.clone();
        let done_acked = done_acked.clone();
        let ctrl_gone = ctrl_gone.clone();
        let reader = ctrl;
        std::thread::Builder::new()
            .name("dist-ctrl-pump".into())
            .spawn(move || {
                pump_control(
                    reader,
                    writer,
                    progress,
                    link_shutdowns,
                    heartbeat,
                    run_done,
                    done_acked,
                    ctrl_gone,
                )
            })?
    };

    let result = exp.run(exec);
    run_done.store(true, Ordering::SeqCst);

    {
        let mut w = writer
            .lock()
            .map_err(|_| io::Error::other("control writer poisoned"))?;
        if has_ckpt {
            let blob = result.checkpoint.as_deref().unwrap_or(&[]);
            write_frame(&mut w, MSG_CKPT_SAVE, blob)?;
        }
        let payload = encode_result(&result, &local_globals);
        write_frame(&mut w, MSG_RESULT, &payload)?;
    }
    // Keep proxies alive until every worker has reported: our forwarders
    // have flushed everything our components sent, and the orchestrator's
    // DONE (observed by the pump thread) confirms no peer depends on them.
    let deadline = Instant::now() + CONTROL_TIMEOUT;
    while !done_acked.load(Ordering::SeqCst) {
        if ctrl_gone.load(Ordering::SeqCst) {
            return Err(io::Error::other("control connection closed before DONE"));
        }
        if Instant::now() > deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "timed out waiting for DONE"));
        }
        std::thread::sleep(POLL_TIMEOUT);
    }
    for p in proxies {
        p.shutdown();
    }
    let _ = pump.join();
    Ok(())
}

/// The orchestrator is gone (control EOF / write failure mid-run): a worker
/// must never outlive it, so exit the whole process — this is the orphan
/// leak fix for self-exec'd workers whose orchestrator aborts.
fn orphan_exit(msg: &str) -> ! {
    eprintln!("simbricks dist worker: {msg}; exiting to avoid an orphan process");
    std::process::exit(3);
}

/// Worker control pump (post-`GO`): heartbeats out on a wall-clock period —
/// carrying the partition's virtual-time progress — plus `SEVER`/`DONE`
/// dispatch in, and EOF detection.
#[allow(clippy::too_many_arguments)]
fn pump_control(
    mut reader: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    progress: Arc<std::sync::atomic::AtomicU64>,
    link_shutdowns: Vec<(String, Arc<ShutdownSignal>)>,
    heartbeat: Duration,
    run_done: Arc<AtomicBool>,
    done_acked: Arc<AtomicBool>,
    ctrl_gone: Arc<AtomicBool>,
) {
    // SO_RCVTIMEO is shared with the writer clone, but only this thread
    // reads post-GO, so the short poll timeout is safe.
    reader.set_read_timeout(Some(POLL_TIMEOUT)).ok();
    let mut fb = FrameBuf::default();
    let mut scratch = [0u8; 16 * 1024];
    let mut last_beat: Option<Instant> = None;
    loop {
        let due = match last_beat {
            Some(t) => t.elapsed() >= heartbeat,
            None => true,
        };
        if due {
            let payload = progress.load(Ordering::Relaxed).to_le_bytes();
            let sent = writer
                .lock()
                .map(|mut s| write_frame(&mut s, MSG_HEARTBEAT, &payload).is_ok())
                .unwrap_or(false);
            if !sent {
                if !run_done.load(Ordering::SeqCst) {
                    orphan_exit("control write failed mid-run");
                }
                ctrl_gone.store(true, Ordering::SeqCst);
                return;
            }
            last_beat = Some(Instant::now());
        }
        let eof = drain_ctrl(&mut reader, &mut fb, &mut scratch).unwrap_or(true);
        loop {
            match fb.pop() {
                Ok(Some((MSG_SEVER, payload))) => {
                    let link = String::from_utf8_lossy(&payload).into_owned();
                    for (name, shutdown) in &link_shutdowns {
                        if *name == link {
                            shutdown.signal();
                        }
                    }
                    eprintln!("dist worker: severed link {link:?}");
                }
                Ok(Some((MSG_DONE, _))) => {
                    done_acked.store(true, Ordering::SeqCst);
                    return;
                }
                // Unexpected frame types are ignored; the orchestrator is
                // the protocol authority.
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    if !run_done.load(Ordering::SeqCst) {
                        orphan_exit("control stream corrupt mid-run");
                    }
                    ctrl_gone.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
        if eof {
            if !run_done.load(Ordering::SeqCst) {
                orphan_exit("orchestrator closed the control connection mid-run");
            }
            ctrl_gone.store(true, Ordering::SeqCst);
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------------

/// Kills still-running workers when the orchestrator bails out early, and
/// removes the per-run shm region directory in every exit path — normal
/// completion, early error, and child reaping alike — so crashed or killed
/// runs never leak region files.
struct ChildGuard {
    children: Vec<(String, Child)>,
    shm_dir: Option<PathBuf>,
}

impl ChildGuard {
    fn disarm(&mut self) -> Vec<(String, Child)> {
        std::mem::take(&mut self.children)
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(dir) = self.shm_dir.take() {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Resolve the requested transport for this run, creating the per-run shm
/// region directory when shared memory is selected. `Auto` falls back to TCP
/// when the directory cannot be created; an explicit `shm` request fails
/// loudly instead.
fn resolve_run_transport(
    requested: TransportKind,
) -> io::Result<(TransportKind, Option<PathBuf>)> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_RUN: AtomicU64 = AtomicU64::new(0);
    match requested.resolve_local() {
        TransportKind::Shm => {
            let dir = std::env::temp_dir().join(format!(
                "simbricks-dist-{}-{}",
                std::process::id(),
                NEXT_RUN.fetch_add(1, Ordering::Relaxed)
            ));
            match std::fs::create_dir_all(&dir) {
                Ok(()) => Ok((TransportKind::Shm, Some(dir))),
                Err(e) if requested == TransportKind::Auto => {
                    eprintln!("dist: shm region dir unavailable ({e}), falling back to tcp");
                    Ok((TransportKind::Tcp, None))
                }
                Err(e) => Err(e),
            }
        }
        kind => Ok((kind, None)),
    }
}

/// What the local discovery pass learned about the build function.
struct Discovery {
    links: Vec<LinkDecl>,
    expected_components: usize,
    global_names: Vec<String>,
}

/// One scheduled fault plus its fired flag. The flag survives fleet
/// restarts, so each fault injects exactly once per run — a restarted fleet
/// re-simulating past a fault's threshold does not re-trigger it.
struct FaultState {
    spec: FaultSpec,
    fired: bool,
}

/// Run the discovery build once and validate options against it.
fn discover(opts: &DistOptions, build: &BuildFn) -> Result<Discovery, DistError> {
    let mut pb = PartitionBuilder::new(BuildMode::Discover, None);
    build(&opts.scenario, &mut pb);
    for l in &pb.links {
        for p in [&l.a, &l.b] {
            if !opts.partitions.contains(p) {
                return Err(DistError::Invalid(format!(
                    "link {:?} references unknown partition {p:?}",
                    l.name
                )));
            }
        }
    }
    if let Some(ring) = &opts.ring {
        if ring.period == SimTime::ZERO {
            return Err(DistError::Invalid("checkpoint ring period must be non-zero".into()));
        }
    }
    for f in &opts.faults {
        match &f.kind {
            FaultKind::KillWorker { partition } => {
                if !opts.partitions.contains(partition) {
                    return Err(DistError::Invalid(format!(
                        "kill_worker fault targets unknown partition {partition:?}"
                    )));
                }
            }
            FaultKind::SeverLink { link } => {
                if !pb.links.iter().any(|l| l.name == *link) {
                    return Err(DistError::Invalid(format!(
                        "sever_link fault targets unknown cross link {link:?}"
                    )));
                }
            }
            FaultKind::CorruptCheckpoint | FaultKind::TruncateCheckpoint => {
                if opts.ring.is_none() {
                    return Err(DistError::Invalid(
                        "corrupt/truncate_checkpoint faults require a checkpoint ring".into(),
                    ));
                }
            }
        }
    }
    Ok(Discovery {
        links: pb.links,
        expected_components: pb.next_global,
        global_names: std::mem::take(&mut pb.global_names),
    })
}

/// Raw per-partition ring snapshots, keyed slot time → partition name. This
/// outlives individual fleet attempts: it is the recovery store.
type RingStore = BTreeMap<u64, BTreeMap<String, Vec<u8>>>;

/// Pick the newest ring slot for which every partition's snapshot arrived
/// *and decodes cleanly*. Corrupt or torn slots are recorded in the report
/// and older slots tried, so an injected `corrupt_checkpoint` degrades
/// recovery by one period instead of poisoning it.
fn select_restore(
    ring_store: &RingStore,
    partitions: &[String],
    report: &mut RecoveryReport,
) -> Option<(u64, HashMap<String, Vec<u8>>)> {
    for (at, parts) in ring_store.iter().rev() {
        if !partitions.iter().all(|p| parts.contains_key(p)) {
            continue;
        }
        let mut ok = true;
        for (p, blob) in parts {
            if let Err(e) = crate::checkpoint::CheckpointFile::decode(blob) {
                report
                    .rejected_entries
                    .push(format!("slot {at} ps, partition {p:?}: {e}"));
                ok = false;
            }
        }
        if ok {
            return Some((*at, parts.iter().map(|(k, v)| (k.clone(), v.clone())).collect()));
        }
    }
    None
}

fn control_lost(p: &str, e: io::Error) -> DistError {
    DistError::ControlLost { partition: p.to_string(), error: e.to_string() }
}

fn conn_of<'a>(
    conns: &'a mut HashMap<String, TcpStream>,
    p: &str,
) -> Result<&'a mut TcpStream, DistError> {
    conns.get_mut(p).ok_or_else(|| DistError::Protocol {
        partition: p.to_string(),
        error: "no control connection".into(),
    })
}

/// Orchestrate a true multi-process distributed run: spawn one worker process
/// per partition (self-`exec` of the current binary; workers enter via
/// [`maybe_worker`]), wire every cross-partition link through proxies with
/// listen/connect handshaking, release all workers from a start barrier,
/// supervise them (heartbeats, crash detection, deterministic fault
/// injection), and collect per-worker statistics and event logs over the
/// control socket. On a retryable failure with restarts remaining
/// ([`DistOptions::max_restarts`]) the fleet is relaunched from the newest
/// valid checkpoint-ring slot (or from zero without one); §5.5 determinism
/// makes the recovered result bit-identical to an undisturbed run. Returns
/// the reassembled [`DistResult`] with its [`RecoveryReport`].
pub fn run_distributed(opts: &DistOptions, build: &BuildFn) -> Result<DistResult, DistError> {
    let disc = discover(opts, build)?;
    let mut report = RecoveryReport::default();
    let mut faults: Vec<FaultState> = opts
        .faults
        .iter()
        .map(|spec| FaultState { spec: spec.clone(), fired: false })
        .collect();
    let mut ring_store: RingStore = RingStore::new();
    let mut restore: Option<(u64, HashMap<String, Vec<u8>>)> = None;
    let mut restarts: u32 = 0;
    loop {
        let mut high_water: u64 = restore.as_ref().map(|(at, _)| *at).unwrap_or(0);
        let attempt = run_attempt(
            opts,
            &disc,
            restore.as_ref(),
            &mut faults,
            &mut ring_store,
            &mut report,
            &mut high_water,
        );
        match attempt {
            Ok(mut res) => {
                res.recovery = report;
                return Ok(res);
            }
            Err(e) if e.retryable() && restarts < opts.max_restarts => {
                restarts += 1;
                report.restarts = restarts;
                restore = select_restore(&ring_store, &opts.partitions, &mut report);
                let cut = restore.as_ref().map(|(at, _)| *at).unwrap_or(0);
                report.ring_entries_used.push(restore.as_ref().map(|_| SimTime::from_ps(cut)));
                report.time_lost =
                    SimTime::from_ps(report.time_lost.as_ps() + high_water.saturating_sub(cut));
                // Slots past the restore point will be re-captured (bit-
                // identically) by the retry; dropping them keeps a later
                // failure from restoring past its own attempt's progress.
                ring_store.retain(|at, _| *at <= cut);
                match &restore {
                    Some((at, _)) => eprintln!(
                        "dist: {e}; restarting fleet from ring entry at {at} ps \
                         (restart {restarts}/{})",
                        opts.max_restarts
                    ),
                    None => eprintln!(
                        "dist: {e}; no usable ring entry, restarting fleet from zero \
                         (restart {restarts}/{})",
                        opts.max_restarts
                    ),
                }
            }
            Err(e) if e.retryable() => {
                return Err(DistError::RestartsExhausted {
                    restarts,
                    last: Box::new(e),
                    report,
                });
            }
            Err(e) => return Err(e),
        }
    }
}

/// Per-worker supervision state during one fleet attempt.
struct WorkerState {
    fb: FrameBuf,
    last_seen: Instant,
    /// Newest virtual-time progress reported (heartbeats / ring frames).
    virt: u64,
    ckpt_blob: Option<Vec<u8>>,
    report: Option<WorkerReport>,
}

/// One fleet launch: spawn, handshake, supervise to completion or failure.
/// The caller owns the retry policy; `ring_store` and `faults` persist
/// across attempts.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    opts: &DistOptions,
    disc: &Discovery,
    restore: Option<&(u64, HashMap<String, Vec<u8>>)>,
    faults: &mut [FaultState],
    ring_store: &mut RingStore,
    report: &mut RecoveryReport,
    high_water: &mut u64,
) -> Result<DistResult, DistError> {
    let (transport, shm_dir) = resolve_run_transport(opts.transport)?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(DistError::from)?;
    let control_addr = listener.local_addr().map_err(DistError::from)?;
    let exe = std::env::current_exe().map_err(DistError::from)?;
    let mut guard = ChildGuard {
        children: Vec::new(),
        shm_dir: shm_dir.clone(),
    };
    for p in &opts.partitions {
        let mut cmd = Command::new(&exe);
        cmd.args(&opts.worker_args)
            .env(ENV_CONTROL, control_addr.to_string())
            .env(ENV_PARTITION, p)
            .env(ENV_SCENARIO, &opts.scenario)
            .env(ENV_EXEC, opts.exec.to_arg())
            .env(ENV_DIST_TRANSPORT, transport.to_arg())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if let Some(dir) = &shm_dir {
            cmd.env(ENV_SHM_DIR, dir);
        }
        let child = cmd
            .spawn()
            .map_err(|e| DistError::Io(format!("spawning worker {p:?}: {e}")))?;
        guard.children.push((p.clone(), child));
    }

    // Accept one control connection per worker (with a deadline so a worker
    // that dies before connecting fails the run instead of hanging it).
    listener.set_nonblocking(true).map_err(DistError::from)?;
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    let mut conns: HashMap<String, TcpStream> = HashMap::new();
    while conns.len() < opts.partitions.len() {
        if Instant::now() > deadline {
            let missing: Vec<String> = opts
                .partitions
                .iter()
                .filter(|p| !conns.contains_key(*p))
                .cloned()
                .collect();
            return Err(DistError::ConnectTimeout { missing });
        }
        for (name, child) in &mut guard.children {
            if let Some(status) = child.try_wait().map_err(DistError::from)? {
                return Err(DistError::WorkerExited {
                    partition: name.clone(),
                    status: status.to_string(),
                });
            }
        }
        match listener.accept() {
            Ok((mut s, _)) => {
                s.set_nonblocking(false).map_err(DistError::from)?;
                s.set_read_timeout(Some(CONTROL_TIMEOUT)).map_err(DistError::from)?;
                s.set_nodelay(true).map_err(DistError::from)?;
                let hello = expect_frame(&mut s, MSG_HELLO)
                    .map_err(|e| control_lost("<handshaking>", e))?;
                let partition = String::from_utf8(hello).map_err(|_| DistError::Protocol {
                    partition: "<handshaking>".into(),
                    error: "non-utf8 HELLO".into(),
                })?;
                if !opts.partitions.contains(&partition) {
                    return Err(DistError::Protocol {
                        partition: partition.clone(),
                        error: "unknown worker partition".into(),
                    });
                }
                conns.insert(partition, s);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_TIMEOUT);
            }
            Err(e) => return Err(DistError::from(e)),
        }
    }

    // Gather every worker's listener addresses, then broadcast the full map.
    let mut addr_map: Vec<(String, String)> = Vec::new();
    for p in &opts.partitions {
        let payload =
            expect_frame(conn_of(&mut conns, p)?, MSG_LINKS).map_err(|e| control_lost(p, e))?;
        let mut d = Dec::new(&payload);
        let n = d.u32().map_err(|e| control_lost(p, e))? as usize;
        for _ in 0..n {
            let name = d.str().map_err(|e| control_lost(p, e))?;
            let addr = d.str().map_err(|e| control_lost(p, e))?;
            addr_map.push((name, addr));
        }
    }
    let mut payload = Vec::new();
    payload.extend_from_slice(&(addr_map.len() as u32).to_le_bytes());
    for (name, addr) in &addr_map {
        put_str(&mut payload, name);
        put_str(&mut payload, addr);
    }
    for p in &opts.partitions {
        write_frame(conn_of(&mut conns, p)?, MSG_ADDRS, &payload)
            .map_err(|e| control_lost(p, e))?;
    }

    // Checkpoint configuration: an explicit presence byte plus the quiesce
    // time, then — when restoring — each partition's snapshot shipped over
    // the control socket. Recovery restores (ring blobs held in memory) take
    // precedence over [`DistOptions::restore_from`]. A one-shot checkpoint
    // whose time the restore point has already passed is skipped for this
    // attempt — it was only capturable in the attempt that failed.
    if let Some((_, dir)) = &opts.checkpoint {
        std::fs::create_dir_all(dir).map_err(DistError::from)?;
    }
    if let Some(ring) = &opts.ring {
        std::fs::create_dir_all(&ring.dir).map_err(DistError::from)?;
    }
    let restore_at = restore.map(|(at, _)| *at);
    let expect_ckpt = match (&opts.checkpoint, restore_at) {
        (Some((at, _)), Some(r)) if r >= at.as_ps() => {
            eprintln!(
                "dist: one-shot checkpoint at {} ps predates the restore point ({r} ps); skipped",
                at.as_ps()
            );
            false
        }
        (Some(_), _) => true,
        (None, _) => false,
    };
    for p in &opts.partitions {
        let mut payload = Vec::new();
        payload.push(expect_ckpt as u8);
        let ckpt_at = opts.checkpoint.as_ref().map(|(at, _)| at.as_ps()).unwrap_or(0);
        payload.extend_from_slice(&ckpt_at.to_le_bytes());
        let (ring_period, ring_keep) = opts
            .ring
            .as_ref()
            .map(|r| (r.period.as_ps(), r.keep as u64))
            .unwrap_or((0, 0));
        payload.extend_from_slice(&ring_period.to_le_bytes());
        payload.extend_from_slice(&ring_keep.to_le_bytes());
        payload.extend_from_slice(&(opts.heartbeat.as_millis() as u64).to_le_bytes());
        let restore_blob = match restore {
            Some((_, blobs)) => blobs.get(p).cloned(),
            None => match &opts.restore_from {
                Some(dir) => Some(
                    std::fs::read(dir.join(format!("{p}.ckpt"))).map_err(DistError::from)?,
                ),
                None => None,
            },
        };
        match restore_blob {
            Some(blob) => {
                payload.push(1);
                payload.extend_from_slice(&blob);
            }
            None => payload.push(0),
        }
        write_frame(conn_of(&mut conns, p)?, MSG_CKPT, &payload)
            .map_err(|e| control_lost(p, e))?;
    }

    // Barrier-synchronized start: wait until every partition is built and
    // its proxies are wired, then release all workers together.
    for p in &opts.partitions {
        expect_frame(conn_of(&mut conns, p)?, MSG_READY).map_err(|e| control_lost(p, e))?;
    }
    let start = Instant::now();
    for p in &opts.partitions {
        write_frame(conn_of(&mut conns, p)?, MSG_GO, &[]).map_err(|e| control_lost(p, e))?;
    }

    let mut states_done = supervise(
        opts, disc, &mut conns, &mut guard, faults, ring_store, report, high_water, restore_at,
    )?;

    // All partitions reported. Persist the one-shot checkpoint blobs, then
    // acknowledge and reap.
    let wall = start.elapsed();
    let mut partition_walls = Vec::new();
    let mut all: Vec<(usize, String, KernelStats, EventLog)> = Vec::new();
    for p in &opts.partitions {
        let st = states_done.remove(p).ok_or_else(|| DistError::Protocol {
            partition: p.clone(),
            error: "supervision lost its state".into(),
        })?;
        if expect_ckpt {
            let blob = st.ckpt_blob.as_deref().unwrap_or(&[]);
            if blob.is_empty() {
                return Err(DistError::Protocol {
                    partition: p.clone(),
                    error: "reported an empty checkpoint".into(),
                });
            }
            if let Some((_, dir)) = &opts.checkpoint {
                crate::checkpoint::write_blob(&dir.join(format!("{p}.ckpt")), blob)
                    .map_err(|e| DistError::Io(format!("writing checkpoint of {p:?}: {e}")))?;
            }
        }
        let rep = st.report.ok_or_else(|| DistError::Protocol {
            partition: p.clone(),
            error: "no result".into(),
        })?;
        partition_walls.push(rep.wall_seconds);
        all.extend(rep.components);
    }

    // Clean teardown: acknowledge, then reap the worker processes.
    for p in &opts.partitions {
        write_frame(conn_of(&mut conns, p)?, MSG_DONE, &[]).map_err(|e| control_lost(p, e))?;
    }
    for (name, mut child) in guard.disarm() {
        let status = child.wait().map_err(DistError::from)?;
        if !status.success() {
            return Err(DistError::Protocol {
                partition: name,
                error: format!("exited with {status} after reporting"),
            });
        }
    }

    // Reassemble in global build order so logs and stats line up with the
    // in-process baseline.
    all.sort_by_key(|(global, _, _, _)| *global);
    if all.len() != disc.expected_components {
        return Err(DistError::Protocol {
            partition: "<all>".into(),
            error: format!(
                "workers reported {} components, build declares {}",
                all.len(),
                disc.expected_components
            ),
        });
    }
    let mut component_names = Vec::with_capacity(all.len());
    let mut stats = Vec::with_capacity(all.len());
    let mut logs = Vec::with_capacity(all.len());
    for (_, name, s, l) in all {
        component_names.push(name);
        stats.push(s);
        logs.push(l);
    }
    Ok(DistResult {
        wall,
        partition_names: opts.partitions.clone(),
        partition_walls,
        component_names,
        stats,
        logs,
        recovery: RecoveryReport::default(),
    })
}

/// Deterministically damage an encoded checkpoint: flip one bit mid-blob
/// (checksum rejection) or truncate to half length (a torn write).
fn damage_blob(blob: &mut Vec<u8>, truncate: bool) {
    if truncate {
        blob.truncate(blob.len() / 2);
    } else if !blob.is_empty() {
        let mid = blob.len() / 2;
        blob[mid] ^= 0x10;
    }
}

/// Merge one completed ring slot's per-partition containers into a
/// whole-experiment container on disk — byte-identical to a single-process
/// checkpoint of the same slot, so the ring restores through the ordinary
/// local path. An undecodable part rejects the slot (recorded in the report)
/// instead of failing the run: recovery applies the same validation to the
/// in-memory copy and falls back to an older slot.
fn merge_ring_slot(
    at: u64,
    ring_store: &RingStore,
    opts: &DistOptions,
    global_names: &[String],
    report: &mut RecoveryReport,
) {
    let ring = match &opts.ring {
        Some(r) => r,
        None => return,
    };
    let parts = match ring_store.get(&at) {
        Some(p) => p,
        None => return,
    };
    let mut files = Vec::with_capacity(opts.partitions.len());
    for p in &opts.partitions {
        let blob = match parts.get(p) {
            Some(b) => b,
            None => return,
        };
        match crate::checkpoint::CheckpointFile::decode(blob) {
            Ok(f) => files.push(f),
            Err(e) => {
                report
                    .rejected_entries
                    .push(format!("merge slot {at} ps, partition {p:?}: {e}"));
                return;
            }
        }
    }
    let merged = match crate::checkpoint::CheckpointFile::merge(&files, global_names) {
        Ok(m) => m,
        Err(e) => {
            report.rejected_entries.push(format!("merge slot {at} ps: {e}"));
            return;
        }
    };
    let path = crate::checkpoint::ring_entry_path(&ring.dir, SimTime::from_ps(at));
    if let Err(e) = merged.write_to(&path) {
        report
            .rejected_entries
            .push(format!("write {}: {e}", path.display()));
        return;
    }
    let _ = crate::checkpoint::prune_ring(&ring.dir, ring.keep);
}

/// The post-`GO` supervisor loop: drain every worker's control socket
/// (heartbeats, streamed ring snapshots, checkpoint blobs, results), detect
/// failures (process exit, heartbeat silence, control EOF, protocol
/// violations) and classify them as typed errors, and inject scheduled
/// faults when the fleet's minimum virtual time crosses their thresholds.
/// Returns every partition's final state once all results are in.
#[allow(clippy::too_many_arguments)]
fn supervise(
    opts: &DistOptions,
    disc: &Discovery,
    conns: &mut HashMap<String, TcpStream>,
    guard: &mut ChildGuard,
    faults: &mut [FaultState],
    ring_store: &mut RingStore,
    report: &mut RecoveryReport,
    high_water: &mut u64,
    restore_at: Option<u64>,
) -> Result<HashMap<String, WorkerState>, DistError> {
    let base = restore_at.unwrap_or(0);
    for p in &opts.partitions {
        conn_of(conns, p)?
            .set_read_timeout(Some(POLL_TIMEOUT))
            .map_err(DistError::from)?;
    }
    let hb_timeout = std::cmp::max(opts.heartbeat.saturating_mul(20), Duration::from_secs(15));
    let mut states: HashMap<String, WorkerState> = opts
        .partitions
        .iter()
        .map(|p| {
            (
                p.clone(),
                WorkerState {
                    fb: FrameBuf::default(),
                    last_seen: Instant::now(),
                    virt: base,
                    ckpt_blob: None,
                    report: None,
                },
            )
        })
        .collect();
    let mut scratch = vec![0u8; 256 * 1024];
    loop {
        // 1. Drain every control socket; dispatch complete frames. Sockets
        // of partitions that already reported are still drained (their pump
        // threads heartbeat until DONE).
        let mut completed_slots: Vec<u64> = Vec::new();
        for p in &opts.partitions {
            let s = conn_of(conns, p)?;
            let st = match states.get_mut(p) {
                Some(st) => st,
                None => continue,
            };
            let eof = match drain_ctrl(s, &mut st.fb, &mut scratch) {
                Ok(eof) => eof,
                Err(e) => {
                    if st.report.is_none() {
                        return Err(control_lost(p, e));
                    }
                    false
                }
            };
            loop {
                match st.fb.pop() {
                    Ok(Some((MSG_HEARTBEAT, payload))) => {
                        let mut d = Dec::new(&payload);
                        st.virt = d.u64().map_err(|e| DistError::Protocol {
                            partition: p.clone(),
                            error: format!("bad heartbeat: {e}"),
                        })?;
                        st.last_seen = Instant::now();
                    }
                    Ok(Some((MSG_RING, payload))) => {
                        if payload.len() < 8 {
                            return Err(DistError::Protocol {
                                partition: p.clone(),
                                error: "short ring frame".into(),
                            });
                        }
                        let at = u64::from_le_bytes([
                            payload[0], payload[1], payload[2], payload[3], payload[4],
                            payload[5], payload[6], payload[7],
                        ]);
                        st.last_seen = Instant::now();
                        st.virt = st.virt.max(at);
                        let slot = ring_store.entry(at).or_default();
                        slot.insert(p.clone(), payload[8..].to_vec());
                        if slot.len() == opts.partitions.len() {
                            completed_slots.push(at);
                        }
                    }
                    Ok(Some((MSG_CKPT_SAVE, payload))) => {
                        st.ckpt_blob = Some(payload);
                        st.last_seen = Instant::now();
                    }
                    Ok(Some((MSG_RESULT, payload))) => {
                        let rep = decode_result(&payload).map_err(|e| DistError::Protocol {
                            partition: p.clone(),
                            error: format!("bad result: {e}"),
                        })?;
                        st.report = Some(rep);
                        st.last_seen = Instant::now();
                    }
                    Ok(Some((ty, _))) => {
                        return Err(DistError::Protocol {
                            partition: p.clone(),
                            error: format!("unexpected control frame type {ty}"),
                        });
                    }
                    Ok(None) => break,
                    Err(e) => {
                        return Err(DistError::Protocol {
                            partition: p.clone(),
                            error: e.to_string(),
                        });
                    }
                }
            }
            if eof && st.report.is_none() {
                return Err(DistError::ControlLost {
                    partition: p.clone(),
                    error: "control connection EOF".into(),
                });
            }
        }

        // 2. Merge newly completed ring slots into on-disk whole-experiment
        // containers, and bound the in-memory store like the on-disk ring.
        for at in completed_slots {
            merge_ring_slot(at, ring_store, opts, &disc.global_names, report);
        }
        if let Some(ring) = &opts.ring {
            if ring.keep > 0 {
                let complete: Vec<u64> = ring_store
                    .iter()
                    .filter(|(_, parts)| parts.len() == opts.partitions.len())
                    .map(|(at, _)| *at)
                    .collect();
                if complete.len() > ring.keep {
                    for at in &complete[..complete.len() - ring.keep] {
                        ring_store.remove(at);
                    }
                }
            }
        }

        // 3. Liveness: a worker that exited, or fell silent, before its
        // result is a classified failure, not a hang.
        for (name, child) in &mut guard.children {
            let done = states.get(name).map(|s| s.report.is_some()).unwrap_or(false);
            if done {
                continue;
            }
            if let Some(status) = child.try_wait().map_err(DistError::from)? {
                return Err(DistError::WorkerExited {
                    partition: name.clone(),
                    status: status.to_string(),
                });
            }
            if let Some(st) = states.get(name) {
                let silent = st.last_seen.elapsed();
                if silent > hb_timeout {
                    return Err(DistError::HeartbeatTimeout {
                        partition: name.clone(),
                        silent,
                    });
                }
            }
        }

        // 4. Progress bookkeeping + deterministic fault injection. Faults
        // trigger on the fleet's *minimum* virtual time so the schedule is
        // independent of which partition happens to run ahead.
        let min_virt = states.values().map(|s| s.virt).min().unwrap_or(base);
        *high_water = (*high_water).max(min_virt);
        for f in faults.iter_mut() {
            if f.fired || min_virt < f.spec.at.as_ps() {
                continue;
            }
            f.fired = true;
            let threshold = f.spec.at.as_ps();
            match &f.spec.kind {
                FaultKind::KillWorker { partition } => {
                    report.faults_injected.push(format!(
                        "kill_worker {partition:?} at {threshold} ps (fleet at {min_virt} ps)"
                    ));
                    for (name, child) in &mut guard.children {
                        if name == partition {
                            let _ = child.kill();
                        }
                    }
                }
                FaultKind::SeverLink { link } => {
                    report.faults_injected.push(format!(
                        "sever_link {link:?} at {threshold} ps (fleet at {min_virt} ps)"
                    ));
                    let ends: Vec<String> = disc
                        .links
                        .iter()
                        .filter(|l| l.name == *link)
                        .flat_map(|l| [l.a.clone(), l.b.clone()])
                        .collect();
                    for p in &ends {
                        if let Ok(s) = conn_of(conns, p) {
                            let _ = write_frame(s, MSG_SEVER, link.as_bytes());
                        }
                    }
                    // Let the workers tear their forwarders down before the
                    // fleet is reaped, so the failure is attributable to the
                    // sever rather than a racing teardown.
                    std::thread::sleep(Duration::from_millis(50));
                    return Err(DistError::FaultSever { link: link.clone() });
                }
                FaultKind::CorruptCheckpoint | FaultKind::TruncateCheckpoint => {
                    let truncate = matches!(f.spec.kind, FaultKind::TruncateCheckpoint);
                    let label = if truncate { "truncate_checkpoint" } else { "corrupt_checkpoint" };
                    let newest = ring_store
                        .iter()
                        .rev()
                        .find(|(_, parts)| parts.len() == opts.partitions.len())
                        .map(|(at, _)| *at);
                    match newest {
                        Some(at) => {
                            report.faults_injected.push(format!(
                                "{label} ring slot at {at} ps (injected at {min_virt} ps)"
                            ));
                            if let Some(parts) = ring_store.get_mut(&at) {
                                for blob in parts.values_mut() {
                                    damage_blob(blob, truncate);
                                }
                            }
                            if let Some(ring) = &opts.ring {
                                let path = crate::checkpoint::ring_entry_path(
                                    &ring.dir,
                                    SimTime::from_ps(at),
                                );
                                if let Ok(mut data) = std::fs::read(&path) {
                                    damage_blob(&mut data, truncate);
                                    let _ = std::fs::write(&path, &data);
                                }
                            }
                        }
                        None => report.faults_injected.push(format!(
                            "{label}: no complete ring slot to damage (fleet at {min_virt} ps)"
                        )),
                    }
                }
            }
        }

        // 5. Done when every partition has reported.
        if states.values().all(|s| s.report.is_some()) {
            return Ok(states);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{Kernel, Model, OwnedMsg, PortId};

    /// Minimal ping model used to exercise the builder plumbing.
    struct Pinger {
        count: u64,
        sent: u64,
        received: u64,
    }

    impl Model for Pinger {
        fn init(&mut self, k: &mut Kernel) {
            if self.count > 0 {
                k.schedule_at(SimTime::from_ns(100), 0);
            }
        }
        fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {
            self.received += 1;
        }
        fn on_timer(&mut self, k: &mut Kernel, _t: u64) {
            k.send(PortId(0), 1, b"ping");
            self.sent += 1;
            if self.sent < self.count {
                k.schedule_in(SimTime::from_us(1), 0);
            }
        }
    }

    fn two_partition_build(_scenario: &str, pb: &mut PartitionBuilder) {
        pb.init(Experiment::new("pb-test", SimTime::from_us(50)).with_logging());
        let params = pb.exp().eth_params();
        let (a, b) = pb.channel("x-link", "p0", "p1", params);
        pb.add(
            "p0",
            "left",
            Box::new(Pinger { count: 5, sent: 0, received: 0 }),
            vec![a],
        );
        pb.add(
            "p1",
            "right",
            Box::new(Pinger { count: 0, sent: 0, received: 0 }),
            vec![b],
        );
    }

    #[test]
    fn local_mode_builds_and_runs_everything() {
        let r = run_local("", &two_partition_build, Execution::Sequential);
        assert_eq!(r.component_names, vec!["left", "right"]);
        let right: &Pinger = r.model(1).unwrap();
        assert_eq!(right.received, 5);
    }

    #[test]
    fn discover_mode_records_links_and_global_order_without_instantiating() {
        let mut pb = PartitionBuilder::new(BuildMode::Discover, None);
        two_partition_build("", &mut pb);
        assert_eq!(pb.next_global, 2, "both components counted");
        assert!(pb.local_globals.is_empty(), "nothing instantiated");
        assert_eq!(pb.links.len(), 1);
        assert_eq!(pb.links[0].name, "x-link");
        assert_eq!((pb.links[0].a.as_str(), pb.links[0].b.as_str()), ("p0", "p1"));
        assert_eq!(pb.exp().num_components(), 0);
    }

    #[test]
    fn worker_mode_instantiates_only_its_partition() {
        // No sockets involved: an intra-partition channel plus a foreign
        // component exercise the filtering logic without cross links.
        let mut pb = PartitionBuilder::new(BuildMode::Worker, Some("p0".into()));
        pb.init(Experiment::new("w", SimTime::from_us(10)));
        let params = pb.exp().eth_params();
        let (a, b) = pb.channel("local-link", "p0", "p0", params);
        let g0 = pb.add(
            "p0",
            "mine-a",
            Box::new(Pinger { count: 0, sent: 0, received: 0 }),
            vec![a],
        );
        let g1 = pb.add(
            "p1",
            "theirs",
            Box::new(Pinger { count: 0, sent: 0, received: 0 }),
            vec![],
        );
        let g2 = pb.add(
            "p0",
            "mine-b",
            Box::new(Pinger { count: 0, sent: 0, received: 0 }),
            vec![b],
        );
        assert_eq!((g0, g1, g2), (0, 1, 2), "global ids count every component");
        assert_eq!(pb.exp().num_components(), 2, "only p0 components instantiated");
        assert_eq!(pb.local_globals, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate cross-link name")]
    fn duplicate_link_names_are_rejected() {
        let mut pb = PartitionBuilder::new(BuildMode::Discover, None);
        pb.init(Experiment::new("dup", SimTime::from_us(1)));
        let params = pb.exp().eth_params();
        let _ = pb.channel("l", "a", "b", params);
        let _ = pb.channel("l", "a", "c", params);
    }

    #[test]
    fn dist_options_builders() {
        let o = DistOptions::new(vec!["p0".into()], "s")
            .with_exec(Execution::Sharded { workers: 2 })
            .with_worker_args(vec!["x".into()])
            .with_max_restarts(3)
            .with_heartbeat(Duration::from_millis(25))
            .with_faults(vec![FaultSpec {
                at: SimTime::from_us(1),
                kind: FaultKind::KillWorker { partition: "p0".into() },
            }]);
        assert_eq!(o.exec, Execution::Sharded { workers: 2 });
        assert_eq!(o.worker_args, vec!["x"]);
        assert_eq!(o.scenario, "s");
        assert_eq!(o.max_restarts, 3);
        assert_eq!(o.heartbeat, Duration::from_millis(25));
        assert_eq!(o.faults.len(), 1);
    }

    #[test]
    fn dist_error_retryability_classification() {
        assert!(DistError::WorkerExited { partition: "p".into(), status: "9".into() }.retryable());
        assert!(DistError::ControlLost { partition: "p".into(), error: "eof".into() }.retryable());
        assert!(DistError::HeartbeatTimeout {
            partition: "p".into(),
            silent: Duration::from_secs(1)
        }
        .retryable());
        assert!(DistError::FaultSever { link: "l".into() }.retryable());
        assert!(DistError::ConnectTimeout { missing: vec!["p".into()] }.retryable());
        assert!(!DistError::Invalid("x".into()).retryable());
        assert!(!DistError::Io("x".into()).retryable());
        assert!(!DistError::Protocol { partition: "p".into(), error: "x".into() }.retryable());
        let report = RecoveryReport::default();
        assert!(!DistError::RestartsExhausted {
            restarts: 2,
            last: Box::new(DistError::FaultSever { link: "l".into() }),
            report,
        }
        .retryable());
    }

    /// A partition-shaped checkpoint container encoded for ring-store tests.
    fn encoded_part(name: &str, at: SimTime) -> Vec<u8> {
        use crate::checkpoint::CheckpointFile;
        CheckpointFile {
            name: name.to_string(),
            at,
            components: Vec::new(),
        }
        .encode()
    }

    #[test]
    fn select_restore_skips_corrupt_and_incomplete_slots() {
        let parts = ["p0".to_string(), "p1".to_string()];
        let mut store = RingStore::new();
        // Slot 100: complete and valid.
        for p in &parts {
            store
                .entry(100)
                .or_default()
                .insert(p.clone(), encoded_part("e", SimTime::from_ps(100)));
        }
        // Slot 200: complete but one blob corrupted (bit flip mid-blob).
        for p in &parts {
            let mut blob = encoded_part("e", SimTime::from_ps(200));
            if p == "p1" {
                damage_blob(&mut blob, false);
            }
            store.entry(200).or_default().insert(p.clone(), blob);
        }
        // Slot 300: incomplete (p1's snapshot never arrived).
        store
            .entry(300)
            .or_default()
            .insert("p0".into(), encoded_part("e", SimTime::from_ps(300)));

        let mut report = RecoveryReport::default();
        let picked = select_restore(&store, &parts, &mut report);
        let (at, blobs) = picked.expect("slot 100 is usable");
        assert_eq!(at, 100, "newest *valid and complete* slot wins");
        assert_eq!(blobs.len(), 2);
        assert_eq!(report.rejected_entries.len(), 1, "corrupt slot 200 recorded");
        assert!(report.rejected_entries[0].contains("200"));
        assert!(!report.is_trivial(), "rejections make the report non-trivial");
    }

    #[test]
    fn select_restore_none_when_everything_torn() {
        let parts = ["p0".to_string()];
        let mut store = RingStore::new();
        let mut blob = encoded_part("e", SimTime::from_ps(50));
        damage_blob(&mut blob, true); // torn write: truncated to half
        store.entry(50).or_default().insert("p0".into(), blob);
        let mut report = RecoveryReport::default();
        assert!(select_restore(&store, &parts, &mut report).is_none());
        assert_eq!(report.rejected_entries.len(), 1);
    }

    #[test]
    fn damage_blob_is_deterministic_and_detected() {
        use crate::checkpoint::CheckpointFile;
        let clean = encoded_part("x", SimTime::from_ps(7));
        let mut a = clean.clone();
        let mut b = clean.clone();
        damage_blob(&mut a, false);
        damage_blob(&mut b, false);
        assert_eq!(a, b, "same fault schedule must damage identically");
        assert_ne!(a, clean);
        assert!(CheckpointFile::decode(&a).is_err(), "checksum catches the flip");
        let mut t = clean.clone();
        damage_blob(&mut t, true);
        assert!(CheckpointFile::decode(&t).is_err(), "truncation is rejected");
    }

    #[test]
    fn frame_buf_reassembles_partial_and_batched_frames() {
        let mut wire = Vec::new();
        for (ty, payload) in [(MSG_HEARTBEAT, &[1u8, 0, 0, 0, 0, 0, 0, 0][..]), (MSG_DONE, &[])] {
            wire.extend_from_slice(&((payload.len() + 1) as u32).to_le_bytes());
            wire.push(ty);
            wire.extend_from_slice(payload);
        }
        let mut fb = FrameBuf::default();
        // Feed one byte at a time: pop must only yield complete frames.
        let mut got = Vec::new();
        for b in &wire {
            fb.push(&[*b]);
            while let Ok(Some((ty, payload))) = fb.pop() {
                got.push((ty, payload));
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, MSG_HEARTBEAT);
        assert_eq!(got[0].1, vec![1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(got[1], (MSG_DONE, Vec::new()));
        // A zero-length frame is a protocol error, not a hang.
        fb.push(&[0, 0, 0, 0]);
        assert!(fb.pop().is_err());
    }

    #[test]
    fn recovery_report_display_mentions_everything() {
        let r = RecoveryReport {
            faults_injected: vec!["kill_worker \"p1\" at 3000000 ps".into()],
            restarts: 1,
            ring_entries_used: vec![Some(SimTime::from_ps(2000000))],
            rejected_entries: vec!["slot 3000000 ps, partition \"p0\": bad checksum".into()],
            time_lost: SimTime::from_ps(1234),
        };
        let s = r.to_string();
        assert!(s.contains("kill_worker"));
        assert!(s.contains("restarts: 1"));
        assert!(s.contains("2000000"));
        assert!(s.contains("bad checksum") || s.contains("rejected"));
        assert!(s.contains("1234"));
    }
}
