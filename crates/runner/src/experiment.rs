//! Experiment assembly and execution.

use std::any::Any;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simbricks_base::{
    BarrierMember, ChannelEnd, ChannelParams, EpochController, EventLog, Impairment, Kernel,
    KernelStats, Model, PortId, SimTime, StepOutcome, SyncLookahead,
};

use crate::checkpoint::CheckpointFile;

/// A model that can also be downcast back to its concrete type after the run
/// (to read application reports, switch statistics, ...).
pub trait AnyModel: Model + Any {
    fn as_model(&mut self) -> &mut dyn Model;
    fn as_model_ref(&self) -> &dyn Model;
    fn as_any(&self) -> &dyn Any;
}

impl<T: Model + Any> AnyModel for T {
    fn as_model(&mut self) -> &mut dyn Model {
        self
    }
    fn as_model_ref(&self) -> &dyn Model {
        self
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct Component {
    name: String,
    kernel: Kernel,
    model: Box<dyn AnyModel>,
}

/// How to execute the components of an experiment.
///
/// All three executors produce identical simulation results (bit-identical
/// event logs); they differ only in how wall-clock resources are used. See
/// `docs/ARCHITECTURE.md` for guidance on choosing one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Execution {
    /// One OS thread per component simulator (the paper's architecture).
    /// Best when components ≤ cores; oversubscribes the machine otherwise.
    Threads,
    /// Cooperative round-robin on the calling thread (practical on machines
    /// with few cores; produces identical simulation results).
    Sequential,
    /// Sharded work-stealing pool: all components scheduled over a fixed
    /// number of worker threads, with blocked kernels parked until new input
    /// arrives. The right choice when components ≫ cores. `workers == 0`
    /// means auto (the `SIMBRICKS_WORKERS` environment variable if set,
    /// otherwise the machine's available parallelism).
    Sharded {
        /// Worker thread count (0 = auto).
        workers: usize,
    },
}

impl Execution {
    /// Parse an executor selection string: `sequential`, `threads`,
    /// `sharded` (auto worker count), or `sharded:N`.
    pub fn parse(s: &str) -> Option<Execution> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "sequential" | "seq" => Some(Execution::Sequential),
            "threads" | "thread" => Some(Execution::Threads),
            "sharded" => Some(Execution::Sharded { workers: 0 }),
            _ => {
                let n = s.strip_prefix("sharded:")?.parse().ok()?;
                Some(Execution::Sharded { workers: n })
            }
        }
    }

    /// Inverse of [`Execution::parse`]: the canonical selection string for
    /// this executor (used to hand the choice to distributed worker
    /// processes via their environment).
    pub fn to_arg(self) -> String {
        match self {
            Execution::Sequential => "sequential".into(),
            Execution::Threads => "threads".into(),
            Execution::Sharded { workers: 0 } => "sharded".into(),
            Execution::Sharded { workers } => format!("sharded:{workers}"),
        }
    }

    /// Executor selected by the `SIMBRICKS_EXEC` environment variable
    /// (same syntax as [`Execution::parse`]), or `default` when unset or
    /// unparseable.
    pub fn from_env_or(default: Execution) -> Execution {
        std::env::var("SIMBRICKS_EXEC")
            .ok()
            .as_deref()
            .and_then(Execution::parse)
            .unwrap_or(default)
    }
}

/// Results of a completed experiment.
pub struct RunResult {
    pub name: String,
    /// Wall-clock simulation time.
    pub wall: Duration,
    /// Largest virtual time reached by any component.
    pub virtual_time: SimTime,
    pub component_names: Vec<String>,
    pub stats: Vec<KernelStats>,
    pub logs: Vec<EventLog>,
    /// Encoded checkpoint container captured mid-run, when the experiment
    /// was configured with [`Experiment::checkpoint_at`] (also written to
    /// the configured path, if any). Distributed workers ship this blob to
    /// the orchestrator over the control socket.
    pub checkpoint: Option<Vec<u8>>,
    /// Checkpoint-ring entries captured mid-run (quiesce time, encoded
    /// container), newest last, already pruned to the configured `keep_n`.
    /// Populated when the experiment was configured with
    /// [`Experiment::with_checkpoint_ring`]; distributed workers ship these
    /// to the orchestrator for merging.
    pub ring: Vec<(SimTime, Vec<u8>)>,
    models: Vec<Box<dyn AnyModel>>,
}

impl RunResult {
    /// Downcast component `idx`'s model to its concrete type.
    pub fn model<T: 'static>(&self, idx: usize) -> Option<&T> {
        self.models.get(idx).and_then(|m| m.as_any().downcast_ref())
    }

    /// Aggregate statistics over all components.
    pub fn total_stats(&self) -> KernelStats {
        KernelStats::merged(&self.stats)
    }

    pub fn wall_seconds(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// Merge the per-component event logs of this run into one named,
    /// time-ordered [`Trace`](simbricks_base::trace::Trace) for end-to-end latency breakdowns (§8.1).
    /// The experiment must have been built with [`Experiment::with_logging`];
    /// otherwise the trace is empty.
    pub fn trace(&self) -> simbricks_base::trace::Trace {
        simbricks_base::trace::Trace::from_logs(&self.component_names, &self.logs)
    }

    /// Merge the per-component event logs into one global, time-sorted log
    /// (ties broken by component order, so the result is comparable across
    /// executors and against the reassembled log of a distributed run).
    pub fn merged_log(&self) -> EventLog {
        let refs: Vec<&EventLog> = self.logs.iter().collect();
        EventLog::merge(&refs)
    }

    /// The event log of the component with the given name, if any.
    pub fn log_of(&self, name: &str) -> Option<&EventLog> {
        self.component_names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.logs[i])
    }

    /// The statistics of the component with the given name, if any.
    pub fn stats_of(&self, name: &str) -> Option<&KernelStats> {
        self.component_names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.stats[i])
    }
}

/// Sink receiving each encoded checkpoint-ring entry: (quiesce time, blob).
pub type RingSink = Box<dyn FnMut(SimTime, &[u8]) + Send>;

/// An experiment: a set of component simulators wired by channels.
pub struct Experiment {
    name: String,
    end: SimTime,
    synchronized: bool,
    link_latency: SimTime,
    pcie_latency: SimTime,
    sync_interval: SimTime,
    adaptive_sync: bool,
    hier_sync: bool,
    log_enabled: bool,
    external_inputs: bool,
    components: Vec<Component>,
    /// Checkpoint request: quiesce at the given virtual time mid-run, encode
    /// every component, optionally write the file, then continue.
    checkpoint: Option<(SimTime, Option<PathBuf>)>,
    /// Checkpoint-ring request: quiesce at every multiple of the period,
    /// keeping only the newest `keep_n` entries (0 = keep all).
    ring: Option<(SimTime, usize)>,
    /// Directory ring entries are written to as `ck-<time_ps>.ckpt` (when
    /// set; distributed workers leave it unset and ship blobs instead).
    ring_dir: Option<PathBuf>,
    /// Epoch length for fingerprint-only event logging, when enabled.
    fp_epoch: Option<SimTime>,
    /// Virtual time a restore fast-forwarded this experiment to (reporting).
    restored_at: Option<SimTime>,
    /// Coarse virtual-time progress (picoseconds), updated periodically by
    /// the sequential executor and the quiesce loop. Distributed workers
    /// read it from a heartbeat thread, so the orchestrator can trigger
    /// virtual-time fault schedules and detect stalled partitions.
    progress: std::sync::Arc<std::sync::atomic::AtomicU64>,
    /// Called with each checkpoint-ring entry as soon as it is encoded
    /// (distributed workers ship entries to the orchestrator mid-run, so a
    /// later crash can restore from every slot captured before it).
    ring_sink: Option<RingSink>,
    barrier: Option<std::sync::Arc<EpochController>>,
    /// Shared stop flag. In unsynchronized (emulation) runs there is no common
    /// virtual end time: the run ends when the first component finishes (the
    /// workload driver calling `quit`), which raises this flag for everyone
    /// else — mirroring how emulation measurements end when the benchmark
    /// client completes.
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

fn self_stats(c: &Component) -> simbricks_base::KernelStats {
    c.kernel.stats()
}

impl Experiment {
    /// Create an experiment simulating `end` of virtual time.
    pub fn new(name: impl Into<String>, end: SimTime) -> Self {
        Experiment {
            name: name.into(),
            end,
            synchronized: true,
            link_latency: SimTime::from_ns(500),
            pcie_latency: SimTime::from_ns(500),
            sync_interval: SimTime::from_ns(500),
            adaptive_sync: true,
            hier_sync: false,
            log_enabled: false,
            external_inputs: false,
            components: Vec::new(),
            checkpoint: None,
            ring: None,
            ring_dir: None,
            fp_epoch: None,
            restored_at: None,
            progress: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            ring_sink: None,
            barrier: None,
            stop: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    pub fn end_time(&self) -> SimTime {
        self.end
    }

    /// Disable synchronization (emulation mode, QEMU-KVM style runs).
    pub fn unsynchronized(mut self) -> Self {
        self.synchronized = false;
        self
    }

    /// Enable timestamped event logs on every component (accuracy /
    /// determinism experiments).
    pub fn with_logging(mut self) -> Self {
        self.log_enabled = true;
        self
    }

    /// Enable fingerprint-only event logging on every component: entries
    /// fold into per-epoch FNV accumulators instead of being materialized,
    /// so memory stays O(end / epoch) however long the run. The replay
    /// bisector compares runs through these epoch fingerprints.
    pub fn with_fingerprint_logging(mut self, epoch: SimTime) -> Self {
        assert!(epoch > SimTime::ZERO, "fingerprint epoch must be non-zero");
        self.log_enabled = true;
        self.fp_epoch = Some(epoch);
        self
    }

    /// Set the Ethernet link latency Δ (default 500 ns).
    pub fn with_link_latency(mut self, l: SimTime) -> Self {
        self.link_latency = l;
        if self.sync_interval > l {
            self.sync_interval = l;
        }
        self
    }

    /// Set the PCIe latency Δ (default 500 ns).
    pub fn with_pcie_latency(mut self, l: SimTime) -> Self {
        self.pcie_latency = l;
        if self.sync_interval > l {
            self.sync_interval = l;
        }
        self
    }

    /// Set the synchronization interval δ (default = link latency).
    pub fn with_sync_interval(mut self, d: SimTime) -> Self {
        self.sync_interval = d;
        self
    }

    /// Enable or disable adaptive sync batching on all channels (default on):
    /// idle channels widen their effective sync interval towards the link
    /// latency and kernels batch SYNC emission across their ports. Purely a
    /// wall-clock optimization — simulation results are unaffected.
    pub fn with_adaptive_sync(mut self, adaptive: bool) -> Self {
        self.adaptive_sync = adaptive;
        self
    }

    /// Enable hierarchical sync domains (sync-protocol scale-out). Each
    /// kernel groups its synchronized ports into domains (by latency class
    /// unless assigned explicitly), maintains one aggregate horizon per
    /// domain, and emits SYNCs per domain epoch with promises widened
    /// through the earliest local cause of a future send. At run time the
    /// channel graph is reconstructed from connection ids and a static
    /// multi-hop lookahead floor is computed per port (Bellman-Ford-style
    /// relaxation over declared [`Model::sync_lookahead`] forwarding
    /// delays), which raises each port's adaptive sync-interval cap beyond
    /// the per-link Δ. Simulation results are bit-identical to the flat
    /// protocol; only SYNC volume and cadence change. Ignored for
    /// unsynchronized and global-barrier experiments.
    pub fn with_hier_sync(mut self) -> Self {
        self.hier_sync = true;
        self
    }

    /// Whether hierarchical sync domains are enabled.
    pub fn hier_sync_enabled(&self) -> bool {
        self.hier_sync
    }

    /// Replace the pairwise synchronization with epoch/global-barrier
    /// synchronization (the dist-gem5 baseline of Fig. 6). Must be called
    /// before components are added; the epoch equals the smallest latency.
    pub fn with_global_barrier(mut self) -> Self {
        let epoch = self.link_latency.min(self.pcie_latency);
        // The participant count is fixed up in run() via re-registration;
        // we create the controller lazily when the count is known.
        self.barrier = Some(EpochController::new(epoch, 1));
        self
    }

    pub fn is_synchronized(&self) -> bool {
        self.synchronized
    }

    /// Declare that some channels of this experiment are fed by another OS
    /// process (distributed partitions bridged by proxies, §5.4). Executors
    /// then treat "every local component blocked" as a normal transient state
    /// — a remote promise can arrive at any wall-clock moment — instead of a
    /// deadlock. Set automatically for distributed worker partitions.
    pub fn set_external_inputs(&mut self) {
        self.external_inputs = true;
    }

    /// Channel parameters for an Ethernet link in this experiment.
    pub fn eth_params(&self) -> ChannelParams {
        ChannelParams {
            latency: self.link_latency,
            sync_interval: self.sync_interval.min(self.link_latency),
            sync: self.synchronized && self.barrier.is_none(),
            queue_len: 64,
            adaptive_sync: self.adaptive_sync,
            impairment: Impairment::none(),
        }
    }

    /// Channel parameters for a PCIe link in this experiment.
    pub fn pcie_params(&self) -> ChannelParams {
        ChannelParams {
            latency: self.pcie_latency,
            sync_interval: self.sync_interval.min(self.pcie_latency),
            sync: self.synchronized && self.barrier.is_none(),
            queue_len: 64,
            adaptive_sync: self.adaptive_sync,
            impairment: Impairment::none(),
        }
    }

    /// Add a component simulator with its already-wired channel endpoints
    /// (port indices follow the order of `ports`). Returns the component id.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        model: Box<dyn AnyModel>,
        ports: Vec<ChannelEnd>,
    ) -> usize {
        let name = name.into();
        // Synchronized runs share a common virtual end time. Unsynchronized
        // (emulation) runs have no meaningful global clock; components run
        // open-ended and the experiment ends via the shared stop flag once
        // the workload completes.
        let end = if self.synchronized { self.end } else { SimTime::MAX };
        let mut kernel = Kernel::new(name.clone(), end);
        kernel.set_stop_flag(self.stop.clone());
        if !self.synchronized {
            // Emulation mode: free-running components stay loosely aligned by
            // anchoring their virtual clocks to the wall clock (1:1).
            kernel.set_wall_clock(1.0);
        }
        if let Some(epoch) = self.fp_epoch {
            kernel.enable_fingerprint_log(epoch);
        } else if self.log_enabled {
            kernel.enable_log();
        }
        for p in ports {
            kernel.add_port(p);
        }
        self.components.push(Component {
            name,
            kernel,
            model,
        });
        self.components.len() - 1
    }

    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore
    // ------------------------------------------------------------------

    /// Request a deterministic checkpoint: the run quiesces every component
    /// at virtual time `at` (all events strictly below processed, nothing at
    /// or beyond touched, in-flight channel messages drained into port
    /// buffers), encodes the complete state, writes it to `path` (when
    /// given; distributed workers pass `None` and ship the blob over the
    /// control socket instead), and then **continues** to the configured end
    /// time. The continuation — and any later run restored from the file —
    /// is bit-identical to an uninterrupted run.
    ///
    /// Requires a synchronized experiment without the global barrier, run
    /// under the sequential or sharded executor (the quiesce phase itself is
    /// cooperative); `run` panics with a descriptive message otherwise.
    pub fn checkpoint_at(&mut self, at: SimTime, path: Option<PathBuf>) {
        assert!(
            at < self.end,
            "checkpoint time {at} must lie before the experiment end {}",
            self.end
        );
        self.checkpoint = Some((at, path));
    }

    /// Request a checkpoint ring: quiesce and snapshot at every multiple of
    /// `period` before the end time, keeping only the newest `keep_n`
    /// entries (0 = keep all). Each entry is a complete SBCK container; the
    /// continuation after every quiesce — and any run restored from any
    /// entry — is bit-identical to an uninterrupted run. Same executor
    /// constraints as [`Experiment::checkpoint_at`]. Entries land in
    /// [`RunResult::ring`], and on disk when a directory is set via
    /// [`Experiment::set_ring_dir`].
    pub fn with_checkpoint_ring(mut self, period: SimTime, keep_n: usize) -> Self {
        self.set_checkpoint_ring(period, keep_n);
        self
    }

    /// Non-consuming form of [`Experiment::with_checkpoint_ring`] (used when
    /// the experiment was built by a lowering that already returned it).
    pub fn set_checkpoint_ring(&mut self, period: SimTime, keep_n: usize) {
        assert!(period > SimTime::ZERO, "checkpoint ring period must be non-zero");
        self.ring = Some((period, keep_n));
    }

    /// Directory ring entries are written to as they are captured (pruned on
    /// disk to the configured `keep_n` after each write).
    pub fn set_ring_dir(&mut self, dir: PathBuf) {
        self.ring_dir = Some(dir);
    }

    /// Handle on the experiment's coarse virtual-time progress counter
    /// (picoseconds). Updated periodically by the sequential executor and
    /// the quiesce loop; other threads (a distributed worker's heartbeat
    /// pump) may read it at any wall-clock moment. Monotone per run; a
    /// restore resets it to the restore point.
    pub fn progress_handle(&self) -> std::sync::Arc<std::sync::atomic::AtomicU64> {
        self.progress.clone()
    }

    /// Install a sink invoked with every checkpoint-ring entry the moment it
    /// is encoded — before the run continues past the slot. Distributed
    /// workers use this to stream their partition's entries to the
    /// orchestrator, which is what makes mid-run recovery possible: after a
    /// worker crash the orchestrator already holds every slot captured
    /// before the failure.
    pub fn set_ring_sink(&mut self, sink: RingSink) {
        self.ring_sink = Some(sink);
    }

    // ------------------------------------------------------------------
    // Replay inspection (used by `crates/replay` after restore + freeze)
    // ------------------------------------------------------------------

    /// Component names in build order.
    pub fn component_names(&self) -> Vec<String> {
        self.components.iter().map(|c| c.name.clone()).collect()
    }

    /// The kernel of component `idx` (clock, stats, event log, ports).
    pub fn kernel(&self, idx: usize) -> &Kernel {
        &self.components[idx].kernel
    }

    /// Mutable kernel access (the replay layer switches restored event logs
    /// between recording modes before stepping on).
    pub fn kernel_mut(&mut self, idx: usize) -> &mut Kernel {
        &mut self.components[idx].kernel
    }

    /// Snapshot every component's *model* state (without the kernel record).
    /// The replay layer compares these across a seek and a fresh paused run:
    /// model state is simulation-visible and must match bit for bit, while
    /// kernel sync counters legitimately differ with the pause schedule.
    pub fn model_states(&self) -> SnapResult<Vec<Vec<u8>>> {
        let mut out = Vec::with_capacity(self.components.len());
        for c in &self.components {
            let mut w = SnapWriter::new();
            c.model.as_model_ref().snapshot(&mut w)?;
            out.push(w.into_vec());
        }
        Ok(out)
    }

    /// Convert every component's (restored) event log to fingerprint-only
    /// mode in place — the prefix entries fold into the per-epoch
    /// accumulators and are dropped, so stepping on records fingerprints
    /// only.
    pub fn convert_logs_fingerprint_only(&mut self, epoch: SimTime) {
        for c in &mut self.components {
            c.kernel.event_log_mut().to_fingerprint_only(epoch);
        }
        self.fp_epoch = Some(epoch);
    }

    /// Replace every component's event log with a fresh materialized one,
    /// discarding any restored prefix. The replay pinpoint pass uses this to
    /// materialize only the window after a restore point.
    pub fn reset_logs_materialized(&mut self) {
        for c in &mut self.components {
            *c.kernel.event_log_mut() = EventLog::enabled();
        }
        self.fp_epoch = None;
        self.log_enabled = true;
    }

    /// Quiesce every component at exactly virtual time `at` (which must lie
    /// at or after the restore point and before the end) and leave the
    /// experiment frozen there for inspection via [`Experiment::kernel`] /
    /// [`Experiment::model_states`]. Returns the encoded SBCK container of
    /// the frozen state. Same executor constraints as a checkpoint — the
    /// quiesce is cooperative and single-threaded.
    pub fn freeze_at(&mut self, at: SimTime) -> SnapResult<Vec<u8>> {
        assert!(
            at < self.end,
            "freeze time {at} must lie before the experiment end {}",
            self.end
        );
        if let Some(r) = self.restored_at {
            assert!(at >= r, "freeze time {at} lies before the restore point {r}");
        }
        self.quiesce_and_encode(at)
    }

    /// Restore this experiment from a checkpoint file previously written by
    /// [`Experiment::checkpoint_at`]. Must be called after every component
    /// has been added, with the experiment rebuilt by the same build code
    /// (same names, topology, and parameters — mismatches are rejected).
    /// Returns the checkpoint's virtual time; a following [`Experiment::run`]
    /// resumes from there, skipping everything already simulated.
    pub fn restore(&mut self, path: &std::path::Path) -> SnapResult<SimTime> {
        let file = CheckpointFile::read_from(path)?;
        self.apply_checkpoint(&file)
    }

    /// Like [`Experiment::restore`], from an in-memory encoded container
    /// (used by distributed workers receiving their partition's snapshot
    /// over the control socket).
    pub fn restore_from_blob(&mut self, blob: &[u8]) -> SnapResult<SimTime> {
        let file = CheckpointFile::decode(blob)?;
        self.apply_checkpoint(&file)
    }

    /// Virtual time this experiment was fast-forwarded to by a restore, if
    /// any (reporting; the run itself resumes there automatically).
    pub fn restored_at(&self) -> Option<SimTime> {
        self.restored_at
    }

    fn apply_checkpoint(&mut self, file: &CheckpointFile) -> SnapResult<SimTime> {
        if file.name != self.name {
            return Err(SnapError::Corrupt(format!(
                "experiment name mismatch: checkpoint is of {:?}, this experiment is {:?}",
                file.name, self.name
            )));
        }
        if file.components.len() != self.components.len() {
            return Err(SnapError::Corrupt(format!(
                "component count mismatch: checkpoint has {}, experiment built {}",
                file.components.len(),
                self.components.len()
            )));
        }
        for (c, (cname, blob)) in self.components.iter_mut().zip(&file.components) {
            if *cname != c.name {
                return Err(SnapError::Corrupt(format!(
                    "component order mismatch: checkpoint has {cname:?} where experiment built {:?}",
                    c.name
                )));
            }
            let mut r = SnapReader::new(blob);
            c.kernel.restore(&mut r)?;
            c.model.as_model().restore(&mut r).map_err(|e| match e {
                SnapError::Unsupported(_) => SnapError::Unsupported(format!(
                    "component {cname:?} cannot be restored: its model does not implement Model::restore"
                )),
                e => e,
            })?;
            if !r.is_empty() {
                return Err(SnapError::Corrupt(format!(
                    "component {cname:?}: {} trailing bytes after model state",
                    r.remaining()
                )));
            }
        }
        self.restored_at = Some(file.at);
        self.progress
            .store(file.at.as_ps(), std::sync::atomic::Ordering::Relaxed);
        Ok(file.at)
    }

    /// Quiesce every component at `at` and encode the checkpoint container.
    /// Cooperative and single-threaded: determinism of the saved state does
    /// not depend on the executor the surrounding run uses.
    fn quiesce_and_encode(&mut self, at: SimTime) -> SnapResult<Vec<u8>> {
        assert!(
            self.synchronized && self.barrier.is_none(),
            "checkpointing requires pairwise-synchronized experiments \
             (unsynchronized emulation and global-barrier modes have no \
             quiescable virtual time)"
        );
        for c in &mut self.components {
            c.kernel.set_pause_at(at);
        }
        let deadline = Instant::now() + Duration::from_secs(120);
        let mut idle_rounds: u64 = 0;
        let mut rounds: u64 = 0;
        loop {
            if rounds & 0x3f == 0 {
                let frontier = self
                    .components
                    .iter()
                    .map(|c| c.kernel.now().as_ps())
                    .min()
                    .unwrap_or(0);
                self.progress
                    .store(frontier, std::sync::atomic::Ordering::Relaxed);
            }
            rounds = rounds.wrapping_add(1);
            let mut any_progress = false;
            for c in &mut self.components {
                match c.kernel.step(c.model.as_model(), 512) {
                    StepOutcome::Progressed => any_progress = true,
                    StepOutcome::Finished => any_progress = true,
                    StepOutcome::Paused | StepOutcome::Blocked(_) => {}
                }
            }
            // Settle in-flight messages into the ports' pending buffers.
            for c in &mut self.components {
                c.kernel.checkpoint_poll();
            }
            if self
                .components
                .iter()
                .all(|c| c.kernel.quiesced_at(at))
            {
                break;
            }
            if any_progress {
                idle_rounds = 0;
                continue;
            }
            idle_rounds += 1;
            if self.external_inputs {
                // Remote partitions quiesce on their own wall-clock schedule;
                // their pause promises arrive through the proxy threads.
                std::thread::yield_now();
                if Instant::now() > deadline {
                    return Err(SnapError::Io(
                        "timed out waiting for remote partitions to quiesce".into(),
                    ));
                }
            } else if idle_rounds > 10_000 {
                let stuck: Vec<String> = self
                    .components
                    .iter()
                    .filter(|c| !c.kernel.quiesced_at(at))
                    .map(|c| {
                        let ports: Vec<String> = (0..c.kernel.num_ports())
                            .map(|i| {
                                format!("p{i}[{}]", c.kernel.port_sync_describe(PortId(i)))
                            })
                            .collect();
                        format!("{}@{} {}", c.name, c.kernel.now(), ports.join(" "))
                    })
                    .collect();
                return Err(SnapError::Io(format!(
                    "experiment failed to quiesce at {at}: {}",
                    stuck.join(", ")
                )));
            }
        }

        let mut components = Vec::with_capacity(self.components.len());
        for c in &self.components {
            let mut w = SnapWriter::new();
            c.kernel.snapshot(&mut w)?;
            c.model.as_model_ref().snapshot(&mut w).map_err(|e| match e {
                SnapError::Unsupported(_) => SnapError::Unsupported(format!(
                    "component {:?} cannot be checkpointed: its model does not implement Model::snapshot",
                    c.name
                )),
                e => e,
            })?;
            components.push((c.name.clone(), w.into_vec()));
        }
        for c in &mut self.components {
            c.kernel.clear_pause();
        }
        let file = CheckpointFile {
            name: self.name.clone(),
            at,
            components,
        };
        Ok(file.encode())
    }

    /// Hierarchical sync setup: reconstruct the channel graph from the
    /// ports' connection ids, compute each port's static multi-hop lookahead
    /// floor, and switch every kernel to hierarchical (domain-batched,
    /// widened-promise) SYNC emission.
    ///
    /// The floor `F(c.p)` is a lower bound on how far ahead of its current
    /// clock component `c` can always promise on port `p`:
    /// - a model with no declared lookahead may send at any moment, so
    ///   `F = Δ_p`;
    /// - a port declaring [`SyncLookahead::ExcludeSelf`]`(l)` only carries
    ///   sends made in response to a timer or to input on another port, so
    ///   `F = Δ_p + l + min over other ports q of G(q)`, where `G(q)` is the
    ///   incoming guarantee of `q`'s link — the peer port's own floor, or
    ///   `Δ_q` when the peer is outside this process (distributed boundary);
    /// - a port declaring [`SyncLookahead::Reaction`]`(d)` reacts to input on
    ///   any port (itself included) no sooner than `d` later, so
    ///   `F = Δ_p + d + min over all ports q of G(q)`.
    ///
    /// The mutually recursive floors are solved by upward Bellman-Ford-style
    /// relaxation from the safe start `F = Δ`; each port's floor then raises
    /// its adaptive sync-interval cap, so idle cadence stretches to the
    /// multi-hop path latency instead of stopping at the per-link Δ. The
    /// floors only pace SYNC emission — correctness and liveness never
    /// depend on them (promises are widened dynamically, and blocked kernels
    /// forward horizon gains unconditionally).
    fn setup_hier_sync(&mut self) {
        use std::collections::HashMap;
        // (component, port) pairs per connection id; a connection with both
        // ends on local kernels is an internal link, one with a single end
        // crosses a partition boundary (its far side is a proxy).
        let mut by_conn: HashMap<u64, Vec<(usize, usize)>> = HashMap::new();
        for (ci, c) in self.components.iter().enumerate() {
            for p in 0..c.kernel.num_ports() {
                let pid = PortId(p);
                if c.kernel.port_sync_enabled(pid) {
                    by_conn
                        .entry(c.kernel.port_conn_id(pid))
                        .or_default()
                        .push((ci, p));
                }
            }
        }
        let mut peer: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        for ends in by_conn.values() {
            if let [a, b] = ends[..] {
                peer.insert(a, b);
                peer.insert(b, a);
            }
        }
        let look: Vec<Vec<Option<SyncLookahead>>> = self
            .components
            .iter()
            .map(|c| {
                let m = c.model.as_model_ref();
                (0..c.kernel.num_ports())
                    .map(|p| m.sync_lookahead_on(PortId(p)))
                    .collect()
            })
            .collect();
        let delta = |ci: usize, p: usize| self.components[ci].kernel.port_latency(PortId(p));
        let mut floors: HashMap<(usize, usize), SimTime> = peer
            .keys()
            .chain(by_conn.values().flatten().filter(|e| !peer.contains_key(*e)))
            .map(|&(ci, p)| ((ci, p), delta(ci, p)))
            .collect();
        // Upward relaxation; monotone and bounded by the longest simple
        // path through declaring forwarders, so #components rounds suffice —
        // a source-free forwarder cycle (which would diverge) is cut off by
        // the round cap, leaving valid lower bounds.
        for _ in 0..self.components.len() + 2 {
            let mut changed = false;
            for (ci, c) in self.components.iter().enumerate() {
                if look[ci].iter().all(|l| l.is_none()) {
                    continue;
                }
                let nports = c.kernel.num_ports();
                // Incoming guarantee per port, min1/min2 for exclude-one.
                let (mut min1, mut min2, mut arg1) = (SimTime::MAX, SimTime::MAX, usize::MAX);
                for q in 0..nports {
                    if !c.kernel.port_sync_enabled(PortId(q)) {
                        continue;
                    }
                    let g = match peer.get(&(ci, q)) {
                        Some(far) => floors[far],
                        None => delta(ci, q),
                    };
                    if g < min1 {
                        min2 = min1;
                        min1 = g;
                        arg1 = q;
                    } else if g < min2 {
                        min2 = g;
                    }
                }
                for (p, &slot) in look[ci].iter().enumerate() {
                    let Some(la) = slot else { continue };
                    if !c.kernel.port_sync_enabled(PortId(p)) {
                        continue;
                    }
                    let (l, m) = match la {
                        SyncLookahead::ExcludeSelf(l) => {
                            (l, if arg1 == p { min2 } else { min1 })
                        }
                        SyncLookahead::Reaction(d) => (d, min1),
                    };
                    if m.is_max() {
                        continue;
                    }
                    let f = delta(ci, p).saturating_add(l).saturating_add(m);
                    let slot = floors.get_mut(&(ci, p)).expect("floor seeded");
                    if f > *slot {
                        *slot = f;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (ci, c) in self.components.iter_mut().enumerate() {
            c.kernel.enable_hier_sync();
            for p in 0..c.kernel.num_ports() {
                if let Some(f) = floors.get(&(ci, p)) {
                    c.kernel.set_port_sync_cap(PortId(p), *f);
                }
            }
        }
    }

    /// Execute the experiment and collect results.
    pub fn run(mut self, mode: Execution) -> RunResult {
        // Global-barrier mode: now that the component count is known, create
        // the controller with the right participant count and register every
        // kernel.
        if self.barrier.is_some() {
            let epoch = self.link_latency.min(self.pcie_latency);
            let controller = EpochController::new(epoch, self.components.len() as u64);
            for c in &mut self.components {
                c.kernel.set_barrier(BarrierMember::new(controller.clone()));
            }
            self.barrier = Some(controller);
        }
        if self.hier_sync && self.synchronized && self.barrier.is_none() {
            self.setup_hier_sync();
        }

        let start = Instant::now();
        // Phase 1 (only with a checkpoint request): run cooperatively up to
        // the checkpoint time, quiesce, encode, optionally write the file.
        let checkpoint = match self.checkpoint.take() {
            Some((at, path)) => {
                assert!(
                    mode != Execution::Threads,
                    "checkpointing is supported under the sequential and sharded \
                     executors (thread-per-component runs cannot be quiesced \
                     cooperatively); restoring works under every executor"
                );
                let blob = match self.quiesce_and_encode(at) {
                    Ok(b) => b,
                    Err(e) => panic!("checkpoint of experiment '{}' failed: {e}", self.name),
                };
                if let Some(path) = path {
                    if let Err(e) = crate::checkpoint::write_blob(&path, &blob) {
                        panic!("writing checkpoint {}: {e}", path.display());
                    }
                }
                Some(blob)
            }
            None => None,
        };
        // Phase 1b (only with a checkpoint ring): quiesce at every multiple
        // of the period, encode, optionally write + prune on disk, keep the
        // newest `keep_n` blobs in memory. Each quiesce is cooperative and
        // the continuation after it is bit-identical to not pausing at all,
        // so the tail of this very run doubles as the uninterrupted
        // baseline.
        let mut ring_blobs: Vec<(SimTime, Vec<u8>)> = Vec::new();
        if let Some((period, keep)) = self.ring {
            assert!(
                mode != Execution::Threads,
                "checkpoint rings are supported under the sequential and sharded \
                 executors (thread-per-component runs cannot be quiesced \
                 cooperatively); restoring works under every executor"
            );
            assert!(
                checkpoint.is_none(),
                "checkpoint_at and with_checkpoint_ring cannot be combined"
            );
            if let Some(dir) = &self.ring_dir {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    panic!("creating ring directory {}: {e}", dir.display());
                }
            }
            // Resume past slots already covered before a restore point.
            let start = self.restored_at.unwrap_or(SimTime::ZERO);
            let mut slot = start.as_ps() / period.as_ps() + 1;
            loop {
                let at = SimTime::from_ps(slot.saturating_mul(period.as_ps()));
                if at >= self.end {
                    break;
                }
                let blob = match self.quiesce_and_encode(at) {
                    Ok(b) => b,
                    Err(e) => panic!("ring checkpoint of '{}' at {at} failed: {e}", self.name),
                };
                if let Some(dir) = &self.ring_dir {
                    let path = crate::checkpoint::ring_entry_path(dir, at);
                    if let Err(e) = crate::checkpoint::write_blob(&path, &blob) {
                        panic!("writing ring entry {}: {e}", path.display());
                    }
                    if let Err(e) = crate::checkpoint::prune_ring(dir, keep) {
                        panic!("pruning ring {}: {e}", dir.display());
                    }
                }
                self.progress
                    .store(at.as_ps(), std::sync::atomic::Ordering::Relaxed);
                if let Some(sink) = &mut self.ring_sink {
                    sink(at, &blob);
                }
                ring_blobs.push((at, blob));
                if keep > 0 && ring_blobs.len() > keep {
                    ring_blobs.remove(0);
                }
                slot += 1;
            }
        }
        // Phase 2: run (or continue) under the requested executor.
        match mode {
            Execution::Sequential => self.run_sequential(),
            Execution::Threads => self.run_threads(),
            Execution::Sharded { workers } => self.run_sharded(workers),
        }
        let wall = start.elapsed();

        let mut virtual_time = SimTime::ZERO;
        let mut names = Vec::new();
        let mut stats = Vec::new();
        let mut logs = Vec::new();
        let mut models = Vec::new();
        for mut c in self.components {
            let s = c.kernel.stats();
            virtual_time = virtual_time.max(s.final_time);
            names.push(c.name);
            stats.push(s);
            logs.push(c.kernel.take_event_log());
            models.push(c.model);
        }
        RunResult {
            name: self.name,
            wall,
            virtual_time,
            component_names: names,
            stats,
            logs,
            checkpoint,
            ring: ring_blobs,
            models,
        }
    }

    fn run_sequential(&mut self) {
        let n = self.components.len();
        let mut finished = vec![false; n];
        let mut idle_rounds: u32 = 0;
        let mut rounds: u32 = 0;
        loop {
            // Publish coarse virtual-time progress every few rounds: the
            // minimum unfinished clock is the partition's committed frontier
            // (everything below it is final), which is what heartbeats
            // report and fault schedules trigger on.
            if rounds & 0x3f == 0 {
                let frontier = self
                    .components
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !finished[*i])
                    .map(|(_, c)| c.kernel.now().as_ps())
                    .min()
                    .unwrap_or(self.end.as_ps());
                self.progress
                    .store(frontier, std::sync::atomic::Ordering::Relaxed);
            }
            rounds = rounds.wrapping_add(1);
            let mut all_finished = true;
            let mut any_progress = false;
            for (i, c) in self.components.iter_mut().enumerate() {
                if finished[i] {
                    continue;
                }
                match c.kernel.step(c.model.as_model(), 512) {
                    StepOutcome::Finished => {
                        finished[i] = true;
                        any_progress = true;
                        if !self.synchronized {
                            // Emulation mode: the workload is done, stop the rest.
                            self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                    StepOutcome::Progressed => {
                        all_finished = false;
                        any_progress = true;
                    }
                    StepOutcome::Blocked(_) => {
                        all_finished = false;
                    }
                    // Pauses are handled by the dedicated quiesce loop; a
                    // kernel still paused here is waiting for clear_pause.
                    StepOutcome::Paused => {
                        all_finished = false;
                    }
                }
            }
            if all_finished && finished.iter().all(|f| *f) {
                break;
            }
            if finished.iter().all(|f| *f) {
                break;
            }
            if any_progress {
                idle_rounds = 0;
            }
            if !any_progress {
                if !self.synchronized {
                    // Emulation mode: components are waiting for the wall
                    // clock to allow their next event; just wait with them.
                    std::thread::sleep(Duration::from_micros(100));
                    continue;
                }
                if self.external_inputs {
                    // Distributed partition: a remote worker's promise can
                    // unblock us at any moment. Spin-yield while the wait is
                    // short (hot ping-pong with a loopback peer), back off to
                    // a brief sleep once it clearly is not, so an idle
                    // partition does not burn a core its peers need.
                    idle_rounds = idle_rounds.saturating_add(1);
                    if idle_rounds < 64 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(20));
                    }
                    continue;
                }
                // All remaining components blocked: genuine deadlock.
                let states: Vec<String> = self
                    .components
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !finished[*i])
                    .map(|(i, c)| format!("{}@{} {:?}", c.name, c.kernel.now(), self_stats(&self.components[i])))
                    .collect();
                panic!(
                    "deadlock in experiment '{}': blocked components: {}",
                    self.name,
                    states.join(", ")
                );
            }
        }
    }

    fn run_sharded(&mut self, workers: usize) {
        let opts = crate::executor::ShardedOptions {
            workers: if workers == 0 {
                crate::executor::default_workers()
            } else {
                workers
            },
            external_inputs: self.external_inputs,
            ..Default::default()
        };
        let stop = self.stop.clone();
        let synchronized = self.synchronized;
        let units = self
            .components
            .iter_mut()
            .map(|c| crate::executor::Unit {
                name: &c.name,
                kernel: &mut c.kernel,
                model: c.model.as_model(),
            })
            .collect();
        crate::executor::run_sharded(units, opts, &stop, synchronized);
    }

    fn run_threads(&mut self) {
        let stop = self.stop.clone();
        let synchronized = self.synchronized;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in &mut self.components {
                let kernel = &mut c.kernel;
                let model = &mut c.model;
                let stop = stop.clone();
                handles.push(scope.spawn(move || {
                    kernel.run(model.as_model());
                    if !synchronized {
                        // Emulation mode: the first component to finish ends
                        // the run for everyone.
                        stop.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }));
            }
            for h in handles {
                h.join().expect("component thread panicked");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, OwnedMsg, PortId};

    /// Simple test model: sends `count` messages and records what it gets.
    struct Echoer {
        send_count: u64,
        received: u64,
        sent: u64,
    }

    impl Model for Echoer {
        fn init(&mut self, k: &mut Kernel) {
            if self.send_count > 0 {
                k.schedule_at(SimTime::from_ns(100), 0);
            }
        }
        fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {
            self.received += 1;
        }
        fn on_timer(&mut self, k: &mut Kernel, _t: u64) {
            k.send(PortId(0), 1, b"ping");
            self.sent += 1;
            if self.sent < self.send_count {
                k.schedule_in(SimTime::from_us(1), 0);
            }
        }
    }

    fn build_pair(end: SimTime, sync: bool) -> Experiment {
        let mut e = Experiment::new("pair", end);
        if !sync {
            e = e.unsynchronized();
        }
        let (a, b) = channel_pair(e.eth_params());
        e.add(
            "left",
            Box::new(Echoer {
                send_count: 10,
                received: 0,
                sent: 0,
            }),
            vec![a],
        );
        e.add(
            "right",
            Box::new(Echoer {
                send_count: 5,
                received: 0,
                sent: 0,
            }),
            vec![b],
        );
        e
    }

    #[test]
    fn sequential_execution_completes_and_reports() {
        let r = build_pair(SimTime::from_ms(1), true).run(Execution::Sequential);
        assert_eq!(r.component_names, vec!["left", "right"]);
        assert_eq!(r.virtual_time, SimTime::from_ms(1));
        let left: &Echoer = r.model(0).unwrap();
        let right: &Echoer = r.model(1).unwrap();
        assert_eq!(left.sent, 10);
        assert_eq!(right.received, 10);
        assert_eq!(left.received, 5);
        assert!(r.total_stats().syncs_sent > 0);
        assert!(r.wall_seconds() >= 0.0);
    }

    #[test]
    fn threaded_execution_matches_sequential_results() {
        let rs = build_pair(SimTime::from_ms(1), true).run(Execution::Sequential);
        let rt = build_pair(SimTime::from_ms(1), true).run(Execution::Threads);
        let ls: &Echoer = rs.model(0).unwrap();
        let lt: &Echoer = rt.model(0).unwrap();
        assert_eq!(ls.sent, lt.sent);
        assert_eq!(ls.received, lt.received);
        assert_eq!(
            rs.stats[1].msgs_delivered, rt.stats[1].msgs_delivered,
            "same deliveries regardless of executor"
        );
    }

    #[test]
    fn sharded_execution_matches_sequential_results() {
        let rs = build_pair(SimTime::from_ms(1), true).run(Execution::Sequential);
        for workers in [1usize, 2, 4] {
            let rw = build_pair(SimTime::from_ms(1), true).run(Execution::Sharded { workers });
            let ls: &Echoer = rs.model(0).unwrap();
            let lw: &Echoer = rw.model(0).unwrap();
            assert_eq!(ls.sent, lw.sent, "workers={workers}");
            assert_eq!(ls.received, lw.received, "workers={workers}");
            assert_eq!(
                rs.stats[1].msgs_delivered, rw.stats[1].msgs_delivered,
                "same deliveries regardless of executor (workers={workers})"
            );
            assert_eq!(rs.virtual_time, rw.virtual_time);
        }
    }

    #[test]
    fn sharded_execution_unsynchronized_completes() {
        // Emulation mode: the run ends when the workload driver quits, which
        // raises the stop flag for the free-running peer.
        struct Quitter {
            sent: u64,
        }
        impl Model for Quitter {
            fn init(&mut self, k: &mut Kernel) {
                k.schedule_at(SimTime::from_ns(100), 0);
            }
            fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {}
            fn on_timer(&mut self, k: &mut Kernel, _t: u64) {
                k.send(PortId(0), 1, b"x");
                self.sent += 1;
                if self.sent < 5 {
                    k.schedule_in(SimTime::from_us(1), 0);
                } else {
                    k.quit();
                }
            }
        }
        let mut e = Experiment::new("unsync-sharded", SimTime::from_ms(1)).unsynchronized();
        let (a, b) = channel_pair(e.eth_params());
        e.add("driver", Box::new(Quitter { sent: 0 }), vec![a]);
        e.add(
            "idle",
            Box::new(Echoer {
                send_count: 0,
                received: 0,
                sent: 0,
            }),
            vec![b],
        );
        let r = e.run(Execution::Sharded { workers: 2 });
        let driver: &Quitter = r.model(0).unwrap();
        assert_eq!(driver.sent, 5);
    }

    #[test]
    fn execution_parse_roundtrip() {
        assert_eq!(Execution::parse("sequential"), Some(Execution::Sequential));
        assert_eq!(Execution::parse("seq"), Some(Execution::Sequential));
        assert_eq!(Execution::parse("Threads"), Some(Execution::Threads));
        assert_eq!(
            Execution::parse("sharded"),
            Some(Execution::Sharded { workers: 0 })
        );
        assert_eq!(
            Execution::parse("sharded:8"),
            Some(Execution::Sharded { workers: 8 })
        );
        assert_eq!(Execution::parse("bogus"), None);
        assert_eq!(Execution::parse("sharded:x"), None);
        for e in [
            Execution::Sequential,
            Execution::Threads,
            Execution::Sharded { workers: 0 },
            Execution::Sharded { workers: 8 },
        ] {
            assert_eq!(Execution::parse(&e.to_arg()), Some(e), "to_arg roundtrip");
        }
    }

    #[test]
    fn global_barrier_mode_runs_to_completion() {
        let mut e = Experiment::new("barrier", SimTime::from_us(100)).with_global_barrier();
        let (a, b) = channel_pair(e.eth_params());
        assert!(!e.eth_params().sync, "barrier mode disables per-channel sync");
        e.add(
            "left",
            Box::new(Echoer {
                send_count: 3,
                received: 0,
                sent: 0,
            }),
            vec![a],
        );
        e.add(
            "right",
            Box::new(Echoer {
                send_count: 0,
                received: 0,
                sent: 0,
            }),
            vec![b],
        );
        let r = e.run(Execution::Sequential);
        let right: &Echoer = r.model(1).unwrap();
        assert_eq!(right.received, 3);
        assert!(r.total_stats().barrier_waits > 0, "barrier was actually used");
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let r = build_pair(SimTime::from_us(10), true).run(Execution::Sequential);
        assert!(r.model::<String>(0).is_none());
        assert!(r.model::<Echoer>(5).is_none());
    }
}
