//! Pluggable cross-partition channel transports.
//!
//! The paper's deployment model (§5.2, §5.4) connects co-located simulator
//! processes through optimized *shared-memory* message queues and reserves
//! socket/RDMA proxies for links that cross physical machines. This module
//! extracts that choice into a small trait: a [`Transport`] is one connected
//! side of a cross-partition link, bridging the local component's channel
//! stub to the peer partition. Two implementations exist:
//!
//! * [`TcpTransport`] — the §5.4 sockets proxy (serialize + stream over TCP),
//!   the cross-host / explicit fallback;
//! * [`crate::shm::ShmTransport`] — a file-backed mmap SPSC ring per link for
//!   partitions on the same host (no serialization, no syscalls on the data
//!   path).
//!
//! Both preserve the proxy layer's contract: the handshake metadata (link
//! name + [`simbricks_base::ChannelParams`]) is validated before any
//! simulation message flows, everything the local component sent is flushed
//! before the forwarder exits, and exits poison the shared
//! [`ShutdownSignal`] so sibling forwarders wind down (no half-dead pairs).
//!
//! [`TransportKind`] is the user-facing selector (`--transport tcp|shm|auto`,
//! environment `SIMBRICKS_TRANSPORT`); `auto` picks shared memory whenever
//! the platform supports it, which for this single-machine orchestrator is
//! every link.

use std::net::TcpStream;
use std::sync::Arc;
use std::thread::JoinHandle;

use simbricks_base::ChannelEnd;

use crate::proxy::{tcp_forward_loop, ProxyCounters, ShutdownSignal};

/// Environment variable selecting the default cross-partition transport
/// ([`TransportKind::parse`] syntax) for harnesses and distributed runs.
pub const ENV_TRANSPORT: &str = "SIMBRICKS_TRANSPORT";

/// Which transport carries cross-partition channels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Serialize messages and stream them over TCP (works across hosts).
    Tcp,
    /// Memory-mapped shared-memory SPSC rings (same host only).
    Shm,
    /// Pick [`TransportKind::Shm`] when the platform supports it, otherwise
    /// fall back to [`TransportKind::Tcp`].
    #[default]
    Auto,
}

impl TransportKind {
    /// Parse `tcp`, `shm`, or `auto` (case-insensitive).
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s.to_ascii_lowercase().as_str() {
            "tcp" => Some(TransportKind::Tcp),
            "shm" => Some(TransportKind::Shm),
            "auto" => Some(TransportKind::Auto),
            _ => None,
        }
    }

    /// Canonical argument string (`TransportKind::parse` round-trips it).
    pub fn to_arg(self) -> &'static str {
        match self {
            TransportKind::Tcp => "tcp",
            TransportKind::Shm => "shm",
            TransportKind::Auto => "auto",
        }
    }

    /// The kind selected by [`ENV_TRANSPORT`], or `default` when unset or
    /// unparseable.
    pub fn from_env_or(default: TransportKind) -> TransportKind {
        std::env::var(ENV_TRANSPORT)
            .ok()
            .as_deref()
            .and_then(TransportKind::parse)
            .unwrap_or(default)
    }

    /// Resolve `Auto` to a concrete transport for links between co-located
    /// partitions: shared memory where the platform supports it (unix),
    /// otherwise TCP.
    pub fn resolve_local(self) -> TransportKind {
        match self {
            TransportKind::Auto => {
                if cfg!(unix) {
                    TransportKind::Shm
                } else {
                    TransportKind::Tcp
                }
            }
            k => k,
        }
    }
}

/// One connected side of a cross-partition link. Implementations carry the
/// already-handshaken medium (a TCP stream, an attached shm region); the
/// forwarding contract is uniform:
///
/// * forward every local message (data and SYNC) to the peer, preserving
///   order, batching opportunistically, and counting into `counters`;
/// * inject every peer message into the local channel stub, retrying on
///   backpressure;
/// * exit once the local component endpoint is gone (after flushing
///   everything it sent), the peer side closed, or `shutdown` is signalled;
/// * never drop or reorder a message.
pub trait Transport: Send {
    /// Short transport name for diagnostics (`"tcp"`, `"shm"`).
    fn name(&self) -> &'static str;

    /// Run the forwarding loop until close/shutdown (see trait docs).
    fn forward(
        self: Box<Self>,
        local: ChannelEnd,
        counters: Arc<ProxyCounters>,
        shutdown: Arc<ShutdownSignal>,
    );
}

/// The §5.4 sockets proxy as a [`Transport`]: a connected, handshaken TCP
/// stream (registered with the shutdown signal by the caller).
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap a connected stream. The caller has already performed the SBPX
    /// handshake and registered the stream with the shutdown signal.
    pub fn new(stream: TcpStream) -> Self {
        TcpTransport { stream }
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn forward(
        self: Box<Self>,
        local: ChannelEnd,
        counters: Arc<ProxyCounters>,
        shutdown: Arc<ShutdownSignal>,
    ) {
        tcp_forward_loop(local, self.stream, &counters, &shutdown);
    }
}

/// Spawn a named thread running `transport`'s forwarding loop; when the loop
/// exits (for any reason) the shared shutdown signal is poisoned so sibling
/// forwarders wind down too.
pub(crate) fn spawn_transport_forwarder(
    name: String,
    transport: Box<dyn Transport>,
    local: ChannelEnd,
    counters: Arc<ProxyCounters>,
    shutdown: Arc<ShutdownSignal>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            transport.forward(local, counters, shutdown.clone());
            shutdown.signal();
        })
        .expect("spawn transport forwarder thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_roundtrip() {
        for k in [TransportKind::Tcp, TransportKind::Shm, TransportKind::Auto] {
            assert_eq!(TransportKind::parse(k.to_arg()), Some(k));
        }
        assert_eq!(TransportKind::parse("TCP"), Some(TransportKind::Tcp));
        assert_eq!(TransportKind::parse("bogus"), None);
    }

    #[test]
    fn auto_resolves_to_a_concrete_kind() {
        let r = TransportKind::Auto.resolve_local();
        assert!(matches!(r, TransportKind::Tcp | TransportKind::Shm));
        assert_eq!(TransportKind::Tcp.resolve_local(), TransportKind::Tcp);
        assert_eq!(TransportKind::Shm.resolve_local(), TransportKind::Shm);
    }
}
