//! File-backed shared-memory channel transport (§5.2, §A.2).
//!
//! The paper's core mechanism connects co-located simulator processes
//! through optimized shared-memory message queues with polling-based
//! synchronization; sockets are only for cross-host links. This module
//! provides that fast path for `crate::dist`: one memory-mapped file per
//! cross-partition link carrying two fixed-slot SPSC rings (one per
//! direction), with the same layout discipline as the in-process queue of
//! `simbricks_base::spsc` — a per-slot control byte whose top bit encodes
//! ownership (producer/consumer) and whose low seven bits carry the message
//! type, written with release ordering and read with acquire ordering, so
//! the only shared cache traffic carries useful data. Slots are padded to
//! two cache lines to avoid false sharing, and each side keeps its ring
//! index local (never shared), exactly like the paper's queues.
//!
//! ## Region layout
//!
//! ```text
//! offset 0    magic "SBSH", version, state, a_closed, b_closed
//! offset 8    link-name length (u16 LE) + name bytes (max 256)
//! offset 266  ChannelParams wire encoding (67 bytes incl. impairment)
//! offset 333  slots per ring (u32 LE), slot stride (u32 LE)
//! offset 4096 ring A→B: slots × stride
//! ...         ring B→A: slots × stride
//! ```
//!
//! ## Handshake
//!
//! The creating side (the link owner, mirroring the listening side of the
//! TCP proxy) writes the header — the same metadata the SBPX socket
//! handshake frame carries: link name plus serialized
//! [`ChannelParams`] — then publishes `state = READY` with release ordering.
//! The attaching side polls for the file, validates magic, version, link
//! name, and parameters against its own build-derived values, and flips
//! `state` to `ATTACHED`; on any mismatch it poisons the region
//! (`state = POISONED`) so the creator fails fast instead of simulating
//! against mis-wired queues. Per-side `closed` flags give the rings the same
//! flush-then-EOF semantics as a TCP shutdown.
//!
//! Cleanup: the creator unlinks the region file when its endpoint drops;
//! the `dist` orchestrator additionally removes the per-run region directory
//! when workers are reaped (normally or on abort), so crashed runs never
//! leak regions.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use simbricks_base::{BufPool, ChannelEnd, ChannelParams, OwnedMsg, PktBuf, SimTime, MAX_PAYLOAD};

use crate::proxy::{ProxyCounters, ShutdownSignal};
use crate::transport::Transport;

/// Magic bytes opening every shm region header.
const SHM_MAGIC: [u8; 4] = *b"SBSH";
/// Version of the region layout.
const SHM_VERSION: u8 = 1;
/// Size reserved for the region header (one page).
const HEADER_LEN: usize = 4096;
/// Upper bound on the link name stored in the header.
const MAX_NAME: usize = 256;

// Header field offsets.
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 4;
const OFF_STATE: usize = 5;
const OFF_A_CLOSED: usize = 6;
const OFF_B_CLOSED: usize = 7;
const OFF_NAME_LEN: usize = 8;
const OFF_NAME: usize = 10;
const OFF_PARAMS: usize = OFF_NAME + MAX_NAME; // 266
const OFF_SLOTS: usize = OFF_PARAMS + ChannelParams::WIRE_LEN; // 333
const OFF_STRIDE: usize = OFF_SLOTS + 4; // 337

// Region handshake states.
const STATE_READY: u8 = 1;
const STATE_ATTACHED: u8 = 2;
const STATE_POISONED: u8 = 3;

// Slot layout (mirrors `simbricks_base::slot`): control byte first, then the
// inline header, then the payload, padded to two cache lines.
const SLOT_OFF_CTRL: usize = 0;
const SLOT_OFF_TS: usize = 8;
const SLOT_OFF_LEN: usize = 16;
const SLOT_OFF_PAYLOAD: usize = 24;
const SLOT_ALIGN: usize = 128;
/// Control-byte bit marking the slot as owned by the consumer.
const OWNER_CONSUMER: u8 = 0x80;
const TYPE_MASK: u8 = 0x7f;

/// Bytes per slot, 128-byte aligned so neighbouring control bytes never
/// share a cache line pair.
const fn slot_stride() -> usize {
    (SLOT_OFF_PAYLOAD + MAX_PAYLOAD).div_ceil(SLOT_ALIGN) * SLOT_ALIGN
}

/// Total region size for `slots` slots per ring.
fn region_len(slots: usize) -> usize {
    region_len_for(slots, slot_stride())
}

/// Total region size for an arbitrary (header-supplied) geometry.
fn region_len_for(slots: usize, stride: usize) -> usize {
    HEADER_LEN + 2 * slots * stride
}

// ---------------------------------------------------------------------------
// mmap FFI (no external crates; the platform C library is already linked)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::io;
    use std::os::fd::AsRawFd;

    use std::os::raw::{c_int, c_void};

    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_SHARED: c_int = 1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// Map `len` bytes of `file` shared read-write.
    pub(super) fn map_shared(file: &std::fs::File, len: usize) -> io::Result<*mut u8> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr as *mut u8)
    }

    pub(super) fn unmap(ptr: *mut u8, len: usize) {
        unsafe {
            munmap(ptr as *mut c_void, len);
        }
    }
}

/// Whether this platform supports the shared-memory transport.
pub fn shm_supported() -> bool {
    cfg!(unix)
}

#[cfg(not(unix))]
mod sys {
    use std::io;

    pub(super) fn map_shared(_file: &std::fs::File, _len: usize) -> io::Result<*mut u8> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "shared-memory transport requires a unix platform (use --transport tcp)",
        ))
    }

    pub(super) fn unmap(_ptr: *mut u8, _len: usize) {}
}

// ---------------------------------------------------------------------------
// Region
// ---------------------------------------------------------------------------

/// A mapped shm region. The creating side owns the file and unlinks it on
/// drop; both sides unmap.
#[derive(Debug)]
pub(crate) struct ShmRegion {
    ptr: *mut u8,
    len: usize,
    path: PathBuf,
    owner: bool,
    slots: usize,
    stride: usize,
}

// Safety: all shared mutation goes through the per-slot/per-flag `AtomicU8`
// ownership protocol (acquire/release), exactly as in `simbricks_base::slot`.
unsafe impl Send for ShmRegion {}
unsafe impl Sync for ShmRegion {}

impl Drop for ShmRegion {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl ShmRegion {
    fn atomic_at(&self, off: usize) -> &AtomicU8 {
        debug_assert!(off < self.len);
        // Safety: `off` is in bounds and the byte is only accessed as an
        // AtomicU8 by both processes.
        unsafe { &*(self.ptr.add(off) as *const AtomicU8) }
    }

    fn write_bytes(&self, off: usize, data: &[u8]) {
        debug_assert!(off + data.len() <= self.len);
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.add(off), data.len());
        }
    }

    fn read_bytes(&self, off: usize, out: &mut [u8]) {
        debug_assert!(off + out.len() <= self.len);
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(off), out.as_mut_ptr(), out.len());
        }
    }

    fn state(&self) -> u8 {
        self.atomic_at(OFF_STATE).load(Ordering::Acquire)
    }

    fn poison(&self) {
        self.atomic_at(OFF_STATE).store(STATE_POISONED, Ordering::Release);
    }
}

/// Create the region file for `link` (the owning / listening side),
/// returning the A-side endpoint. The header carries the same metadata as
/// the SBPX socket handshake and is published with `state = READY`.
pub fn create_region(
    path: &Path,
    link: &str,
    params: ChannelParams,
) -> io::Result<ShmEndpoint> {
    if link.len() > MAX_NAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "link name too long"));
    }
    let slots = params.queue_len.max(2);
    let len = region_len(slots);
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    file.set_len(len as u64)?;
    let ptr = sys::map_shared(&file, len)?;
    let region = ShmRegion {
        ptr,
        len,
        path: path.to_path_buf(),
        owner: true,
        slots,
        stride: slot_stride(),
    };
    region.write_bytes(OFF_MAGIC, &SHM_MAGIC);
    region.write_bytes(OFF_VERSION, &[SHM_VERSION]);
    region.write_bytes(OFF_NAME_LEN, &(link.len() as u16).to_le_bytes());
    region.write_bytes(OFF_NAME, link.as_bytes());
    region.write_bytes(OFF_PARAMS, &params.to_wire());
    region.write_bytes(OFF_SLOTS, &(slots as u32).to_le_bytes());
    region.write_bytes(OFF_STRIDE, &(slot_stride() as u32).to_le_bytes());
    // Publish: everything above must be visible before READY is observed.
    region.atomic_at(OFF_STATE).store(STATE_READY, Ordering::Release);
    Ok(ShmEndpoint::new(Arc::new(region), Side::A))
}

/// Attach to the region `create_region` publishes at `path` (the connecting
/// side), validating the handshake metadata against this side's own `link`
/// name and build-derived `params`. Polls until the creator has published
/// the header or `deadline` passes; a metadata mismatch poisons the region
/// so the creator fails fast too.
pub fn attach_region(
    path: &Path,
    link: &str,
    params: ChannelParams,
    deadline: Instant,
    shutdown: &ShutdownSignal,
) -> io::Result<ShmEndpoint> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let slots = params.queue_len.max(2);
    loop {
        if shutdown.is_set() {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "shutdown during attach"));
        }
        if Instant::now() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("shm region {} never became ready", path.display()),
            ));
        }
        match probe_region(path)? {
            Some(region) => {
                let mut magic = [0u8; 4];
                region.read_bytes(OFF_MAGIC, &mut magic);
                if magic != SHM_MAGIC {
                    region.poison();
                    return Err(bad("shm region magic mismatch"));
                }
                let mut version = [0u8];
                region.read_bytes(OFF_VERSION, &mut version);
                if version[0] != SHM_VERSION {
                    region.poison();
                    return Err(bad("shm region version mismatch"));
                }
                let mut nlen = [0u8; 2];
                region.read_bytes(OFF_NAME_LEN, &mut nlen);
                let nlen = u16::from_le_bytes(nlen) as usize;
                let mut name = vec![0u8; nlen.min(MAX_NAME)];
                region.read_bytes(OFF_NAME, &mut name);
                if nlen > MAX_NAME || name != link.as_bytes() {
                    region.poison();
                    return Err(bad("shm region link name mismatch"));
                }
                let mut pwire = [0u8; ChannelParams::WIRE_LEN];
                region.read_bytes(OFF_PARAMS, &mut pwire);
                if ChannelParams::from_wire(&pwire) != Some(params) {
                    region.poison();
                    return Err(bad("shm region channel params mismatch"));
                }
                if region.slots != slots || region.stride != slot_stride() {
                    // Covers queue_len mismatches too: geometry is read from
                    // the creator's header, so a differently-sized region is
                    // rejected (and poisoned) here instead of hanging the
                    // attach poll until the connect timeout.
                    region.poison();
                    return Err(bad("shm region ring geometry mismatch"));
                }
                region.atomic_at(OFF_STATE).store(STATE_ATTACHED, Ordering::Release);
                return Ok(ShmEndpoint::new(Arc::new(region), Side::B));
            }
            None => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Open and map the region at `path` if the creator has fully published it
/// (file exists, `state == READY`, and its size matches the geometry in its
/// own header). `Ok(None)` means "not yet" — the attacher keeps polling. The
/// geometry is taken from the creator's header, never from the attacher's
/// expectations, so a creator/attacher parameter mismatch surfaces as a fast
/// validation failure in [`attach_region`] rather than an endless poll.
fn probe_region(path: &Path) -> io::Result<Option<ShmRegion>> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut file = match File::options().read(true).write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let file_len = file.metadata()?.len();
    if file_len < HEADER_LEN as u64 {
        return Ok(None);
    }
    // Peek the state byte through the file before paying for the mapping;
    // the creator publishes it (with release ordering) only after the whole
    // header — including the geometry fields — is written.
    let mut state = [0u8];
    file.seek(SeekFrom::Start(OFF_STATE as u64))?;
    file.read_exact(&mut state)?;
    if state[0] == 0 {
        return Ok(None);
    }
    let mut geom = [0u8; 8];
    file.seek(SeekFrom::Start(OFF_SLOTS as u64))?;
    file.read_exact(&mut geom)?;
    // io-ok: infallible - both slices are exactly 4 bytes
    let slots = u32::from_le_bytes(geom[0..4].try_into().unwrap()) as usize;
    // io-ok: infallible - both slices are exactly 4 bytes
    let stride = u32::from_le_bytes(geom[4..8].try_into().unwrap()) as usize;
    // The mapping length must come from the header the creator wrote; an
    // inconsistent file (truncated, or not a SimBricks region at all) is an
    // error, not a "keep polling".
    if slots < 2 || stride == 0 || region_len_for(slots, stride) as u64 != file_len {
        return Err(bad("shm region size inconsistent with its header"));
    }
    let len = region_len_for(slots, stride);
    let ptr = sys::map_shared(&file, len)?;
    Ok(Some(ShmRegion {
        ptr,
        len,
        path: path.to_path_buf(),
        owner: false,
        slots,
        stride,
    }))
}

// ---------------------------------------------------------------------------
// Endpoint: one side's producer/consumer view of the two rings
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    /// The creating side: produces into ring A→B, consumes ring B→A.
    A,
    /// The attaching side.
    B,
}

/// Error returned by [`ShmEndpoint::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmPushError {
    /// The next slot is still owned by the consumer.
    Full,
    /// Payload exceeds [`MAX_PAYLOAD`].
    TooLarge,
}

/// One side of an shm link: a producer index into its transmit ring and a
/// consumer index into its receive ring, both process-local (never shared),
/// as in the paper's queue design.
#[derive(Debug)]
pub struct ShmEndpoint {
    region: Arc<ShmRegion>,
    side: Side,
    tx_idx: usize,
    rx_idx: usize,
    /// Arena received payloads are copied into straight out of the mapped
    /// ring (one copy, no heap allocation on a warm pool).
    pool: BufPool,
}

impl ShmEndpoint {
    fn new(region: Arc<ShmRegion>, side: Side) -> Self {
        ShmEndpoint {
            region,
            side,
            tx_idx: 0,
            rx_idx: 0,
            pool: BufPool::new(),
        }
    }

    fn ring_base(&self, tx: bool) -> usize {
        let ring_bytes = self.region.slots * self.region.stride;
        // Ring A→B first, then B→A.
        let a_to_b = HEADER_LEN;
        let b_to_a = HEADER_LEN + ring_bytes;
        match (self.side, tx) {
            (Side::A, true) | (Side::B, false) => a_to_b,
            (Side::A, false) | (Side::B, true) => b_to_a,
        }
    }

    fn closed_flag_off(&self, mine: bool) -> usize {
        match (self.side, mine) {
            (Side::A, true) | (Side::B, false) => OFF_A_CLOSED,
            (Side::A, false) | (Side::B, true) => OFF_B_CLOSED,
        }
    }

    /// Enqueue one message into the transmit ring. Non-blocking.
    pub fn push(&mut self, msg: &OwnedMsg) -> Result<(), ShmPushError> {
        if msg.data.len() > MAX_PAYLOAD {
            return Err(ShmPushError::TooLarge);
        }
        let base = self.ring_base(true) + self.tx_idx * self.region.stride;
        let ctrl = self.region.atomic_at(base + SLOT_OFF_CTRL);
        if ctrl.load(Ordering::Acquire) & OWNER_CONSUMER != 0 {
            return Err(ShmPushError::Full);
        }
        self.region
            .write_bytes(base + SLOT_OFF_TS, &msg.timestamp.as_ps().to_le_bytes());
        self.region
            .write_bytes(base + SLOT_OFF_LEN, &(msg.data.len() as u32).to_le_bytes());
        self.region.write_bytes(base + SLOT_OFF_PAYLOAD, &msg.data);
        ctrl.store(OWNER_CONSUMER | (msg.ty & TYPE_MASK), Ordering::Release);
        self.tx_idx += 1;
        if self.tx_idx == self.region.slots {
            self.tx_idx = 0;
        }
        Ok(())
    }

    /// Dequeue the next message from the receive ring, if any.
    pub fn pop(&mut self) -> Option<OwnedMsg> {
        let base = self.ring_base(false) + self.rx_idx * self.region.stride;
        let ctrl = self.region.atomic_at(base + SLOT_OFF_CTRL);
        let c = ctrl.load(Ordering::Acquire);
        if c & OWNER_CONSUMER == 0 {
            return None;
        }
        let mut ts = [0u8; 8];
        self.region.read_bytes(base + SLOT_OFF_TS, &mut ts);
        let mut len = [0u8; 4];
        self.region.read_bytes(base + SLOT_OFF_LEN, &mut len);
        let len = (u32::from_le_bytes(len) as usize).min(MAX_PAYLOAD);
        // One copy: mapped ring straight into a pooled segment (no heap
        // allocation on a warm pool; SYNCs are allocation-free).
        let data = if len == 0 {
            PktBuf::empty()
        } else {
            let mut b = self.pool.alloc_capacity(len, 0);
            let region = &self.region;
            b.extend_with(len, |dst| region.read_bytes(base + SLOT_OFF_PAYLOAD, dst));
            b
        };
        let msg = OwnedMsg::new(
            SimTime::from_ps(u64::from_le_bytes(ts)),
            c & TYPE_MASK,
            data,
        );
        ctrl.store(0, Ordering::Release);
        self.rx_idx += 1;
        if self.rx_idx == self.region.slots {
            self.rx_idx = 0;
        }
        Some(msg)
    }

    /// Mark this side closed (everything it will ever send is in the ring).
    pub fn set_closed(&self) {
        self.region
            .atomic_at(self.closed_flag_off(true))
            .store(1, Ordering::Release);
    }

    /// Whether the peer side has closed (its ring contents are final).
    pub fn peer_closed(&self) -> bool {
        self.region
            .atomic_at(self.closed_flag_off(false))
            .load(Ordering::Acquire)
            != 0
            || self.region.state() == STATE_POISONED
    }

    /// Creator side: wait until the peer attached (or poisoned the region /
    /// the deadline passed / shutdown was signalled).
    pub fn wait_attached(
        &self,
        deadline: Instant,
        shutdown: &ShutdownSignal,
    ) -> io::Result<()> {
        debug_assert_eq!(self.side, Side::A);
        loop {
            match self.region.state() {
                STATE_ATTACHED => return Ok(()),
                STATE_POISONED => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "peer rejected the shm region handshake",
                    ))
                }
                _ => {}
            }
            if shutdown.is_set() {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "shutdown during attach"));
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "shm peer never attached"));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

// ---------------------------------------------------------------------------
// Transport impl
// ---------------------------------------------------------------------------

/// An shm link side as a [`Transport`]. The handshake may still be pending
/// when the forwarder thread starts — builds must never block on connection
/// ordering — so the transport carries one of three states and completes the
/// handshake (wait for the attacher, or attach lazily) on the forwarding
/// thread before entering the loop.
pub struct ShmTransport {
    state: ShmTransportState,
}

enum ShmTransportState {
    /// Handshake already complete (e.g. an in-process proxy pair).
    Ready(ShmEndpoint),
    /// Creator side: region published, peer not yet attached.
    AwaitPeer(ShmEndpoint, Instant),
    /// Attacher side: region possibly not even created yet.
    Attach {
        path: PathBuf,
        link: String,
        params: ChannelParams,
        deadline: Instant,
    },
}

impl ShmTransport {
    /// A fully handshaken endpoint.
    pub(crate) fn ready(endpoint: ShmEndpoint) -> Self {
        ShmTransport {
            state: ShmTransportState::Ready(endpoint),
        }
    }

    /// Creator side: wait (on the forwarding thread) until the peer attaches
    /// or `deadline` passes before forwarding.
    pub(crate) fn await_peer(endpoint: ShmEndpoint, deadline: Instant) -> Self {
        ShmTransport {
            state: ShmTransportState::AwaitPeer(endpoint, deadline),
        }
    }

    /// Attacher side: attach to `path` (on the forwarding thread, polling
    /// until the creator publishes the region) and validate the handshake
    /// metadata before forwarding.
    pub(crate) fn attach(
        path: PathBuf,
        link: impl Into<String>,
        params: ChannelParams,
        deadline: Instant,
    ) -> Self {
        ShmTransport {
            state: ShmTransportState::Attach {
                path,
                link: link.into(),
                params,
                deadline,
            },
        }
    }
}

impl Transport for ShmTransport {
    fn name(&self) -> &'static str {
        "shm"
    }

    fn forward(
        self: Box<Self>,
        local: ChannelEnd,
        counters: Arc<ProxyCounters>,
        shutdown: Arc<ShutdownSignal>,
    ) {
        let endpoint = match self.state {
            ShmTransportState::Ready(ep) => ep,
            ShmTransportState::AwaitPeer(ep, deadline) => {
                if let Err(e) = ep.wait_attached(deadline, &shutdown) {
                    eprintln!("shm transport: peer never attached: {e}");
                    return;
                }
                ep
            }
            ShmTransportState::Attach {
                path,
                link,
                params,
                deadline,
            } => match attach_region(&path, &link, params, deadline, &shutdown) {
                Ok(ep) => ep,
                Err(e) => {
                    eprintln!("shm transport: attach failed on link {link:?}: {e}");
                    return;
                }
            },
        };
        shm_forward_loop(endpoint, local, &counters, &shutdown);
    }
}

/// One side of an shm-bridged link: forward everything between the local
/// channel stub and the mapped rings until the local component endpoint
/// disappears, the peer side closes, or `shutdown` is signalled. Mirrors the
/// semantics of `crate::proxy::tcp_forward_loop`: nothing is dropped or
/// reordered, the local side is fully flushed before close, and backpressure
/// (full ring, full local queue) is retried, never fatal.
pub(crate) fn shm_forward_loop(
    mut endpoint: ShmEndpoint,
    mut local: ChannelEnd,
    counters: &ProxyCounters,
    shutdown: &ShutdownSignal,
) {
    let mut pending: Option<OwnedMsg> = None;
    loop {
        if shutdown.is_set() {
            endpoint.set_closed();
            return;
        }
        let mut idle = true;
        // Read both close flags before draining: a closer finishes its last
        // send/push *before* raising its flag, so a drain performed after
        // observing a flag is guaranteed to have flushed everything.
        let local_closing = local.peer_closed();
        let peer_closing = endpoint.peer_closed();
        // Local -> ring (batched: everything queued locally in one round).
        let mut moved = 0u64;
        let mut moved_bytes = 0u64;
        loop {
            let msg = match pending.take() {
                Some(m) => m,
                None => match local.recv_raw() {
                    Some(m) => m,
                    None => break,
                },
            };
            match endpoint.push(&msg) {
                Ok(()) => {
                    moved += 1;
                    moved_bytes += msg.data.len() as u64;
                }
                Err(ShmPushError::Full) => {
                    pending = Some(msg);
                    break;
                }
                Err(ShmPushError::TooLarge) => {
                    // Cannot happen: local channel slots share MAX_PAYLOAD.
                    endpoint.set_closed();
                    return;
                }
            }
        }
        if moved > 0 {
            counters.record_batch(moved, moved_bytes);
            idle = false;
        }
        if local_closing && pending.is_none() {
            endpoint.set_closed();
            return;
        }
        // Ring -> local (retry until the component drains its queue).
        while let Some(msg) = endpoint.pop() {
            loop {
                if shutdown.is_set() {
                    endpoint.set_closed();
                    return;
                }
                match local.send_raw(msg.timestamp, msg.ty, &msg.data) {
                    Ok(()) => break,
                    Err(simbricks_base::SendError::Full) => std::thread::yield_now(),
                    Err(_) => {
                        endpoint.set_closed();
                        return;
                    }
                }
            }
            idle = false;
        }
        if peer_closing {
            // The flag was up before the drain above, so the (now empty)
            // ring contents were final and have all been injected locally.
            // A still-pending local message can never be delivered — the
            // peer stopped reading — matching a TCP peer that closed.
            endpoint.set_closed();
            return;
        }
        if idle {
            std::thread::yield_now();
        }
    }
}

/// A unique region path for `link` under `dir` (sanitized so arbitrary link
/// names cannot escape the directory).
pub(crate) fn region_path(dir: &Path, link: &str) -> PathBuf {
    let mut name: String = link
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    // Distinct links must get distinct files even after sanitization.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in link.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    name.push_str(&format!("-{h:016x}.shm"));
    dir.join(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::MSG_SYNC;

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "simbricks-shm-test-{}-{tag}-{n}.shm",
            std::process::id()
        ))
    }

    fn soon() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn create_attach_push_pop_roundtrip() {
        let path = temp_path("roundtrip");
        let params = ChannelParams::default_sync().with_queue_len(8);
        let sd = ShutdownSignal::default();
        let mut a = create_region(&path, "l0", params).unwrap();
        let mut b = attach_region(&path, "l0", params, soon(), &sd).unwrap();
        for i in 0..20u64 {
            // Interleave so the ring wraps.
            a.push(&OwnedMsg::new(SimTime::from_ns(i), 5, i.to_le_bytes().to_vec()))
                .unwrap();
            let m = b.pop().unwrap();
            assert_eq!(m.timestamp, SimTime::from_ns(i));
            assert_eq!(m.ty, 5);
            assert_eq!(m.data, i.to_le_bytes().to_vec());
        }
        // Reverse direction, including a SYNC.
        b.push(&OwnedMsg::sync(SimTime::from_ns(7))).unwrap();
        let m = a.pop().unwrap();
        assert_eq!(m.ty, MSG_SYNC);
        assert!(m.data.is_empty());
    }

    #[test]
    fn ring_fills_and_drains_in_fifo_order() {
        let path = temp_path("fifo");
        let params = ChannelParams::default_sync().with_queue_len(4);
        let sd = ShutdownSignal::default();
        let mut a = create_region(&path, "l1", params).unwrap();
        let mut b = attach_region(&path, "l1", params, soon(), &sd).unwrap();
        for i in 0..4u64 {
            a.push(&OwnedMsg::new(SimTime::from_ns(i), 1, vec![i as u8])).unwrap();
        }
        assert_eq!(
            a.push(&OwnedMsg::new(SimTime::ZERO, 1, vec![])),
            Err(ShmPushError::Full)
        );
        for i in 0..4u64 {
            assert_eq!(b.pop().unwrap().data, vec![i as u8]);
        }
        assert!(b.pop().is_none());
    }

    #[test]
    fn attach_validates_handshake_metadata() {
        let params = ChannelParams::default_sync().with_queue_len(8);
        let sd = ShutdownSignal::default();

        // Wrong link name.
        let path = temp_path("name");
        let _a = create_region(&path, "left", params).unwrap();
        let deadline = Instant::now() + Duration::from_millis(500);
        let err = attach_region(&path, "right", params, deadline, &sd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Wrong channel parameters (latency differs).
        let path = temp_path("params");
        let a = create_region(&path, "l", params).unwrap();
        let other = params.with_latency(SimTime::from_ns(9));
        let deadline = Instant::now() + Duration::from_millis(500);
        let err = attach_region(&path, "l", other, deadline, &sd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The rejection poisoned the region, so the creator fails fast too.
        let err = a.wait_attached(Instant::now() + Duration::from_millis(200), &sd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Differing queue lengths change the region size; the attacher must
        // reject fast from the creator's header geometry, not poll the
        // wrong expected size until the connect timeout.
        let path = temp_path("qlen");
        let _a = create_region(&path, "l", params).unwrap();
        let other = ChannelParams::default_sync().with_queue_len(32);
        let deadline = Instant::now() + Duration::from_millis(500);
        let before = Instant::now();
        let err = attach_region(&path, "l", other, deadline, &sd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(before.elapsed() < Duration::from_millis(400), "failed fast, no timeout poll");

        // Missing region times out instead of hanging.
        let path = temp_path("missing");
        let deadline = Instant::now() + Duration::from_millis(100);
        let err = attach_region(&path, "l", params, deadline, &sd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn creator_drop_unlinks_the_region_file() {
        let path = temp_path("unlink");
        let params = ChannelParams::default_sync().with_queue_len(4);
        let sd = ShutdownSignal::default();
        let a = create_region(&path, "l", params).unwrap();
        let b = attach_region(&path, "l", params, soon(), &sd).unwrap();
        assert!(path.exists());
        drop(b);
        assert!(path.exists(), "attacher drop keeps the file");
        drop(a);
        assert!(!path.exists(), "creator drop unlinks the region");
    }

    #[test]
    fn closed_flags_propagate_between_sides() {
        let path = temp_path("close");
        let params = ChannelParams::default_sync().with_queue_len(4);
        let sd = ShutdownSignal::default();
        let a = create_region(&path, "l", params).unwrap();
        let b = attach_region(&path, "l", params, soon(), &sd).unwrap();
        assert!(!a.peer_closed());
        assert!(!b.peer_closed());
        b.set_closed();
        assert!(a.peer_closed());
        assert!(!b.peer_closed());
        a.set_closed();
        assert!(b.peer_closed());
    }

    #[test]
    fn cross_thread_transfer_with_wrapping() {
        let path = temp_path("threads");
        let params = ChannelParams::default_sync().with_queue_len(8);
        let sd = ShutdownSignal::default();
        let mut a = create_region(&path, "l", params).unwrap();
        let mut b = attach_region(&path, "l", params, soon(), &sd).unwrap();
        let n = 10_000u64;
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            while sent < n {
                let msg = OwnedMsg::new(SimTime::from_ps(sent), 5, sent.to_le_bytes().to_vec());
                match a.push(&msg) {
                    Ok(()) => sent += 1,
                    Err(ShmPushError::Full) => std::thread::yield_now(),
                    Err(e) => panic!("push failed: {e:?}"),
                }
            }
        });
        let mut expect = 0u64;
        while expect < n {
            match b.pop() {
                Some(m) => {
                    assert_eq!(m.data, expect.to_le_bytes().to_vec());
                    assert_eq!(m.timestamp, SimTime::from_ps(expect));
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn region_path_sanitizes_and_distinguishes() {
        let dir = PathBuf::from("/tmp/x");
        let p1 = region_path(&dir, "a/b");
        let p2 = region_path(&dir, "a_b");
        assert_ne!(p1, p2, "sanitized collisions disambiguated by hash");
        assert!(p1.starts_with(&dir));
        assert!(p1.file_name().unwrap().to_str().unwrap().ends_with(".shm"));
        assert!(!p1.to_str().unwrap().contains("a/b"));
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::VecDeque;

        proptest! {
            /// Random push/pop interleavings through the mmap ring behave
            /// exactly like a VecDeque model: FIFO order, no loss, no
            /// duplication, Full exactly when the model holds `queue_len`
            /// messages.
            #[test]
            fn ring_matches_vecdeque_model(
                ops in proptest::collection::vec(any::<bool>(), 1..400),
                qlen in 2usize..16,
                payload_len in 0usize..64,
            ) {
                let path = temp_path("prop");
                let params = ChannelParams::default_sync().with_queue_len(qlen);
                let sd = ShutdownSignal::default();
                let mut a = create_region(&path, "prop", params).unwrap();
                let mut b = attach_region(&path, "prop", params, soon(), &sd).unwrap();
                let mut model: VecDeque<OwnedMsg> = VecDeque::new();
                let mut seq = 0u64;
                for push in ops {
                    if push {
                        let msg = OwnedMsg::new(
                            SimTime::from_ps(seq),
                            (seq % 127 + 1) as u8,
                            vec![(seq % 251) as u8; payload_len],
                        );
                        seq += 1;
                        match a.push(&msg) {
                            Ok(()) => model.push_back(msg),
                            Err(ShmPushError::Full) => {
                                prop_assert_eq!(model.len(), qlen, "Full only when the model is full");
                            }
                            Err(e) => prop_assert!(false, "unexpected push error {:?}", e),
                        }
                    } else {
                        let got = b.pop();
                        let want = model.pop_front();
                        prop_assert_eq!(got, want, "pop matches the model exactly");
                    }
                }
                // Drain: everything still queued comes out in order.
                while let Some(want) = model.pop_front() {
                    prop_assert_eq!(b.pop(), Some(want));
                }
                prop_assert_eq!(b.pop(), None);
            }
        }
    }
}
