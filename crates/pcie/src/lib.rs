//! # simbricks-pcie
//!
//! The SimBricks host ↔ device interface (Fig. 4 of the paper), modelled on
//! the PCIe *transactional* layer: device discovery (`INIT_DEV`), MMIO reads
//! and writes initiated by the host, DMA reads and writes initiated by the
//! device, completions in both directions, and interrupt signalling (INTx,
//! MSI, MSI-X). Low-level PCIe details (encoding, signalling, flow control)
//! are abstracted into two channel parameters: bandwidth and latency.
//!
//! Messages are serialized into SimBricks message slots; this crate provides
//! the typed encode/decode layer both host-simulator and device-simulator
//! adapters use, plus a small helper for tracking outstanding requests.

pub mod msg;
pub mod outstanding;

pub use msg::{
    BarInfo, BarKind, DevToHost, DeviceInfo, HostToDev, IntKind, IntStatus, MSG_DEV_TO_HOST_BASE,
    MSG_HOST_TO_DEV_BASE,
};
pub use outstanding::OutstandingRequests;

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn dev_to_host_roundtrip(req_id in any::<u64>(), addr in any::<u64>(),
                                 len in 0usize..2048,
                                 data in proptest::collection::vec(any::<u8>(), 0..256),
                                 vector in any::<u16>()) {
            let msgs = vec![
                DevToHost::DmaRead { req_id, addr, len },
                DevToHost::DmaWrite { req_id, addr, data: data.clone() },
                DevToHost::MmioComplete { req_id, data: data.clone() },
                DevToHost::Interrupt { kind: IntKind::Msix, vector },
                DevToHost::Interrupt { kind: IntKind::Legacy, vector: 0 },
            ];
            for m in msgs {
                let (ty, payload) = m.encode();
                let back = DevToHost::decode(ty, &payload).unwrap();
                prop_assert_eq!(back, m);
            }
        }

        #[test]
        fn host_to_dev_roundtrip(req_id in any::<u64>(), bar in 0u8..6,
                                 offset in any::<u64>(), len in 1usize..64,
                                 data in proptest::collection::vec(any::<u8>(), 1..64)) {
            let msgs = vec![
                HostToDev::MmioRead { req_id, bar, offset, len },
                HostToDev::MmioWrite { req_id, bar, offset, data: data.clone() },
                HostToDev::DmaComplete { req_id, data: data.clone() },
                HostToDev::IntStatus(IntStatus { legacy: true, msi: false, msix: true }),
            ];
            for m in msgs {
                let (ty, payload) = m.encode();
                let back = HostToDev::decode(ty, &payload).unwrap();
                prop_assert_eq!(back, m);
            }
        }
    }
}
