//! PCIe interface message definitions and their slot encoding.
//!
//! Bulk payloads (DMA reads/writes, MMIO data) are carried as pooled
//! [`PktBuf`]s. Decoding through [`DevToHost::decode_buf`] /
//! [`HostToDev::decode_buf`] yields payload fields that are zero-copy slice
//! views into the received message buffer (a refcount bump, no allocation).

use simbricks_base::{MsgType, PktBuf};

/// Message type space for device → host messages (Fig. 4, top table).
pub const MSG_DEV_TO_HOST_BASE: MsgType = 0x10;
pub const MSG_D2H_DEV_INFO: MsgType = MSG_DEV_TO_HOST_BASE;
pub const MSG_D2H_DMA_READ: MsgType = MSG_DEV_TO_HOST_BASE + 1;
pub const MSG_D2H_DMA_WRITE: MsgType = MSG_DEV_TO_HOST_BASE + 2;
pub const MSG_D2H_MMIO_COMPL: MsgType = MSG_DEV_TO_HOST_BASE + 3;
pub const MSG_D2H_INTERRUPT: MsgType = MSG_DEV_TO_HOST_BASE + 4;

/// Message type space for host → device messages (Fig. 4, middle table).
pub const MSG_HOST_TO_DEV_BASE: MsgType = 0x20;
pub const MSG_H2D_DMA_COMPL: MsgType = MSG_HOST_TO_DEV_BASE;
pub const MSG_H2D_MMIO_READ: MsgType = MSG_HOST_TO_DEV_BASE + 1;
pub const MSG_H2D_MMIO_WRITE: MsgType = MSG_HOST_TO_DEV_BASE + 2;
pub const MSG_H2D_INT_STATUS: MsgType = MSG_HOST_TO_DEV_BASE + 3;

/// Kind of a base address register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarKind {
    Mmio,
    Io,
    /// 64-bit prefetchable MMIO.
    Mmio64,
}

impl BarKind {
    fn to_u8(self) -> u8 {
        match self {
            BarKind::Mmio => 0,
            BarKind::Io => 1,
            BarKind::Mmio64 => 2,
        }
    }
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(BarKind::Mmio),
            1 => Some(BarKind::Io),
            2 => Some(BarKind::Mmio64),
            _ => None,
        }
    }
}

/// One base address region exposed by a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarInfo {
    pub len: u64,
    pub kind: BarKind,
}

/// Device identity and capabilities announced with `INIT_DEV`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceInfo {
    pub vendor_id: u16,
    pub device_id: u16,
    pub class: u8,
    pub subclass: u8,
    pub revision: u8,
    pub msi_vectors: u16,
    pub msix_vectors: u16,
    /// BAR index holding the MSI-X table and its offset.
    pub msix_table_bar: u8,
    pub msix_table_offset: u64,
    /// BAR index holding the MSI-X pending-bit array and its offset.
    pub msix_pba_bar: u8,
    pub msix_pba_offset: u64,
    pub bars: Vec<BarInfo>,
}

impl DeviceInfo {
    /// A convenience constructor for a typical NIC-like device with a single
    /// MMIO register BAR.
    pub fn nic(vendor_id: u16, device_id: u16, bar0_len: u64, msix_vectors: u16) -> Self {
        DeviceInfo {
            vendor_id,
            device_id,
            class: 0x02, // network controller
            subclass: 0x00,
            revision: 1,
            msi_vectors: 0,
            msix_vectors,
            msix_table_bar: 0,
            msix_table_offset: 0,
            msix_pba_bar: 0,
            msix_pba_offset: 0,
            bars: vec![BarInfo {
                len: bar0_len,
                kind: BarKind::Mmio64,
            }],
        }
    }

    /// A convenience constructor for an NVMe-like storage device.
    pub fn nvme(vendor_id: u16, device_id: u16, bar0_len: u64, msix_vectors: u16) -> Self {
        DeviceInfo {
            class: 0x01, // mass storage
            subclass: 0x08,
            ..Self::nic(vendor_id, device_id, bar0_len, msix_vectors)
        }
    }
}

/// Interrupt signalling mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntKind {
    Legacy,
    Msi,
    Msix,
}

impl IntKind {
    fn to_u8(self) -> u8 {
        match self {
            IntKind::Legacy => 0,
            IntKind::Msi => 1,
            IntKind::Msix => 2,
        }
    }
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(IntKind::Legacy),
            1 => Some(IntKind::Msi),
            2 => Some(IntKind::Msix),
            _ => None,
        }
    }
}

/// Which interrupt mechanisms the OS has enabled (`INT_STATUS`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntStatus {
    pub legacy: bool,
    pub msi: bool,
    pub msix: bool,
}

/// Device → host messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DevToHost {
    /// Register the device with the host (discovery / initialization).
    DevInfo(DeviceInfo),
    /// Device-initiated DMA read of host memory.
    DmaRead { req_id: u64, addr: u64, len: usize },
    /// Device-initiated DMA write to host memory.
    DmaWrite { req_id: u64, addr: u64, data: PktBuf },
    /// Completion of an earlier host MMIO read/write.
    MmioComplete { req_id: u64, data: PktBuf },
    /// Raise an interrupt.
    Interrupt { kind: IntKind, vector: u16 },
}

/// Host → device messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostToDev {
    /// Completion of an earlier device DMA read (carries data) or write.
    DmaComplete { req_id: u64, data: PktBuf },
    /// Host-initiated MMIO read of a device BAR.
    MmioRead { req_id: u64, bar: u8, offset: u64, len: usize },
    /// Host-initiated MMIO write to a device BAR.
    MmioWrite { req_id: u64, bar: u8, offset: u64, data: PktBuf },
    /// Report which interrupt mechanisms the OS enabled.
    IntStatus(IntStatus),
}

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn new() -> Self {
        Writer(Vec::with_capacity(64))
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
    fn finish(self) -> Vec<u8> {
        self.0
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When decoding straight from a received [`PktBuf`], `bytes()` returns
    /// zero-copy slice views of it instead of fresh allocations.
    src: Option<&'a PktBuf>,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            src: None,
        }
    }

    fn new_buf(src: &'a PktBuf) -> Self {
        Reader {
            buf: src.as_slice(),
            pos: 0,
            src: Some(src),
        }
    }
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }
    fn u16(&mut self) -> Option<u16> {
        let s = self.buf.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        let s = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Option<PktBuf> {
        let len = self.u64()? as usize;
        let s = self.buf.get(self.pos..self.pos + len)?;
        let out = match self.src {
            Some(src) => src.slice(self.pos, self.pos + len),
            None => PktBuf::from(s),
        };
        self.pos += len;
        Some(out)
    }
}

impl DevToHost {
    /// Encode into a (message type, payload) pair for a SimBricks slot.
    pub fn encode(&self) -> (MsgType, Vec<u8>) {
        let mut w = Writer::new();
        match self {
            DevToHost::DevInfo(info) => {
                w.u16(info.vendor_id);
                w.u16(info.device_id);
                w.u8(info.class);
                w.u8(info.subclass);
                w.u8(info.revision);
                w.u16(info.msi_vectors);
                w.u16(info.msix_vectors);
                w.u8(info.msix_table_bar);
                w.u64(info.msix_table_offset);
                w.u8(info.msix_pba_bar);
                w.u64(info.msix_pba_offset);
                w.u8(info.bars.len() as u8);
                for b in &info.bars {
                    w.u64(b.len);
                    w.u8(b.kind.to_u8());
                }
                (MSG_D2H_DEV_INFO, w.finish())
            }
            DevToHost::DmaRead { req_id, addr, len } => {
                w.u64(*req_id);
                w.u64(*addr);
                w.u64(*len as u64);
                (MSG_D2H_DMA_READ, w.finish())
            }
            DevToHost::DmaWrite { req_id, addr, data } => {
                w.u64(*req_id);
                w.u64(*addr);
                w.bytes(data);
                (MSG_D2H_DMA_WRITE, w.finish())
            }
            DevToHost::MmioComplete { req_id, data } => {
                w.u64(*req_id);
                w.bytes(data);
                (MSG_D2H_MMIO_COMPL, w.finish())
            }
            DevToHost::Interrupt { kind, vector } => {
                w.u8(kind.to_u8());
                w.u16(*vector);
                (MSG_D2H_INTERRUPT, w.finish())
            }
        }
    }

    /// Encode a `DmaWrite` directly from borrowed payload bytes into a
    /// pooled buffer: one write pass, no intermediate envelope allocation.
    /// Wire-identical to `DevToHost::DmaWrite { .. }.encode()`.
    pub fn encode_dma_write_pooled(
        pool: &simbricks_base::BufPool,
        req_id: u64,
        addr: u64,
        data: &[u8],
    ) -> (MsgType, PktBuf) {
        let mut b = pool.alloc_capacity(24 + data.len(), 0);
        b.extend_from_slice(&req_id.to_le_bytes());
        b.extend_from_slice(&addr.to_le_bytes());
        b.extend_from_slice(&(data.len() as u64).to_le_bytes());
        b.extend_from_slice(data);
        (MSG_D2H_DMA_WRITE, b)
    }

    /// Decode straight from a received message buffer: bulk payload fields
    /// come out as zero-copy slice views of `payload` (refcount bump).
    pub fn decode_buf(ty: MsgType, payload: &PktBuf) -> Option<DevToHost> {
        Self::decode_reader(ty, Reader::new_buf(payload))
    }

    /// Decode from a (message type, payload) pair; `None` for foreign types
    /// or malformed payloads. Bulk payload fields are copied; prefer
    /// [`DevToHost::decode_buf`] on hot paths.
    pub fn decode(ty: MsgType, payload: &[u8]) -> Option<DevToHost> {
        Self::decode_reader(ty, Reader::new(payload))
    }

    fn decode_reader(ty: MsgType, mut r: Reader<'_>) -> Option<DevToHost> {
        match ty {
            MSG_D2H_DEV_INFO => {
                let vendor_id = r.u16()?;
                let device_id = r.u16()?;
                let class = r.u8()?;
                let subclass = r.u8()?;
                let revision = r.u8()?;
                let msi_vectors = r.u16()?;
                let msix_vectors = r.u16()?;
                let msix_table_bar = r.u8()?;
                let msix_table_offset = r.u64()?;
                let msix_pba_bar = r.u8()?;
                let msix_pba_offset = r.u64()?;
                let nbars = r.u8()?;
                let mut bars = Vec::with_capacity(nbars as usize);
                for _ in 0..nbars {
                    let len = r.u64()?;
                    let kind = BarKind::from_u8(r.u8()?)?;
                    bars.push(BarInfo { len, kind });
                }
                Some(DevToHost::DevInfo(DeviceInfo {
                    vendor_id,
                    device_id,
                    class,
                    subclass,
                    revision,
                    msi_vectors,
                    msix_vectors,
                    msix_table_bar,
                    msix_table_offset,
                    msix_pba_bar,
                    msix_pba_offset,
                    bars,
                }))
            }
            MSG_D2H_DMA_READ => Some(DevToHost::DmaRead {
                req_id: r.u64()?,
                addr: r.u64()?,
                len: r.u64()? as usize,
            }),
            MSG_D2H_DMA_WRITE => Some(DevToHost::DmaWrite {
                req_id: r.u64()?,
                addr: r.u64()?,
                data: r.bytes()?,
            }),
            MSG_D2H_MMIO_COMPL => Some(DevToHost::MmioComplete {
                req_id: r.u64()?,
                data: r.bytes()?,
            }),
            MSG_D2H_INTERRUPT => Some(DevToHost::Interrupt {
                kind: IntKind::from_u8(r.u8()?)?,
                vector: r.u16()?,
            }),
            _ => None,
        }
    }
}

impl HostToDev {
    /// Encode into a (message type, payload) pair for a SimBricks slot.
    pub fn encode(&self) -> (MsgType, Vec<u8>) {
        let mut w = Writer::new();
        match self {
            HostToDev::DmaComplete { req_id, data } => {
                w.u64(*req_id);
                w.bytes(data);
                (MSG_H2D_DMA_COMPL, w.finish())
            }
            HostToDev::MmioRead {
                req_id,
                bar,
                offset,
                len,
            } => {
                w.u64(*req_id);
                w.u8(*bar);
                w.u64(*offset);
                w.u64(*len as u64);
                (MSG_H2D_MMIO_READ, w.finish())
            }
            HostToDev::MmioWrite {
                req_id,
                bar,
                offset,
                data,
            } => {
                w.u64(*req_id);
                w.u8(*bar);
                w.u64(*offset);
                w.bytes(data);
                (MSG_H2D_MMIO_WRITE, w.finish())
            }
            HostToDev::IntStatus(s) => {
                w.u8(s.legacy as u8);
                w.u8(s.msi as u8);
                w.u8(s.msix as u8);
                (MSG_H2D_INT_STATUS, w.finish())
            }
        }
    }

    /// Encode a `DmaComplete` directly from borrowed payload bytes into a
    /// pooled buffer: one write pass, no intermediate envelope allocation.
    /// Wire-identical to `HostToDev::DmaComplete { .. }.encode()`.
    pub fn encode_dma_complete_pooled(
        pool: &simbricks_base::BufPool,
        req_id: u64,
        data: &[u8],
    ) -> (MsgType, PktBuf) {
        let mut b = pool.alloc_capacity(16 + data.len(), 0);
        b.extend_from_slice(&req_id.to_le_bytes());
        b.extend_from_slice(&(data.len() as u64).to_le_bytes());
        b.extend_from_slice(data);
        (MSG_H2D_DMA_COMPL, b)
    }

    /// Decode straight from a received message buffer: bulk payload fields
    /// come out as zero-copy slice views of `payload` (refcount bump).
    pub fn decode_buf(ty: MsgType, payload: &PktBuf) -> Option<HostToDev> {
        Self::decode_reader(ty, Reader::new_buf(payload))
    }

    /// Decode from a (message type, payload) pair. Bulk payload fields are
    /// copied; prefer [`HostToDev::decode_buf`] on hot paths.
    pub fn decode(ty: MsgType, payload: &[u8]) -> Option<HostToDev> {
        Self::decode_reader(ty, Reader::new(payload))
    }

    fn decode_reader(ty: MsgType, mut r: Reader<'_>) -> Option<HostToDev> {
        match ty {
            MSG_H2D_DMA_COMPL => Some(HostToDev::DmaComplete {
                req_id: r.u64()?,
                data: r.bytes()?,
            }),
            MSG_H2D_MMIO_READ => Some(HostToDev::MmioRead {
                req_id: r.u64()?,
                bar: r.u8()?,
                offset: r.u64()?,
                len: r.u64()? as usize,
            }),
            MSG_H2D_MMIO_WRITE => Some(HostToDev::MmioWrite {
                req_id: r.u64()?,
                bar: r.u8()?,
                offset: r.u64()?,
                data: r.bytes()?,
            }),
            MSG_H2D_INT_STATUS => Some(HostToDev::IntStatus(IntStatus {
                legacy: r.u8()? != 0,
                msi: r.u8()? != 0,
                msix: r.u8()? != 0,
            })),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dev_info_roundtrip() {
        let info = DeviceInfo {
            vendor_id: 0x8086,
            device_id: 0x1572,
            class: 2,
            subclass: 0,
            revision: 1,
            msi_vectors: 8,
            msix_vectors: 64,
            msix_table_bar: 3,
            msix_table_offset: 0x1000,
            msix_pba_bar: 3,
            msix_pba_offset: 0x2000,
            bars: vec![
                BarInfo {
                    len: 0x80000,
                    kind: BarKind::Mmio64,
                },
                BarInfo {
                    len: 0x1000,
                    kind: BarKind::Io,
                },
            ],
        };
        let m = DevToHost::DevInfo(info.clone());
        let (ty, p) = m.encode();
        assert_eq!(ty, MSG_D2H_DEV_INFO);
        assert_eq!(DevToHost::decode(ty, &p), Some(m));
    }

    #[test]
    fn nic_and_nvme_constructors() {
        let nic = DeviceInfo::nic(0x8086, 0x1572, 0x80000, 64);
        assert_eq!(nic.class, 0x02);
        assert_eq!(nic.bars.len(), 1);
        let nvme = DeviceInfo::nvme(0x1b36, 0x0010, 0x4000, 32);
        assert_eq!(nvme.class, 0x01);
        assert_eq!(nvme.subclass, 0x08);
    }

    #[test]
    fn cross_decoding_fails_cleanly() {
        let (ty, p) = DevToHost::DmaRead {
            req_id: 1,
            addr: 0x1000,
            len: 64,
        }
        .encode();
        // Host-to-device decoder must not accept device-to-host types.
        assert!(HostToDev::decode(ty, &p).is_none());
        // Truncated payloads decode to None rather than panicking.
        assert!(DevToHost::decode(ty, &p[..4]).is_none());
    }

    #[test]
    fn int_status_roundtrip() {
        let m = HostToDev::IntStatus(IntStatus {
            legacy: false,
            msi: true,
            msix: true,
        });
        let (ty, p) = m.encode();
        assert_eq!(HostToDev::decode(ty, &p), Some(m));
    }

    #[test]
    fn interrupt_kinds_roundtrip() {
        for kind in [IntKind::Legacy, IntKind::Msi, IntKind::Msix] {
            let m = DevToHost::Interrupt { kind, vector: 5 };
            let (ty, p) = m.encode();
            assert_eq!(DevToHost::decode(ty, &p), Some(m));
        }
    }

    #[test]
    fn dma_write_carries_payload() {
        let data: Vec<u8> = (0..255).collect();
        let m = DevToHost::DmaWrite {
            req_id: 42,
            addr: 0xdead_beef_0000,
            data: data.clone().into(),
        };
        let (ty, p) = m.encode();
        match DevToHost::decode(ty, &p).unwrap() {
            DevToHost::DmaWrite { data: d, .. } => assert_eq!(d, data),
            _ => panic!("wrong variant"),
        }
    }
}
