//! Tracking of outstanding PCIe requests.
//!
//! PCIe allows multiple outstanding MMIO and DMA operations, and completions
//! may return out of order (§5.1.1). Both host- and device-side adapters tag
//! requests with an identifier and match completions back to the request
//! context stored here.

use std::collections::BTreeMap;

/// A table of in-flight requests of type `T` keyed by request id.
///
/// Backed by a `BTreeMap` so every iteration — snapshots, drains,
/// diagnostics — observes requests in ascending id order. Determinism is
/// structural here, not a per-call-site convention: nothing downstream can
/// accidentally depend on hash-map iteration order.
#[derive(Debug)]
pub struct OutstandingRequests<T> {
    next_id: u64,
    inflight: BTreeMap<u64, T>,
    /// High-water mark of concurrently outstanding requests.
    max_inflight: usize,
}

impl<T> Default for OutstandingRequests<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OutstandingRequests<T> {
    pub fn new() -> Self {
        OutstandingRequests {
            next_id: 1,
            inflight: BTreeMap::new(),
            max_inflight: 0,
        }
    }

    /// Register a new request, returning the id to put in the message.
    pub fn insert(&mut self, ctx: T) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.inflight.insert(id, ctx);
        self.max_inflight = self.max_inflight.max(self.inflight.len());
        id
    }

    /// Complete a request, returning its context (None for unknown ids,
    /// e.g. duplicated completions).
    pub fn complete(&mut self, id: u64) -> Option<T> {
        self.inflight.remove(&id)
    }

    /// Look at a pending request without completing it.
    pub fn get(&self, id: u64) -> Option<&T> {
        self.inflight.get(&id)
    }

    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Largest number of requests that were in flight at the same time.
    pub fn high_water_mark(&self) -> usize {
        self.max_inflight
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore support
    // ------------------------------------------------------------------

    /// All in-flight requests in ascending id order (canonical for snapshot
    /// encoding). The order falls out of the ordered backing map — there is
    /// no sort step left to forget at a new call site.
    pub fn entries(&self) -> Vec<(u64, &T)> {
        self.inflight.iter().map(|(id, t)| (*id, t)).collect()
    }

    /// Iterate in-flight requests in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.inflight.iter().map(|(id, t)| (*id, t))
    }

    /// Rebuild a table from snapshot parts: the next id to hand out and the
    /// in-flight (id, context) pairs.
    pub fn restore_parts(next_id: u64, items: Vec<(u64, T)>) -> Self {
        let inflight: BTreeMap<u64, T> = items.into_iter().collect();
        let max_inflight = inflight.len();
        OutstandingRequests {
            next_id,
            inflight,
            max_inflight,
        }
    }

    /// The id the next [`OutstandingRequests::insert`] will use.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_completions_match() {
        let mut o = OutstandingRequests::new();
        let a = o.insert("read descriptor");
        let b = o.insert("write payload");
        assert_ne!(a, b);
        assert_eq!(o.len(), 2);
        // Out-of-order completion.
        assert_eq!(o.complete(b), Some("write payload"));
        assert_eq!(o.complete(a), Some("read descriptor"));
        assert!(o.is_empty());
    }

    #[test]
    fn unknown_or_duplicate_completion_is_none() {
        let mut o: OutstandingRequests<u32> = OutstandingRequests::new();
        let a = o.insert(7);
        assert_eq!(o.complete(a), Some(7));
        assert_eq!(o.complete(a), None);
        assert_eq!(o.complete(999), None);
    }

    #[test]
    fn high_water_mark_tracks_concurrency() {
        let mut o = OutstandingRequests::new();
        let ids: Vec<u64> = (0..10).map(|i| o.insert(i)).collect();
        assert_eq!(o.high_water_mark(), 10);
        for id in ids {
            o.complete(id);
        }
        assert_eq!(o.high_water_mark(), 10);
        o.insert(0);
        assert_eq!(o.high_water_mark(), 10);
    }

    /// Determinism regression: iteration order must be ascending-by-id no
    /// matter in which order requests were registered and completed. Under
    /// the pre-fix `HashMap` backing (without a per-site sort), two tables
    /// holding the same in-flight set after different completion histories
    /// iterate in unrelated hash orders and this test fails — exactly the
    /// divergence a snapshot or drain call site would then leak into the
    /// event log.
    #[test]
    fn iteration_order_is_id_order_regardless_of_history() {
        // Table A: insert 32, complete the even ids.
        let mut a = OutstandingRequests::new();
        let ids_a: Vec<u64> = (0..32).map(|i| a.insert(i)).collect();
        for id in ids_a.iter().step_by(2) {
            a.complete(*id);
        }
        // Table B: reach the same in-flight id set via a different history
        // (insert 32, complete evens in reverse, then re-check).
        let mut b = OutstandingRequests::new();
        let ids_b: Vec<u64> = (0..32).map(|i| b.insert(i)).collect();
        for id in ids_b.iter().step_by(2).rev() {
            b.complete(*id);
        }
        let order_a: Vec<u64> = a.iter().map(|(id, _)| id).collect();
        let order_b: Vec<u64> = b.iter().map(|(id, _)| id).collect();
        assert_eq!(order_a, order_b, "same set, same observable order");
        let mut sorted = order_a.clone();
        sorted.sort_unstable();
        assert_eq!(order_a, sorted, "iteration is ascending by id");
        assert_eq!(a.entries().len(), 16);
    }

    #[test]
    fn get_does_not_remove() {
        let mut o = OutstandingRequests::new();
        let a = o.insert(vec![1, 2, 3]);
        assert_eq!(o.get(a), Some(&vec![1, 2, 3]));
        assert_eq!(o.len(), 1);
    }
}
