//! # simbricks-netstack
//!
//! A simulated TCP/UDP/IP network stack used by the simulated hosts (and by
//! the network simulator's built-in endpoints for the "ns-3 alone" baseline
//! of Fig. 1). The stack stands in for the guest Linux kernel networking of
//! the paper's full-system simulations.
//!
//! The stack is written sans-I/O: it never performs I/O or time queries
//! itself. The owner (the OS model of a simulated host, or a network
//! simulator node) feeds it received frames and timer callbacks, and drains
//! outgoing frames and socket events. This keeps it usable from any
//! simulation model and keeps all timing under the owner's control.
//!
//! Features: ARP resolution, UDP sockets, TCP with connection setup and
//! teardown, cumulative ACKs, retransmission (RTO and fast retransmit),
//! receive-window flow control, delayed ACKs, and two congestion-control
//! algorithms — Reno and DCTCP (ECN-based, with the α estimator from the
//! DCTCP paper), the latter being what the Fig. 1 experiment sweeps the
//! switch marking threshold K against.

pub mod gro;
pub mod socket;
pub mod stack;
pub mod tcp;
pub mod udp;

pub use gro::{coalesce as gro_coalesce, GroResult};
pub use socket::{SocketAddr, SocketEvent, SocketId};
pub use stack::{NetStack, StackConfig, StackStats};
pub use tcp::{CongestionControl, TcpState};

#[cfg(test)]
mod harness_tests {
    //! Whole-stack tests: two stacks connected by an in-test "wire" that can
    //! delay, reorder, drop, or ECN-mark frames.

    use super::*;
    use simbricks_base::{PktBuf, SimTime};
    use simbricks_proto::{Ecn, Ipv4Addr, Ipv4Header, MacAddr, ParsedFrame, ParsedL4};
    use std::collections::VecDeque;

    /// A simple two-endpoint harness with a configurable one-way delay and a
    /// per-direction queue, driving both stacks in virtual time.
    pub(crate) struct Wire {
        pub a: NetStack,
        pub b: NetStack,
        delay: SimTime,
        /// frames in flight: (deliver_time, to_a, frame)
        inflight: VecDeque<(SimTime, bool, PktBuf)>,
        pub now: SimTime,
        /// Mark CE on frames larger than this (simulates a marking queue).
        pub mark_above_bytes: Option<usize>,
        /// Drop every n-th data frame (for loss/retransmit tests).
        pub drop_every: Option<u64>,
        sent_frames: u64,
    }

    impl Wire {
        pub fn new(cc: CongestionControl) -> Self {
            let a_cfg = StackConfig {
                ip: Ipv4Addr::new(10, 0, 0, 1),
                mac: MacAddr::from_index(1),
                congestion: cc,
                ..StackConfig::default()
            };
            let b_cfg = StackConfig {
                ip: Ipv4Addr::new(10, 0, 0, 2),
                mac: MacAddr::from_index(2),
                congestion: cc,
                ..StackConfig::default()
            };
            Wire {
                a: NetStack::new(a_cfg),
                b: NetStack::new(b_cfg),
                delay: SimTime::from_us(5),
                inflight: VecDeque::new(),
                now: SimTime::ZERO,
                mark_above_bytes: None,
                drop_every: None,
                sent_frames: 0,
            }
        }

        fn pump_out(&mut self) {
            let delay = self.delay;
            let mut staged: Vec<(bool, PktBuf)> = Vec::new();
            while let Some(f) = self.a.poll_transmit() {
                staged.push((false, f));
            }
            while let Some(f) = self.b.poll_transmit() {
                staged.push((true, f));
            }
            for (to_a, mut f) in staged {
                self.sent_frames += 1;
                if let Some(n) = self.drop_every {
                    if self.sent_frames % n == 0 && f.len() > 200 {
                        continue; // drop a data frame
                    }
                }
                if let Some(limit) = self.mark_above_bytes {
                    if f.len() > limit {
                        // Mark CE like a congested ECN queue would.
                        Ipv4Header::set_ecn_in_place(f.make_mut(), 14, Ecn::Ce);
                    }
                }
                self.inflight.push_back((self.now + delay, to_a, f));
            }
        }

        /// Advance virtual time by `dt`, delivering frames and firing timers.
        pub fn run_for(&mut self, dt: SimTime) {
            let end = self.now + dt;
            loop {
                self.pump_out();
                // next event: earliest in-flight delivery or stack timer
                let mut next = end;
                if let Some((t, _, _)) = self.inflight.front() {
                    next = next.min(*t);
                }
                if let Some(t) = self.a.poll_timeout() {
                    next = next.min(t);
                }
                if let Some(t) = self.b.poll_timeout() {
                    next = next.min(t);
                }
                if next > end || (next == end && self.now == end) {
                    self.now = end;
                    break;
                }
                self.now = next.max(self.now);
                // deliveries due now (queue is time-sorted by construction)
                loop {
                    let due = matches!(self.inflight.front(), Some((t, _, _)) if *t <= self.now);
                    if !due {
                        break;
                    }
                    let (_, to_a, f) = self.inflight.pop_front().unwrap();
                    if to_a {
                        self.a.handle_frame(self.now, &f);
                    } else {
                        self.b.handle_frame(self.now, &f);
                    }
                }
                self.a.on_timer(self.now);
                self.b.on_timer(self.now);
            }
            self.pump_out();
        }
    }

    #[test]
    fn tcp_connect_transfer_and_close() {
        let mut w = Wire::new(CongestionControl::Reno);
        let srv = w.b.tcp_listen(5201).unwrap();
        let cli = w.a.tcp_connect(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 2), 5201);
        w.run_for(SimTime::from_ms(5));
        let accepted: Vec<_> = w.b.poll_events();
        let acc_id = accepted
            .iter()
            .find_map(|e| match e {
                SocketEvent::Accepted { listener, socket } if *listener == srv => Some(*socket),
                _ => None,
            })
            .expect("server accepted a connection");
        assert!(w
            .a
            .poll_events()
            .iter()
            .any(|e| matches!(e, SocketEvent::Connected(id) if *id == cli)));

        // Send 100 KiB from client to server.
        let data: Vec<u8> = (0..100 * 1024u32).map(|i| (i % 251) as u8).collect();
        let mut off = 0;
        let mut received = Vec::new();
        for _ in 0..2000 {
            if off < data.len() {
                off += w.a.tcp_send(cli, &data[off..]);
            }
            w.run_for(SimTime::from_us(200));
            loop {
                let chunk = w.b.tcp_recv(acc_id, usize::MAX);
                if chunk.is_empty() {
                    break;
                }
                received.extend_from_slice(&chunk);
            }
            if received.len() == data.len() {
                break;
            }
        }
        assert_eq!(received.len(), data.len(), "all bytes delivered");
        assert_eq!(received, data, "bytes delivered in order and uncorrupted");

        w.a.tcp_close(cli);
        w.run_for(SimTime::from_ms(50));
        assert!(w
            .b
            .poll_events()
            .iter()
            .any(|e| matches!(e, SocketEvent::PeerClosed(id) if *id == acc_id)));
    }

    #[test]
    fn tcp_recovers_from_packet_loss() {
        let mut w = Wire::new(CongestionControl::Reno);
        w.drop_every = Some(13);
        let srv = w.b.tcp_listen(80).unwrap();
        let cli = w.a.tcp_connect(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 2), 80);
        w.run_for(SimTime::from_ms(5));
        let acc_id = w
            .b
            .poll_events()
            .iter()
            .find_map(|e| match e {
                SocketEvent::Accepted { listener, socket } if *listener == srv => Some(*socket),
                _ => None,
            })
            .unwrap();
        let data: Vec<u8> = (0..60 * 1024u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut off = 0;
        let mut received = Vec::new();
        for _ in 0..5000 {
            if off < data.len() {
                off += w.a.tcp_send(cli, &data[off..]);
            }
            w.run_for(SimTime::from_ms(1));
            loop {
                let chunk = w.b.tcp_recv(acc_id, usize::MAX);
                if chunk.is_empty() {
                    break;
                }
                received.extend_from_slice(&chunk);
            }
            if received.len() == data.len() {
                break;
            }
        }
        assert_eq!(received, data, "retransmissions repair every loss");
        let _ = cli;
        assert!(w.a.stats().tcp_retransmits > 0, "losses actually occurred");
    }

    #[test]
    fn dctcp_reduces_cwnd_under_ce_marks_but_reno_ignores_ece_capability() {
        // With persistent CE marking, a DCTCP sender's congestion window must
        // stay far below an unmarked run's window.
        let run = |mark: bool| -> u64 {
            let mut w = Wire::new(CongestionControl::Dctcp);
            if mark {
                w.mark_above_bytes = Some(200);
            }
            let srv = w.b.tcp_listen(9000).unwrap();
            let cli = w.a.tcp_connect(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 2), 9000);
            w.run_for(SimTime::from_ms(2));
            let acc_id = w
                .b
                .poll_events()
                .iter()
                .find_map(|e| match e {
                    SocketEvent::Accepted { listener, socket } if *listener == srv => Some(*socket),
                    _ => None,
                })
                .unwrap();
            let data = vec![0xabu8; 4096];
            for _ in 0..400 {
                let _ = w.a.tcp_send(cli, &data);
                w.run_for(SimTime::from_us(500));
                loop {
                    if w.b.tcp_recv(acc_id, usize::MAX).is_empty() {
                        break;
                    }
                }
            }
            w.a.tcp_cwnd(cli).unwrap() as u64
        };
        let marked_cwnd = run(true);
        let clean_cwnd = run(false);
        assert!(
            marked_cwnd * 2 < clean_cwnd,
            "DCTCP must back off under marking (marked={marked_cwnd} clean={clean_cwnd})"
        );
    }

    #[test]
    fn udp_exchange_with_arp_resolution() {
        let mut w = Wire::new(CongestionControl::Reno);
        let sa = w.a.udp_bind(7000).unwrap();
        let sb = w.b.udp_bind(7001).unwrap();
        w.a.udp_send_to(
            SimTime::ZERO,
            sa,
            SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 7001),
            b"ping",
        );
        w.run_for(SimTime::from_ms(1));
        let (from, data) = w.b.udp_recv_from(sb).expect("datagram arrives after ARP");
        assert_eq!(data, b"ping");
        assert_eq!(from, SocketAddr::new(Ipv4Addr::new(10, 0, 0, 1), 7000));
        // Reply without further ARP traffic.
        w.b.udp_send_to(w.now, sb, from, b"pong");
        w.run_for(SimTime::from_ms(1));
        let (from_b, data_b) = w.a.udp_recv_from(sa).unwrap();
        assert_eq!(data_b, b"pong");
        assert_eq!(from_b.port, 7001);
        assert!(w.a.stats().arp_requests_sent >= 1);
        assert_eq!(w.b.stats().arp_requests_sent, 0, "reply reuses learned entry");
    }

    #[test]
    fn ecn_marked_dctcp_flow_sets_ect_on_data() {
        let mut w = Wire::new(CongestionControl::Dctcp);
        let _srv = w.b.tcp_listen(1234).unwrap();
        let cli = w.a.tcp_connect(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 2), 1234);
        w.run_for(SimTime::from_ms(2));
        let _ = w.a.tcp_send(cli, &[0u8; 3000]);
        // Inspect frames leaving stack a for ECT(0).
        let mut saw_ect_data = false;
        while let Some(f) = w.a.poll_transmit() {
            let p = ParsedFrame::parse(&f).unwrap();
            if let ParsedL4::Tcp { payload, .. } = &p.l4 {
                if !payload.is_empty() {
                    assert_eq!(p.ipv4.unwrap().ecn, Ecn::Ect0);
                    saw_ect_data = true;
                }
            }
        }
        assert!(saw_ect_data);
    }
}
