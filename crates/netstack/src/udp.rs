//! UDP socket state.

use std::collections::VecDeque;

use crate::socket::SocketAddr;

/// Maximum datagrams buffered per UDP socket before tail drop (mimics a
/// kernel socket receive buffer).
pub const UDP_RX_QUEUE_LIMIT: usize = 1024;

/// A bound UDP socket: a local port plus a receive queue.
#[derive(Debug)]
pub struct UdpSocket {
    pub local_port: u16,
    rx: VecDeque<(SocketAddr, Vec<u8>)>,
    pub dropped: u64,
}

impl UdpSocket {
    pub fn new(local_port: u16) -> Self {
        UdpSocket {
            local_port,
            rx: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Queue a received datagram; drops when the socket buffer is full.
    /// Returns true if the datagram was queued.
    pub fn deliver(&mut self, from: SocketAddr, payload: Vec<u8>) -> bool {
        if self.rx.len() >= UDP_RX_QUEUE_LIMIT {
            self.dropped += 1;
            return false;
        }
        self.rx.push_back((from, payload));
        true
    }

    /// Take the oldest queued datagram.
    pub fn recv(&mut self) -> Option<(SocketAddr, Vec<u8>)> {
        self.rx.pop_front()
    }

    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_proto::Ipv4Addr;

    fn addr(last: u8, port: u16) -> SocketAddr {
        SocketAddr::new(Ipv4Addr::new(10, 0, 0, last), port)
    }

    #[test]
    fn fifo_delivery() {
        let mut s = UdpSocket::new(7000);
        assert!(s.deliver(addr(1, 1111), vec![1]));
        assert!(s.deliver(addr(2, 2222), vec![2]));
        assert_eq!(s.pending(), 2);
        assert_eq!(s.recv().unwrap().1, vec![1]);
        assert_eq!(s.recv().unwrap().0, addr(2, 2222));
        assert!(s.recv().is_none());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut s = UdpSocket::new(9);
        for i in 0..UDP_RX_QUEUE_LIMIT + 10 {
            s.deliver(addr(1, 1), vec![i as u8]);
        }
        assert_eq!(s.pending(), UDP_RX_QUEUE_LIMIT);
        assert_eq!(s.dropped, 10);
    }
}
