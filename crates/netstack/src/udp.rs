//! UDP socket state.

use std::collections::VecDeque;

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter, Snapshot};
use simbricks_proto::Ipv4Addr;

use crate::socket::SocketAddr;

/// Maximum datagrams buffered per UDP socket before tail drop (mimics a
/// kernel socket receive buffer).
pub const UDP_RX_QUEUE_LIMIT: usize = 1024;

/// A bound UDP socket: a local port plus a receive queue.
#[derive(Debug)]
pub struct UdpSocket {
    pub local_port: u16,
    rx: VecDeque<(SocketAddr, Vec<u8>)>,
    pub dropped: u64,
}

impl UdpSocket {
    pub fn new(local_port: u16) -> Self {
        UdpSocket {
            local_port,
            rx: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Queue a received datagram; drops when the socket buffer is full.
    /// Returns true if the datagram was queued.
    pub fn deliver(&mut self, from: SocketAddr, payload: Vec<u8>) -> bool {
        if self.rx.len() >= UDP_RX_QUEUE_LIMIT {
            self.dropped += 1;
            return false;
        }
        self.rx.push_back((from, payload));
        true
    }

    /// Take the oldest queued datagram.
    pub fn recv(&mut self) -> Option<(SocketAddr, Vec<u8>)> {
        self.rx.pop_front()
    }

    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl Snapshot for UdpSocket {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.u16(self.local_port);
        w.u64(self.dropped);
        w.usize(self.rx.len());
        for (from, payload) in &self.rx {
            w.u32(from.ip.to_u32());
            w.u16(from.port);
            w.bytes(payload);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.local_port = r.u16()?;
        self.dropped = r.u64()?;
        let n = r.usize()?;
        if n > UDP_RX_QUEUE_LIMIT {
            return Err(SnapError::Corrupt(format!(
                "udp rx queue length {n} exceeds limit {UDP_RX_QUEUE_LIMIT}"
            )));
        }
        self.rx.clear();
        for _ in 0..n {
            let from = SocketAddr::new(Ipv4Addr::from_u32(r.u32()?), r.u16()?);
            let payload = r.bytes()?;
            self.rx.push_back((from, payload));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8, port: u16) -> SocketAddr {
        SocketAddr::new(Ipv4Addr::new(10, 0, 0, last), port)
    }

    #[test]
    fn fifo_delivery() {
        let mut s = UdpSocket::new(7000);
        assert!(s.deliver(addr(1, 1111), vec![1]));
        assert!(s.deliver(addr(2, 2222), vec![2]));
        assert_eq!(s.pending(), 2);
        assert_eq!(s.recv().unwrap().1, vec![1]);
        assert_eq!(s.recv().unwrap().0, addr(2, 2222));
        assert!(s.recv().is_none());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut s = UdpSocket::new(9);
        for i in 0..UDP_RX_QUEUE_LIMIT + 10 {
            s.deliver(addr(1, 1), vec![i as u8]);
        }
        assert_eq!(s.pending(), UDP_RX_QUEUE_LIMIT);
        assert_eq!(s.dropped, 10);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = UdpSocket::new(7000);
        s.deliver(addr(1, 1111), vec![1, 2, 3]);
        s.deliver(addr(2, 2222), vec![4]);
        s.dropped = 5;
        let mut w = SnapWriter::new();
        s.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        let mut back = UdpSocket::new(0);
        back.restore(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(back.local_port, 7000);
        assert_eq!(back.dropped, 5);
        assert_eq!(back.recv(), Some((addr(1, 1111), vec![1, 2, 3])));
        assert_eq!(back.recv(), Some((addr(2, 2222), vec![4])));
        assert_eq!(back.recv(), None);
    }
}
