//! Socket identifiers, addresses and events exposed by the stack to the
//! simulated operating system / applications.

use simbricks_proto::Ipv4Addr;
use std::fmt;

/// Handle to a socket owned by a [`crate::NetStack`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId(pub u64);

/// An IPv4 endpoint (address and port).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketAddr {
    pub ip: Ipv4Addr,
    pub port: u16,
}

impl SocketAddr {
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        SocketAddr { ip, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Asynchronous socket notifications, drained with
/// [`crate::NetStack::poll_events`]. The simulated OS turns these into
/// application callbacks (and charges CPU time for them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketEvent {
    /// An outgoing TCP connection completed its handshake.
    Connected(SocketId),
    /// A listener produced a new established connection.
    Accepted { listener: SocketId, socket: SocketId },
    /// New bytes (TCP) or a datagram (UDP) are available to read.
    DataAvailable(SocketId),
    /// Send-buffer space became available again.
    SendSpace(SocketId),
    /// The peer closed its sending direction (FIN received).
    PeerClosed(SocketId),
    /// The connection is fully closed / reset and the id is invalid.
    Closed(SocketId),
    /// The connection failed (reset or handshake timeout).
    ConnectFailed(SocketId),
}

impl SocketEvent {
    /// The socket this event refers to.
    pub fn socket(&self) -> SocketId {
        match self {
            SocketEvent::Connected(s)
            | SocketEvent::DataAvailable(s)
            | SocketEvent::SendSpace(s)
            | SocketEvent::PeerClosed(s)
            | SocketEvent::Closed(s)
            | SocketEvent::ConnectFailed(s) => *s,
            SocketEvent::Accepted { socket, .. } => *socket,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_addr_display() {
        let a = SocketAddr::new(Ipv4Addr::new(10, 0, 0, 3), 5201);
        assert_eq!(a.to_string(), "10.0.0.3:5201");
    }

    #[test]
    fn event_socket_accessor() {
        let s = SocketId(7);
        let l = SocketId(1);
        assert_eq!(SocketEvent::Connected(s).socket(), s);
        assert_eq!(
            SocketEvent::Accepted {
                listener: l,
                socket: s
            }
            .socket(),
            s
        );
        assert_eq!(SocketEvent::PeerClosed(s).socket(), s);
    }

    #[test]
    fn socket_addr_is_hashable_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(SocketAddr::new(Ipv4Addr::new(1, 2, 3, 4), 80), 1);
        assert_eq!(m.get(&SocketAddr::new(Ipv4Addr::new(1, 2, 3, 4), 80)), Some(&1));
    }
}
