//! The network stack facade: sockets, ARP, IP demultiplexing, frame I/O.

use std::collections::{BTreeMap, VecDeque};

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter, Snapshot};
use simbricks_base::{BufPool, PktBuf, SimTime};
use simbricks_proto::{
    ArpOp, ArpPacket, Ecn, FrameBuilder, IpProto, Ipv4Addr, MacAddr, ParsedFrame, ParsedL4,
    TcpHeader, UdpHeader,
};

use crate::socket::{SocketAddr, SocketEvent, SocketId};
use crate::tcp::{CongestionControl, ConnEvent, SegmentOut, TcpConfig, TcpConn, TcpState};
use crate::udp::UdpSocket;

/// Static configuration of one stack instance (one simulated host).
#[derive(Clone, Copy, Debug)]
pub struct StackConfig {
    pub ip: Ipv4Addr,
    pub mac: MacAddr,
    /// Interface MTU in bytes (IP + TCP headers + payload). The dctcp
    /// experiment of Fig. 1 uses 4000 B.
    pub mtu: usize,
    pub congestion: CongestionControl,
    pub rto_min: SimTime,
    /// Delay between ARP request retries.
    pub arp_retry: SimTime,
    pub tcp_tx_buf: usize,
    pub tcp_rx_buf: usize,
    /// TCP segmentation offload size (bytes of payload per super-segment
    /// handed to the NIC). Zero disables TSO; the owner enables it when the
    /// attached NIC advertises segmentation offload.
    pub tso_size: usize,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            ip: Ipv4Addr::new(10, 0, 0, 1),
            mac: MacAddr::from_index(1),
            mtu: 1500,
            congestion: CongestionControl::Reno,
            rto_min: SimTime::from_ms(1),
            arp_retry: SimTime::from_ms(1),
            tcp_tx_buf: 256 * 1024,
            tcp_rx_buf: 64 * 1024,
            tso_size: 0,
        }
    }
}

/// Aggregate counters for reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackStats {
    pub frames_sent: u64,
    pub frames_received: u64,
    pub arp_requests_sent: u64,
    pub arp_replies_sent: u64,
    pub tcp_retransmits: u64,
    pub tcp_segments_sent: u64,
    pub tcp_bytes_received: u64,
    pub udp_datagrams_sent: u64,
    pub udp_datagrams_received: u64,
    pub checksum_failures: u64,
}

enum Sock {
    TcpListener { _port: u16 },
    Tcp(Box<TcpConn>),
    Udp(UdpSocket),
}

/// A simulated host network stack (sans-I/O).
pub struct NetStack {
    // snap-skip: construction-time config; restore runs on an identically configured stack
    cfg: StackConfig,
    now: SimTime,
    // All stack tables are ordered maps: iteration (timer fan-out, stats
    // aggregation, snapshot encoding) observes sockets and ARP state in key
    // order structurally, so hash-map iteration order can never decide the
    // order in which same-deadline connections emit segments — the exact
    // divergence class a distributed worker or a checkpoint/restore cycle
    // would otherwise expose.
    sockets: BTreeMap<SocketId, Sock>,
    /// Established / pending TCP connections indexed by
    /// (local port, remote ip, remote port).
    tcp_index: BTreeMap<(u16, Ipv4Addr, u16), SocketId>,
    listeners: BTreeMap<u16, SocketId>,
    udp_ports: BTreeMap<u16, SocketId>,
    next_id: u64,
    next_ephemeral: u16,
    arp: BTreeMap<Ipv4Addr, MacAddr>,
    arp_pending: BTreeMap<Ipv4Addr, Vec<(IpProto, Ecn, Vec<u8>)>>,
    arp_last_request: BTreeMap<Ipv4Addr, SimTime>,
    /// Outgoing frames, built in place inside pooled buffers.
    out: VecDeque<PktBuf>,
    events: VecDeque<SocketEvent>,
    stats: StackStats,
    /// Passively opened connections whose handshake has not completed yet,
    /// mapped to their listener (to emit `Accepted` instead of `Connected`).
    pending_accept: BTreeMap<SocketId, SocketId>,
    /// When true, incoming TCP/UDP checksums are assumed to have been
    /// verified by NIC receive checksum offload.
    pub rx_checksum_offload: bool,
    /// Packet-buffer arena all transmit frames are built in.
    // snap-skip: transient buffer arena; contents are never observable across steps
    pool: BufPool,
}

impl NetStack {
    pub fn new(cfg: StackConfig) -> Self {
        NetStack {
            cfg,
            now: SimTime::ZERO,
            sockets: BTreeMap::new(),
            tcp_index: BTreeMap::new(),
            listeners: BTreeMap::new(),
            udp_ports: BTreeMap::new(),
            next_id: 1,
            next_ephemeral: 49152,
            arp: BTreeMap::new(),
            arp_pending: BTreeMap::new(),
            arp_last_request: BTreeMap::new(),
            out: VecDeque::new(),
            events: VecDeque::new(),
            stats: StackStats::default(),
            pending_accept: BTreeMap::new(),
            rx_checksum_offload: false,
            pool: BufPool::new(),
        }
    }

    /// The stack's packet-buffer arena (shared with the owning host model so
    /// pool counters aggregate per host).
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Rebase the stack onto an external buffer pool (e.g. the owning
    /// kernel's per-component arena).
    pub fn set_pool(&mut self, pool: BufPool) {
        self.pool = pool;
    }

    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    pub fn ip(&self) -> Ipv4Addr {
        self.cfg.ip
    }

    pub fn mac(&self) -> MacAddr {
        self.cfg.mac
    }

    /// Install a static ARP entry (used by configurations that skip ARP).
    pub fn add_arp_entry(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp.insert(ip, mac);
    }

    pub fn stats(&self) -> StackStats {
        let mut s = self.stats;
        for sock in self.sockets.values() {
            if let Sock::Tcp(c) = sock {
                s.tcp_retransmits += c.retransmits;
                s.tcp_segments_sent += c.segs_sent;
                s.tcp_bytes_received += c.bytes_received;
            }
        }
        s
    }

    fn tcp_config(&self) -> TcpConfig {
        TcpConfig {
            mss: self.cfg.mtu.saturating_sub(40).max(100),
            congestion: self.cfg.congestion,
            tx_buf: self.cfg.tcp_tx_buf,
            rx_buf: self.cfg.tcp_rx_buf,
            rto_min: self.cfg.rto_min,
            tso_size: self.cfg.tso_size,
            ..TcpConfig::default()
        }
    }

    fn alloc_id(&mut self) -> SocketId {
        let id = SocketId(self.next_id);
        self.next_id += 1;
        id
    }

    // ------------------------------------------------------------------
    // Socket API
    // ------------------------------------------------------------------

    /// Listen for TCP connections on `port`.
    pub fn tcp_listen(&mut self, port: u16) -> Option<SocketId> {
        if self.listeners.contains_key(&port) {
            return None;
        }
        let id = self.alloc_id();
        self.sockets.insert(id, Sock::TcpListener { _port: port });
        self.listeners.insert(port, id);
        Some(id)
    }

    /// Open a TCP connection to `remote_ip:remote_port`.
    pub fn tcp_connect(&mut self, now: SimTime, remote_ip: Ipv4Addr, remote_port: u16) -> SocketId {
        self.now = self.now.max(now);
        let local_port = self.alloc_ephemeral();
        let id = self.alloc_id();
        let local = SocketAddr::new(self.cfg.ip, local_port);
        let remote = SocketAddr::new(remote_ip, remote_port);
        let (conn, syn) = TcpConn::connect(self.now, local, remote, self.tcp_config());
        self.tcp_index
            .insert((local_port, remote_ip, remote_port), id);
        self.sockets.insert(id, Sock::Tcp(Box::new(conn)));
        self.emit_tcp_segment(remote_ip, &syn);
        id
    }

    /// Queue data on a TCP socket; returns the number of bytes accepted.
    pub fn tcp_send(&mut self, id: SocketId, data: &[u8]) -> usize {
        let now = self.now;
        let (n, segs, remote_ip) = match self.sockets.get_mut(&id) {
            Some(Sock::Tcp(c)) => {
                let n = c.send(data);
                let mut segs = Vec::new();
                c.poll_output(now, &mut segs);
                (n, segs, c.remote.ip)
            }
            _ => return 0,
        };
        for s in segs {
            self.emit_tcp_segment(remote_ip, &s);
        }
        n
    }

    /// Read up to `max` bytes from a TCP socket.
    pub fn tcp_recv(&mut self, id: SocketId, max: usize) -> Vec<u8> {
        let (data, update, remote_ip) = match self.sockets.get_mut(&id) {
            Some(Sock::Tcp(c)) => {
                let before = c.readable();
                let data = c.recv(max);
                // Reading frees receive-buffer space: advertise it so a
                // window-limited sender can continue (window update).
                let update = if !data.is_empty() && before >= data.len() {
                    Some(c.window_update())
                } else {
                    None
                };
                (data, update, c.remote.ip)
            }
            _ => return Vec::new(),
        };
        if let Some(seg) = update {
            self.emit_tcp_segment(remote_ip, &seg);
        }
        data
    }

    /// Bytes currently readable on a TCP socket.
    pub fn tcp_readable(&self, id: SocketId) -> usize {
        match self.sockets.get(&id) {
            Some(Sock::Tcp(c)) => c.readable(),
            _ => 0,
        }
    }

    /// Free space in the socket's send buffer.
    pub fn tcp_send_space(&self, id: SocketId) -> usize {
        match self.sockets.get(&id) {
            Some(Sock::Tcp(c)) => c.send_space(),
            _ => 0,
        }
    }

    /// Current congestion window (bytes), for instrumentation.
    pub fn tcp_cwnd(&self, id: SocketId) -> Option<u64> {
        match self.sockets.get(&id) {
            Some(Sock::Tcp(c)) => Some(c.cwnd()),
            _ => None,
        }
    }

    pub fn tcp_state(&self, id: SocketId) -> Option<TcpState> {
        match self.sockets.get(&id) {
            Some(Sock::Tcp(c)) => Some(c.state),
            _ => None,
        }
    }

    /// Gracefully close a TCP socket (FIN after pending data).
    pub fn tcp_close(&mut self, id: SocketId) {
        let now = self.now;
        let (segs, remote_ip) = match self.sockets.get_mut(&id) {
            Some(Sock::Tcp(c)) => {
                c.close();
                let mut segs = Vec::new();
                c.poll_output(now, &mut segs);
                (segs, c.remote.ip)
            }
            _ => return,
        };
        for s in segs {
            self.emit_tcp_segment(remote_ip, &s);
        }
    }

    /// Bind a UDP socket to `port`.
    pub fn udp_bind(&mut self, port: u16) -> Option<SocketId> {
        if self.udp_ports.contains_key(&port) {
            return None;
        }
        let id = self.alloc_id();
        self.sockets.insert(id, Sock::Udp(UdpSocket::new(port)));
        self.udp_ports.insert(port, id);
        Some(id)
    }

    /// Send a UDP datagram.
    pub fn udp_send_to(&mut self, now: SimTime, id: SocketId, to: SocketAddr, payload: &[u8]) {
        self.now = self.now.max(now);
        let src_port = match self.sockets.get(&id) {
            Some(Sock::Udp(u)) => u.local_port,
            _ => return,
        };
        self.stats.udp_datagrams_sent += 1;
        if let Some(mac) = self.resolved_mac(to.ip) {
            // Fast path: build the whole frame in place in a pooled buffer.
            let frame = FrameBuilder::udp_pooled(
                &self.pool, self.cfg.mac, mac, self.cfg.ip, to.ip, Ecn::NotEct,
                src_port, to.port, payload,
            );
            self.out.push_back(frame);
        } else {
            let l4 = UdpHeader::new(src_port, to.port, payload.len())
                .build_datagram(self.cfg.ip, to.ip, payload);
            self.queue_unresolved(to.ip, IpProto::Udp, Ecn::NotEct, l4);
        }
    }

    /// Receive one UDP datagram, if any.
    pub fn udp_recv_from(&mut self, id: SocketId) -> Option<(SocketAddr, Vec<u8>)> {
        match self.sockets.get_mut(&id) {
            Some(Sock::Udp(u)) => u.recv(),
            _ => None,
        }
    }

    /// Datagrams waiting on a UDP socket.
    pub fn udp_pending(&self, id: SocketId) -> usize {
        match self.sockets.get(&id) {
            Some(Sock::Udp(u)) => u.pending(),
            _ => 0,
        }
    }

    /// Drain pending socket events.
    pub fn poll_events(&mut self) -> Vec<SocketEvent> {
        self.events.drain(..).collect()
    }

    // ------------------------------------------------------------------
    // Frame I/O (owner-driven)
    // ------------------------------------------------------------------

    /// Next outgoing Ethernet frame, if any (a pooled buffer; hand it on by
    /// move or refcount bump).
    pub fn poll_transmit(&mut self) -> Option<PktBuf> {
        let f = self.out.pop_front();
        if f.is_some() {
            self.stats.frames_sent += 1;
        }
        f
    }

    /// Whether outgoing frames are queued.
    pub fn has_transmit(&self) -> bool {
        !self.out.is_empty()
    }

    /// Earliest time `on_timer` must be called next.
    pub fn poll_timeout(&self) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        for s in self.sockets.values() {
            if let Sock::Tcp(c) = s {
                if let Some(d) = c.next_deadline() {
                    min = Some(min.map_or(d, |m: SimTime| m.min(d)));
                }
            }
        }
        min
    }

    /// Fire expired TCP timers (retransmissions, delayed ACKs).
    pub fn on_timer(&mut self, now: SimTime) {
        self.now = self.now.max(now);
        let now = self.now;
        // Ascending id order straight off the ordered socket table: the
        // order in which same-deadline connections emit segments is fixed by
        // construction — it must never diverge across processes (distributed
        // workers) or across checkpoint/restore. (The collect is still
        // needed: firing timers mutates `sockets`.)
        let ids: Vec<SocketId> = self.sockets.keys().copied().collect();
        for id in ids {
            let (segs, events, remote_ip) = match self.sockets.get_mut(&id) {
                Some(Sock::Tcp(c)) => {
                    if c.next_deadline().is_none_or(|d| d > now) {
                        continue;
                    }
                    let mut segs = Vec::new();
                    let mut ev = Vec::new();
                    c.on_timer(now, &mut segs, &mut ev);
                    (segs, ev, c.remote.ip)
                }
                _ => continue,
            };
            for s in segs {
                self.emit_tcp_segment(remote_ip, &s);
            }
            for e in events {
                self.push_conn_event(id, e);
            }
        }
    }

    /// Process one received Ethernet frame.
    pub fn handle_frame(&mut self, now: SimTime, frame: &[u8]) {
        self.now = self.now.max(now);
        self.stats.frames_received += 1;
        let parsed = match ParsedFrame::parse(frame) {
            Ok(p) => p,
            Err(_) => return,
        };
        // Frames not addressed to us (possible with flooding switches) are
        // dropped, except broadcasts.
        if parsed.eth.dst != self.cfg.mac && !parsed.eth.dst.is_broadcast() {
            return;
        }
        match parsed.l4 {
            ParsedL4::Arp(arp) => self.handle_arp(&arp),
            ParsedL4::Tcp { header, payload } => {
                if !parsed.checksums_ok && !self.rx_checksum_offload {
                    self.stats.checksum_failures += 1;
                    return;
                }
                let ip = parsed.ipv4.expect("TCP implies IPv4");
                if ip.dst != self.cfg.ip {
                    return;
                }
                self.handle_tcp(ip.src, ip.ecn, header, &payload);
            }
            ParsedL4::Udp { header, payload } => {
                if !parsed.checksums_ok && !self.rx_checksum_offload {
                    self.stats.checksum_failures += 1;
                    return;
                }
                let ip = parsed.ipv4.expect("UDP implies IPv4");
                if ip.dst != self.cfg.ip && !ip.dst.is_broadcast() {
                    return;
                }
                self.stats.udp_datagrams_received += 1;
                if let Some(&sid) = self.udp_ports.get(&header.dst_port) {
                    if let Some(Sock::Udp(u)) = self.sockets.get_mut(&sid) {
                        let from = SocketAddr::new(ip.src, header.src_port);
                        if u.deliver(from, payload) {
                            self.events.push_back(SocketEvent::DataAvailable(sid));
                        }
                    }
                }
            }
            ParsedL4::Other(_) => {}
        }
    }

    // ------------------------------------------------------------------
    // Internal handlers
    // ------------------------------------------------------------------

    fn handle_arp(&mut self, arp: &ArpPacket) {
        // Learn the sender mapping in all cases.
        self.arp.insert(arp.sender_ip, arp.sender_mac);
        self.flush_arp_pending(arp.sender_ip);
        if arp.op == ArpOp::Request && arp.target_ip == self.cfg.ip {
            let reply = arp.reply_to(self.cfg.mac, self.cfg.ip);
            let frame = FrameBuilder::arp_pooled(&self.pool, self.cfg.mac, arp.sender_mac, &reply);
            self.stats.arp_replies_sent += 1;
            self.out.push_back(frame);
        }
    }

    fn handle_tcp(&mut self, src_ip: Ipv4Addr, ecn: Ecn, hdr: TcpHeader, payload: &[u8]) {
        let key = (hdr.dst_port, src_ip, hdr.src_port);
        let id = match self.tcp_index.get(&key) {
            Some(id) => *id,
            None => {
                // New connection? Only SYNs to a listening port are accepted.
                if hdr.flags.contains(simbricks_proto::TcpFlags::SYN)
                    && !hdr.flags.contains(simbricks_proto::TcpFlags::ACK)
                {
                    if let Some(&listener) = self.listeners.get(&hdr.dst_port) {
                        let id = self.alloc_id();
                        let local = SocketAddr::new(self.cfg.ip, hdr.dst_port);
                        let remote = SocketAddr::new(src_ip, hdr.src_port);
                        let (conn, synack) =
                            TcpConn::accept(self.now, local, remote, self.tcp_config(), &hdr);
                        self.tcp_index.insert(key, id);
                        self.sockets.insert(id, Sock::Tcp(Box::new(conn)));
                        self.emit_tcp_segment(src_ip, &synack);
                        // The Accepted event is only surfaced once the
                        // handshake completes (see push_conn_event).
                        self.pending_accept.insert(id, listener);
                    }
                }
                return;
            }
        };
        let now = self.now;
        let (segs, events, remote_ip) = match self.sockets.get_mut(&id) {
            Some(Sock::Tcp(c)) => {
                let mut segs = Vec::new();
                let mut ev = Vec::new();
                c.on_segment(now, ecn, &hdr, payload, &mut segs, &mut ev);
                (segs, ev, c.remote.ip)
            }
            _ => return,
        };
        for s in segs {
            self.emit_tcp_segment(remote_ip, &s);
        }
        for e in events {
            self.push_conn_event(id, e);
        }
    }

    fn push_conn_event(&mut self, id: SocketId, e: ConnEvent) {
        let ev = match e {
            ConnEvent::Connected => {
                if let Some(listener) = self.pending_accept.remove(&id) {
                    SocketEvent::Accepted {
                        listener,
                        socket: id,
                    }
                } else {
                    SocketEvent::Connected(id)
                }
            }
            ConnEvent::DataAvailable => SocketEvent::DataAvailable(id),
            ConnEvent::SendSpace => SocketEvent::SendSpace(id),
            ConnEvent::PeerClosed => SocketEvent::PeerClosed(id),
            ConnEvent::Closed => SocketEvent::Closed(id),
            ConnEvent::ConnectFailed => SocketEvent::ConnectFailed(id),
        };
        self.events.push_back(ev);
    }

    fn emit_tcp_segment(&mut self, remote_ip: Ipv4Addr, seg: &SegmentOut) {
        if let Some(mac) = self.resolved_mac(remote_ip) {
            // Fast path: headers and payload go straight into one pooled
            // buffer — no intermediate L4 vector, no frame reallocation.
            let frame = FrameBuilder::tcp_pooled(
                &self.pool, self.cfg.mac, mac, self.cfg.ip, remote_ip, seg.ecn,
                &seg.hdr, &seg.payload,
            );
            self.out.push_back(frame);
        } else {
            let l4 = seg.hdr.build_segment(self.cfg.ip, remote_ip, &seg.payload);
            self.queue_unresolved(remote_ip, IpProto::Tcp, seg.ecn, l4);
        }
    }

    /// Destination MAC when no ARP resolution is needed (broadcast or cached).
    fn resolved_mac(&self, dst: Ipv4Addr) -> Option<MacAddr> {
        if dst.is_broadcast() {
            Some(MacAddr::BROADCAST)
        } else {
            self.arp.get(&dst).copied()
        }
    }

    fn send_ip(&mut self, dst: Ipv4Addr, proto: IpProto, ecn: Ecn, l4: Vec<u8>) {
        match self.resolved_mac(dst) {
            Some(mac) => {
                let frame = FrameBuilder::ipv4_pooled(
                    &self.pool, self.cfg.mac, mac, self.cfg.ip, dst, proto, ecn, &l4,
                );
                self.out.push_back(frame);
            }
            None => self.queue_unresolved(dst, proto, ecn, l4),
        }
    }

    /// Park an L4 payload until ARP resolves `dst`, emitting a (rate-limited)
    /// ARP request.
    fn queue_unresolved(&mut self, dst: Ipv4Addr, proto: IpProto, ecn: Ecn, l4: Vec<u8>) {
        self.arp_pending
            .entry(dst)
            .or_default()
            .push((proto, ecn, l4));
        let due = match self.arp_last_request.get(&dst) {
            Some(last) => self.now >= *last + self.cfg.arp_retry,
            None => true,
        };
        if due {
            let req = ArpPacket::request(self.cfg.mac, self.cfg.ip, dst);
            let frame = FrameBuilder::arp_pooled(&self.pool, self.cfg.mac, MacAddr::BROADCAST, &req);
            self.out.push_back(frame);
            self.stats.arp_requests_sent += 1;
            self.arp_last_request.insert(dst, self.now);
        }
    }

    fn flush_arp_pending(&mut self, ip: Ipv4Addr) {
        if let Some(pending) = self.arp_pending.remove(&ip) {
            for (proto, ecn, l4) in pending {
                self.send_ip(ip, proto, ecn, l4);
            }
        }
    }

    fn snapshot_event(ev: &SocketEvent, w: &mut SnapWriter) {
        match ev {
            SocketEvent::Connected(s) => {
                w.u8(0);
                w.u64(s.0);
            }
            SocketEvent::Accepted { listener, socket } => {
                w.u8(1);
                w.u64(listener.0);
                w.u64(socket.0);
            }
            SocketEvent::DataAvailable(s) => {
                w.u8(2);
                w.u64(s.0);
            }
            SocketEvent::SendSpace(s) => {
                w.u8(3);
                w.u64(s.0);
            }
            SocketEvent::PeerClosed(s) => {
                w.u8(4);
                w.u64(s.0);
            }
            SocketEvent::Closed(s) => {
                w.u8(5);
                w.u64(s.0);
            }
            SocketEvent::ConnectFailed(s) => {
                w.u8(6);
                w.u64(s.0);
            }
        }
    }

    fn restore_event(r: &mut SnapReader) -> SnapResult<SocketEvent> {
        Ok(match r.u8()? {
            0 => SocketEvent::Connected(SocketId(r.u64()?)),
            1 => SocketEvent::Accepted {
                listener: SocketId(r.u64()?),
                socket: SocketId(r.u64()?),
            },
            2 => SocketEvent::DataAvailable(SocketId(r.u64()?)),
            3 => SocketEvent::SendSpace(SocketId(r.u64()?)),
            4 => SocketEvent::PeerClosed(SocketId(r.u64()?)),
            5 => SocketEvent::Closed(SocketId(r.u64()?)),
            6 => SocketEvent::ConnectFailed(SocketId(r.u64()?)),
            v => return Err(SnapError::Corrupt(format!("bad socket event tag {v}"))),
        })
    }

    fn alloc_ephemeral(&mut self) -> u16 {
        for _ in 0..16384 {
            let p = self.next_ephemeral;
            self.next_ephemeral = if self.next_ephemeral == u16::MAX {
                49152
            } else {
                self.next_ephemeral + 1
            };
            if !self.udp_ports.contains_key(&p) && !self.listeners.contains_key(&p) {
                return p;
            }
        }
        49152
    }
}

impl Snapshot for NetStack {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.time(self.now);
        w.u64(self.next_id);
        w.u16(self.next_ephemeral);
        w.bool(self.rx_checksum_offload);
        for v in [
            self.stats.frames_sent,
            self.stats.frames_received,
            self.stats.arp_requests_sent,
            self.stats.arp_replies_sent,
            self.stats.tcp_retransmits,
            self.stats.tcp_segments_sent,
            self.stats.tcp_bytes_received,
            self.stats.udp_datagrams_sent,
            self.stats.udp_datagrams_received,
            self.stats.checksum_failures,
        ] {
            w.u64(v);
        }

        // Sockets in id order (canonical — the ordered map guarantees it).
        w.usize(self.sockets.len());
        for (id, sock) in &self.sockets {
            w.u64(id.0);
            match sock {
                Sock::TcpListener { _port } => {
                    w.u8(0);
                    w.u16(*_port);
                }
                Sock::Tcp(c) => {
                    w.u8(1);
                    c.snapshot(w)?;
                }
                Sock::Udp(u) => {
                    w.u8(2);
                    u.snapshot(w)?;
                }
            }
        }

        // The remaining tables encode in ascending key order directly off
        // their ordered maps. `Ipv4Addr`'s derived `Ord` (big-endian byte
        // order) matches the `to_u32` order the previous sorted encoding
        // used, so the bytes are identical.
        w.usize(self.pending_accept.len());
        for (s, l) in &self.pending_accept {
            w.u64(s.0);
            w.u64(l.0);
        }

        w.usize(self.arp.len());
        for (ip, mac) in &self.arp {
            w.u32(ip.to_u32());
            w.raw(mac.as_bytes());
        }

        w.usize(self.arp_pending.len());
        for (ip, queued) in &self.arp_pending {
            w.u32(ip.to_u32());
            w.usize(queued.len());
            for (proto, ecn, l4) in queued {
                w.u8(proto.to_u8());
                w.u8(ecn.to_bits());
                w.bytes(l4);
            }
        }

        w.usize(self.arp_last_request.len());
        for (ip, t) in &self.arp_last_request {
            w.u32(ip.to_u32());
            w.time(*t);
        }

        w.usize(self.out.len());
        for frame in &self.out {
            w.bytes(frame);
        }
        w.usize(self.events.len());
        for ev in &self.events {
            Self::snapshot_event(ev, w);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.now = r.time()?;
        self.next_id = r.u64()?;
        self.next_ephemeral = r.u16()?;
        self.rx_checksum_offload = r.bool()?;
        self.stats = StackStats {
            frames_sent: r.u64()?,
            frames_received: r.u64()?,
            arp_requests_sent: r.u64()?,
            arp_replies_sent: r.u64()?,
            tcp_retransmits: r.u64()?,
            tcp_segments_sent: r.u64()?,
            tcp_bytes_received: r.u64()?,
            udp_datagrams_sent: r.u64()?,
            udp_datagrams_received: r.u64()?,
            checksum_failures: r.u64()?,
        };

        self.sockets.clear();
        self.tcp_index.clear();
        self.listeners.clear();
        self.udp_ports.clear();
        let n = r.usize()?;
        if n > 1 << 24 {
            return Err(SnapError::Corrupt(format!("absurd socket count {n}")));
        }
        for _ in 0..n {
            let id = SocketId(r.u64()?);
            match r.u8()? {
                0 => {
                    let port = r.u16()?;
                    self.sockets.insert(id, Sock::TcpListener { _port: port });
                    self.listeners.insert(port, id);
                }
                1 => {
                    let conn = TcpConn::restore(r)?;
                    self.tcp_index
                        .insert((conn.local.port, conn.remote.ip, conn.remote.port), id);
                    self.sockets.insert(id, Sock::Tcp(Box::new(conn)));
                }
                2 => {
                    let mut u = UdpSocket::new(0);
                    u.restore(r)?;
                    self.udp_ports.insert(u.local_port, id);
                    self.sockets.insert(id, Sock::Udp(u));
                }
                v => return Err(SnapError::Corrupt(format!("bad socket kind tag {v}"))),
            }
        }

        self.pending_accept.clear();
        for _ in 0..r.usize()? {
            let s = SocketId(r.u64()?);
            let l = SocketId(r.u64()?);
            self.pending_accept.insert(s, l);
        }

        self.arp.clear();
        for _ in 0..r.usize()? {
            let ip = Ipv4Addr::from_u32(r.u32()?);
            let mac = MacAddr::from_slice(r.take(6)?)
                .ok_or_else(|| SnapError::Corrupt("mac address".into()))?;
            self.arp.insert(ip, mac);
        }

        self.arp_pending.clear();
        for _ in 0..r.usize()? {
            let ip = Ipv4Addr::from_u32(r.u32()?);
            let mut queued = Vec::new();
            for _ in 0..r.usize()? {
                let proto = IpProto::from_u8(r.u8()?);
                let ecn = Ecn::from_bits(r.u8()?);
                let l4 = r.bytes()?;
                queued.push((proto, ecn, l4));
            }
            self.arp_pending.insert(ip, queued);
        }

        self.arp_last_request.clear();
        for _ in 0..r.usize()? {
            let ip = Ipv4Addr::from_u32(r.u32()?);
            let t = r.time()?;
            self.arp_last_request.insert(ip, t);
        }

        self.out.clear();
        for _ in 0..r.usize()? {
            self.out.push_back(PktBuf::from_vec(r.bytes()?));
        }
        self.events.clear();
        for _ in 0..r.usize()? {
            self.events.push_back(Self::restore_event(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(last: u8, idx: u64) -> StackConfig {
        StackConfig {
            ip: Ipv4Addr::new(10, 0, 0, last),
            mac: MacAddr::from_index(idx),
            ..StackConfig::default()
        }
    }

    #[test]
    fn arp_request_and_reply() {
        let mut a = NetStack::new(cfg(1, 1));
        let mut b = NetStack::new(cfg(2, 2));
        let sa = a.udp_bind(100).unwrap();
        let _sb = b.udp_bind(200).unwrap();
        a.udp_send_to(
            SimTime::ZERO,
            sa,
            SocketAddr::new(b.ip(), 200),
            b"x",
        );
        // First frame out of a is an ARP broadcast.
        let f = a.poll_transmit().unwrap();
        let p = ParsedFrame::parse(&f).unwrap();
        assert!(p.eth.dst.is_broadcast());
        assert!(matches!(p.l4, ParsedL4::Arp(_)));
        // b answers, a learns and releases the datagram.
        b.handle_frame(SimTime::from_us(1), &f);
        let reply = b.poll_transmit().unwrap();
        a.handle_frame(SimTime::from_us(2), &reply);
        let data_frame = a.poll_transmit().expect("pending datagram flushed");
        let p2 = ParsedFrame::parse(&data_frame).unwrap();
        assert!(matches!(p2.l4, ParsedL4::Udp { .. }));
        assert_eq!(p2.eth.dst, MacAddr::from_index(2));
    }

    #[test]
    fn static_arp_skips_resolution() {
        let mut a = NetStack::new(cfg(1, 1));
        a.add_arp_entry(Ipv4Addr::new(10, 0, 0, 2), MacAddr::from_index(2));
        let sa = a.udp_bind(100).unwrap();
        a.udp_send_to(
            SimTime::ZERO,
            sa,
            SocketAddr::new(Ipv4Addr::new(10, 0, 0, 2), 200),
            b"direct",
        );
        let f = a.poll_transmit().unwrap();
        let p = ParsedFrame::parse(&f).unwrap();
        assert!(matches!(p.l4, ParsedL4::Udp { .. }));
        assert_eq!(a.stats().arp_requests_sent, 0);
    }

    #[test]
    fn udp_port_demux_and_unknown_port_dropped() {
        let mut a = NetStack::new(cfg(1, 1));
        let mut b = NetStack::new(cfg(2, 2));
        a.add_arp_entry(b.ip(), b.mac());
        b.add_arp_entry(a.ip(), a.mac());
        let sa = a.udp_bind(1000).unwrap();
        let sb1 = b.udp_bind(2001).unwrap();
        let sb2 = b.udp_bind(2002).unwrap();
        a.udp_send_to(SimTime::ZERO, sa, SocketAddr::new(b.ip(), 2002), b"two");
        a.udp_send_to(SimTime::ZERO, sa, SocketAddr::new(b.ip(), 2999), b"none");
        while let Some(f) = a.poll_transmit() {
            b.handle_frame(SimTime::from_us(1), &f);
        }
        assert_eq!(b.udp_pending(sb1), 0);
        assert_eq!(b.udp_pending(sb2), 1);
        let (_, data) = b.udp_recv_from(sb2).unwrap();
        assert_eq!(data, b"two");
    }

    #[test]
    fn duplicate_binds_rejected() {
        let mut a = NetStack::new(cfg(1, 1));
        assert!(a.udp_bind(53).is_some());
        assert!(a.udp_bind(53).is_none());
        assert!(a.tcp_listen(80).is_some());
        assert!(a.tcp_listen(80).is_none());
    }

    #[test]
    fn frames_for_other_macs_ignored() {
        let mut a = NetStack::new(cfg(1, 1));
        let mut b = NetStack::new(cfg(2, 2));
        a.add_arp_entry(b.ip(), MacAddr::from_index(99)); // wrong MAC on purpose
        let sa = a.udp_bind(1).unwrap();
        let _sb = b.udp_bind(2).unwrap();
        a.udp_send_to(SimTime::ZERO, sa, SocketAddr::new(b.ip(), 2), b"stray");
        let f = a.poll_transmit().unwrap();
        b.handle_frame(SimTime::from_us(1), &f);
        assert_eq!(b.stats().udp_datagrams_received, 0);
    }

    /// Snapshot a stack mid-handshake (pending connection, queued frames,
    /// learned ARP entries, undrained events) and restore it into a freshly
    /// built stack: the restored stack completes the connection exactly.
    #[test]
    fn snapshot_roundtrip_mid_connection() {
        let mut a = NetStack::new(cfg(1, 1));
        let mut b = NetStack::new(cfg(2, 2));
        a.add_arp_entry(b.ip(), b.mac());
        b.add_arp_entry(a.ip(), a.mac());
        b.tcp_listen(80);
        let c = a.tcp_connect(SimTime::from_us(1), b.ip(), 80);
        // Deliver the SYN to b (b now has a SynReceived conn + SYN-ACK out),
        // but leave the SYN-ACK in flight inside b's out queue.
        while let Some(f) = a.poll_transmit() {
            b.handle_frame(SimTime::from_us(2), &f);
        }
        let snap = |s: &NetStack| {
            let mut w = SnapWriter::new();
            s.snapshot(&mut w).unwrap();
            w.into_vec()
        };
        let (ba, bb) = (snap(&a), snap(&b));
        let mut a2 = NetStack::new(cfg(1, 1));
        let mut b2 = NetStack::new(cfg(2, 2));
        a2.restore(&mut SnapReader::new(&ba)).unwrap();
        b2.restore(&mut SnapReader::new(&bb)).unwrap();
        assert_eq!(a2.tcp_state(c), Some(TcpState::SynSent));
        // Finish the handshake on the restored pair.
        for _ in 0..4 {
            while let Some(f) = b2.poll_transmit() {
                a2.handle_frame(SimTime::from_us(3), &f);
            }
            while let Some(f) = a2.poll_transmit() {
                b2.handle_frame(SimTime::from_us(3), &f);
            }
        }
        assert_eq!(a2.tcp_state(c), Some(TcpState::Established));
        let evs = a2.poll_events();
        assert!(evs.contains(&SocketEvent::Connected(c)));
        let evs_b = b2.poll_events();
        assert!(
            evs_b.iter().any(|e| matches!(e, SocketEvent::Accepted { .. })),
            "restored pending_accept still maps the passive open to its listener"
        );
        // Data flows on the restored connection.
        a2.tcp_send(c, b"hello");
        while let Some(f) = a2.poll_transmit() {
            b2.handle_frame(SimTime::from_us(4), &f);
        }
        let sb = *b2.tcp_index.values().next().unwrap();
        assert_eq!(b2.tcp_recv(sb, usize::MAX), b"hello");
    }

    #[test]
    fn snapshot_restore_rejects_truncation() {
        let mut a = NetStack::new(cfg(1, 1));
        a.udp_bind(9);
        let mut w = SnapWriter::new();
        a.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        let mut fresh = NetStack::new(cfg(1, 1));
        for cut in [1usize, buf.len() / 2, buf.len() - 1] {
            assert!(fresh.restore(&mut SnapReader::new(&buf[..cut])).is_err());
        }
    }

    /// Determinism regression: when several connections hit the same
    /// retransmission deadline, the segments they emit must leave the stack
    /// in ascending socket-id order. Under the pre-fix `HashMap` socket
    /// table (iterating in hash order, as `on_timer` did before PR 4's
    /// hand-fix and structurally since this fix), the retransmitted SYNs
    /// interleave in per-instance hash order and this test fails — the
    /// event-log divergence the sharded/distributed bit-identity matrix
    /// would only catch after the fact.
    #[test]
    fn same_deadline_timers_fire_in_socket_id_order() {
        let mut a = NetStack::new(cfg(1, 1));
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        a.add_arp_entry(dst, MacAddr::from_index(2));
        // 16 connections opened at the same instant: same RTO deadline.
        for i in 0..16u16 {
            a.tcp_connect(SimTime::from_us(1), dst, 5000 + i);
        }
        // Drain the initial SYNs (they are emitted in call order regardless).
        let mut initial = Vec::new();
        while let Some(f) = a.poll_transmit() {
            initial.push(src_port_of(&f));
        }
        assert_eq!(initial.len(), 16);
        // Fire every expired retransmission timer in one call.
        a.on_timer(SimTime::from_ms(200));
        let mut retx = Vec::new();
        while let Some(f) = a.poll_transmit() {
            retx.push(src_port_of(&f));
        }
        assert_eq!(retx.len(), 16, "every connection retransmitted its SYN");
        assert_eq!(
            retx, initial,
            "retransmissions leave in socket-id order, not hash order"
        );
        let mut sorted = retx.clone();
        sorted.sort_unstable();
        assert_eq!(retx, sorted, "socket-id order is ascending ephemeral port order");
    }

    fn src_port_of(frame: &[u8]) -> u16 {
        match ParsedFrame::parse(frame).unwrap().l4 {
            ParsedL4::Tcp { header, .. } => header.src_port,
            other => panic!("expected TCP, got {other:?}"),
        }
    }

    #[test]
    fn tcp_syn_to_closed_port_is_ignored() {
        let mut a = NetStack::new(cfg(1, 1));
        let mut b = NetStack::new(cfg(2, 2));
        a.add_arp_entry(b.ip(), b.mac());
        b.add_arp_entry(a.ip(), a.mac());
        let _c = a.tcp_connect(SimTime::ZERO, b.ip(), 9999);
        while let Some(f) = a.poll_transmit() {
            b.handle_frame(SimTime::from_us(1), &f);
        }
        // No listener: b produces no SYN-ACK.
        assert!(b.poll_transmit().is_none());
    }
}
