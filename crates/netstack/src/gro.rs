//! Generic receive offload (GRO).
//!
//! Linux coalesces back-to-back TCP segments of the same flow into one large
//! segment inside the NAPI poll loop, before they enter the protocol stack.
//! This amortizes per-segment stack and socket costs over many wire packets
//! and is one of the two offloads (with TSO) that let a single core sustain
//! close to line rate — which is why the paper's gem5 host reaches ~9 Gbps
//! netperf throughput (Tab. 1/3). The simulated hosts run this coalescing
//! pass over each received batch; the host model charges per-wire-frame
//! driver costs but only per-coalesced-segment stack costs.

use simbricks_base::{BufPool, PktBuf};
use simbricks_proto::{
    tcp_payload_range, Ecn, EthHeader, FrameBuilder, Ipv4Header, ParsedFrame, ParsedL4,
    TcpHeader, TcpFlags,
};

/// Upper bound on the coalesced payload (same as Linux: 64 KiB minus room
/// for headers, and at most `MAX_SEGS` wire segments).
pub const GRO_MAX_PAYLOAD: usize = 64 * 1024 - 256;
/// Maximum number of wire segments merged into one super-segment.
pub const GRO_MAX_SEGS: usize = 44;

/// Result of a GRO pass.
#[derive(Clone, Debug, Default)]
pub struct GroResult {
    /// Frames to hand to the protocol stack (coalesced where possible, other
    /// traffic passed through unchanged, original relative order preserved).
    pub frames: Vec<PktBuf>,
    /// Number of wire frames that entered the pass.
    pub wire_frames: usize,
    /// Number of wire frames that were merged into a predecessor (i.e.
    /// `wire_frames - frames.len()` when nothing was dropped).
    pub merged: usize,
}

/// A batch being built: header state from the first segment plus a *chain*
/// of zero-copy payload views into the original wire buffers. Nothing is
/// copied while segments join the batch; the chain is flattened exactly once
/// (into one pooled frame) when the batch flushes.
struct Pending {
    /// The first wire frame, unmodified (flushed as-is for 1-segment
    /// batches: the overwhelmingly common case at low rate costs nothing).
    first: PktBuf,
    eth: EthHeader,
    ip: Ipv4Header,
    tcp: TcpHeader,
    /// Zero-copy payload views, in arrival order (refcount bumps on the
    /// received buffers, no byte copies).
    chain: Vec<PktBuf>,
    payload_len: usize,
    segs: usize,
}

impl Pending {
    fn new(raw: PktBuf, range: (usize, usize), eth: EthHeader, ip: Ipv4Header, tcp: TcpHeader) -> Pending {
        let view = raw.slice(range.0, range.1);
        Pending {
            eth,
            ip,
            tcp,
            payload_len: view.len(),
            chain: vec![view],
            first: raw,
            segs: 1,
        }
    }

    fn flush(self, pool: &BufPool, out: &mut Vec<PktBuf>) {
        if self.segs == 1 {
            // Nothing merged: pass the original wire buffer through (move,
            // zero copies, no rebuild).
            out.push(self.first);
            return;
        }
        let chunks: Vec<&[u8]> = self.chain.iter().map(|c| c.as_slice()).collect();
        out.push(FrameBuilder::tcp_chain_pooled(
            pool,
            self.eth.src,
            self.eth.dst,
            self.ip.src,
            self.ip.dst,
            self.ip.ecn,
            &self.tcp,
            &chunks,
        ));
    }
}

/// Whether a parsed TCP frame is eligible to start or join a GRO batch:
/// plain data segments only (no SYN/FIN/RST/URG), since control segments must
/// reach the stack unmodified.
fn mergeable(frame: &ParsedFrame) -> bool {
    match &frame.l4 {
        ParsedL4::Tcp { header, payload } => {
            !payload.is_empty()
                && !header.flags.contains(TcpFlags::SYN)
                && !header.flags.contains(TcpFlags::FIN)
                && !header.flags.contains(TcpFlags::RST)
                && frame.ipv4.is_some()
        }
        _ => false,
    }
}

/// Whether `new` equals `old` or is ahead of it in wrapping u32 ACK space.
fn ack_ge(new: u32, old: u32) -> bool {
    (new.wrapping_sub(old) as i32) >= 0
}

/// Whether `next` directly continues `held` (same flow, contiguous sequence
/// number, same ECN codepoint so DCTCP mark accounting is preserved exactly).
/// The ACK may stay put or advance — data trains whose segments each carry a
/// fresher cumulative ACK are the common case on a bidirectional flow, and
/// Linux GRO coalesces them — but an ACK that moves *backwards* breaks the
/// batch (stale information must not overwrite fresher state).
fn continues(held: &Pending, held_payload_len: usize, next: &ParsedFrame) -> bool {
    let (h_hdr, h_ip) = (&held.tcp, &held.ip);
    let (n_hdr, n_payload, n_ip) = match (&next.l4, &next.ipv4) {
        (ParsedL4::Tcp { header, payload }, Some(ip)) => (header, payload, ip),
        _ => return false,
    };
    h_ip.src == n_ip.src
        && h_ip.dst == n_ip.dst
        && h_hdr.src_port == n_hdr.src_port
        && h_hdr.dst_port == n_hdr.dst_port
        && h_ip.ecn == n_ip.ecn
        && n_hdr.seq == h_hdr.seq.wrapping_add(held_payload_len as u32)
        && ack_ge(n_hdr.ack, h_hdr.ack)
        && held_payload_len + n_payload.len() <= GRO_MAX_PAYLOAD
        && held.segs < GRO_MAX_SEGS
}

/// Run one GRO pass over a batch of received wire frames.
///
/// Consecutive in-order TCP data segments of the same flow with identical ECN
/// marking are merged into one frame — by *chaining* zero-copy payload views
/// and flattening once at flush (checksums are regenerated there); everything
/// else — ARP, UDP, out-of-order data, control segments, frames that fail to
/// parse — is passed through unmodified (and uncopied) in its original
/// position. Merged frames are built in `pool`.
pub fn coalesce(pool: &BufPool, wire: Vec<PktBuf>) -> GroResult {
    let mut result = GroResult {
        wire_frames: wire.len(),
        ..Default::default()
    };
    let mut held: Option<Pending> = None;

    for raw in wire {
        // A frame joins a batch only if it parses as a mergeable TCP data
        // segment AND its payload byte range can be located for zero-copy
        // slicing; anything else passes through unmodified (and uncopied).
        let (parsed, range) = match (ParsedFrame::parse(&raw), tcp_payload_range(&raw)) {
            (Ok(p), Some(r)) if mergeable(&p) => (p, r),
            _ => {
                if let Some(p) = held.take() {
                    p.flush(pool, &mut result.frames);
                }
                result.frames.push(raw);
                continue;
            }
        };
        match held.take() {
            Some(mut p) if continues(&p, p.payload_len, &parsed) => {
                let (start, end) = range;
                p.payload_len += end - start;
                p.chain.push(raw.slice(start, end));
                p.segs += 1;
                result.merged += 1;
                // The coalesced segment must carry the *latest* ACK / window /
                // PSH information, as Linux GRO does.
                if let ParsedL4::Tcp { header: n, .. } = &parsed.l4 {
                    p.tcp.ack = n.ack;
                    p.tcp.window = n.window;
                    p.tcp.flags = TcpFlags(p.tcp.flags.0 | n.flags.0);
                }
                held = Some(p);
            }
            prev => {
                if let Some(p) = prev {
                    p.flush(pool, &mut result.frames);
                }
                // `mergeable` guarantees an IPv4/TCP frame; a frame that
                // still fails to destructure passes through unmodified.
                match (&parsed.l4, parsed.ipv4) {
                    (ParsedL4::Tcp { header, .. }, Some(ip)) => {
                        held = Some(Pending::new(raw, range, parsed.eth, ip, *header));
                    }
                    _ => result.frames.push(raw),
                }
            }
        }
    }
    if let Some(p) = held.take() {
        p.flush(pool, &mut result.frames);
    }
    result
}

/// ECN codepoint of a raw frame (used by tests and by switch models that need
/// to check marking without a full parse).
pub fn frame_ecn(raw: &[u8]) -> Option<Ecn> {
    ParsedFrame::parse(raw).ok()?.ipv4.map(|ip| ip.ecn)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helper: run a pass over plain byte-vector frames.
    fn coalesce_vecs(frames: Vec<Vec<u8>>) -> GroResult {
        let pool = BufPool::new();
        coalesce(&pool, frames.into_iter().map(PktBuf::from_vec).collect())
    }
    use simbricks_proto::{Ipv4Addr, MacAddr, TcpHeader};

    fn data_frame(seq: u32, payload: &[u8], ecn: Ecn, flags: TcpFlags) -> Vec<u8> {
        let hdr = TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq,
            ack: 777,
            flags,
            window: 1000,
            mss: None, wscale: None,
        };
        FrameBuilder::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            ecn,
            &hdr,
            payload,
        )
    }

    fn payload_of(frame: &[u8]) -> Vec<u8> {
        match ParsedFrame::parse(frame).unwrap().l4 {
            ParsedL4::Tcp { payload, .. } => payload,
            _ => panic!("not tcp"),
        }
    }

    #[test]
    fn contiguous_segments_merge_into_one() {
        let frames = vec![
            data_frame(100, &[1u8; 500], Ecn::Ect0, TcpFlags::ACK),
            data_frame(600, &[2u8; 500], Ecn::Ect0, TcpFlags::ACK),
            data_frame(1100, &[3u8; 500], Ecn::Ect0, TcpFlags::ACK | TcpFlags::PSH),
        ];
        let r = coalesce_vecs(frames);
        assert_eq!(r.wire_frames, 3);
        assert_eq!(r.merged, 2);
        assert_eq!(r.frames.len(), 1);
        let p = payload_of(&r.frames[0]);
        assert_eq!(p.len(), 1500);
        assert_eq!(&p[..500], &[1u8; 500]);
        assert_eq!(&p[1000..], &[3u8; 500]);
        // PSH from the last segment is preserved; checksums verify.
        let parsed = ParsedFrame::parse(&r.frames[0]).unwrap();
        assert!(parsed.checksums_ok);
        match parsed.l4 {
            ParsedL4::Tcp { header, .. } => assert!(header.flags.contains(TcpFlags::PSH)),
            _ => panic!(),
        }
    }

    fn data_frame_ack(seq: u32, ack: u32, payload: &[u8]) -> Vec<u8> {
        let hdr = TcpHeader {
            src_port: 4000,
            dst_port: 80,
            seq,
            ack,
            flags: TcpFlags::ACK,
            window: 1000,
            mss: None, wscale: None,
        };
        FrameBuilder::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::Ect0,
            &hdr,
            payload,
        )
    }

    /// Regression test: a data train whose segments each carry a fresher
    /// cumulative ACK (the normal shape of bidirectional traffic) must still
    /// coalesce, and the merged header must carry the *latest* ACK — as the
    /// comment in `coalesce` always claimed but the code did not do.
    #[test]
    fn advancing_acks_merge_and_carry_the_latest_ack() {
        let frames = vec![
            data_frame_ack(100, 7000, &[1u8; 500]),
            data_frame_ack(600, 8000, &[2u8; 500]),
            data_frame_ack(1100, 9000, &[3u8; 500]),
        ];
        let r = coalesce_vecs(frames);
        assert_eq!(r.wire_frames, 3);
        assert_eq!(r.merged, 2, "ACK-advancing train coalesces");
        assert_eq!(r.frames.len(), 1);
        let parsed = ParsedFrame::parse(&r.frames[0]).unwrap();
        assert!(parsed.checksums_ok, "regenerated checksums verify");
        match parsed.l4 {
            ParsedL4::Tcp { header, payload } => {
                assert_eq!(header.ack, 9000, "merged segment carries the latest ACK");
                assert_eq!(payload.len(), 1500);
            }
            _ => panic!("not tcp"),
        }

        // An ACK moving backwards (stale duplicate) must break the batch.
        let frames = vec![
            data_frame_ack(100, 7000, &[1u8; 500]),
            data_frame_ack(600, 6999, &[2u8; 500]),
        ];
        let r = coalesce_vecs(frames);
        assert_eq!(r.merged, 0, "regressing ACK never merges");
        assert_eq!(r.frames.len(), 2);

        // ACK advance across the u32 wrap still counts as advancing.
        let frames = vec![
            data_frame_ack(100, u32::MAX - 10, &[1u8; 100]),
            data_frame_ack(200, 5, &[2u8; 100]),
        ];
        let r = coalesce_vecs(frames);
        assert_eq!(r.merged, 1, "wrapping ACK advance merges");
        match ParsedFrame::parse(&r.frames[0]).unwrap().l4 {
            ParsedL4::Tcp { header, .. } => assert_eq!(header.ack, 5),
            _ => panic!("not tcp"),
        }
    }

    #[test]
    fn gap_in_sequence_space_breaks_the_batch() {
        let frames = vec![
            data_frame(100, &[1u8; 500], Ecn::Ect0, TcpFlags::ACK),
            data_frame(1100, &[2u8; 500], Ecn::Ect0, TcpFlags::ACK), // hole at 600
        ];
        let r = coalesce_vecs(frames);
        assert_eq!(r.frames.len(), 2);
        assert_eq!(r.merged, 0);
    }

    #[test]
    fn differing_ecn_marks_are_never_merged() {
        // A CE-marked segment between unmarked ones must remain distinct, or
        // DCTCP's marked-byte accounting would be distorted.
        let frames = vec![
            data_frame(100, &[1u8; 500], Ecn::Ect0, TcpFlags::ACK),
            data_frame(600, &[2u8; 500], Ecn::Ce, TcpFlags::ACK),
            data_frame(1100, &[3u8; 500], Ecn::Ce, TcpFlags::ACK),
        ];
        let r = coalesce_vecs(frames);
        assert_eq!(r.frames.len(), 2, "unmarked | marked+marked");
        assert_eq!(r.merged, 1);
        assert_eq!(frame_ecn(&r.frames[0]), Some(Ecn::Ect0));
        assert_eq!(frame_ecn(&r.frames[1]), Some(Ecn::Ce));
        assert_eq!(payload_of(&r.frames[1]).len(), 1000);
    }

    #[test]
    fn control_segments_and_other_traffic_pass_through() {
        let syn = data_frame(50, &[9u8; 10], Ecn::NotEct, TcpFlags::SYN | TcpFlags::ACK);
        let pure_ack = data_frame(100, &[], Ecn::NotEct, TcpFlags::ACK);
        let fin = data_frame(100, &[4u8; 20], Ecn::NotEct, TcpFlags::FIN | TcpFlags::ACK);
        let junk = vec![0u8; 30];
        let frames = vec![syn.clone(), pure_ack.clone(), fin.clone(), junk.clone()];
        let r = coalesce_vecs(frames);
        assert_eq!(r.frames, vec![syn, pure_ack, fin, junk]);
        assert_eq!(r.merged, 0);
    }

    #[test]
    fn interleaved_flows_do_not_merge_across_each_other() {
        let a1 = data_frame(100, &[1u8; 100], Ecn::NotEct, TcpFlags::ACK);
        // Different destination port => different flow.
        let mut other_hdr = TcpHeader {
            src_port: 4000,
            dst_port: 81,
            seq: 200,
            ack: 1,
            flags: TcpFlags::ACK,
            window: 500,
            mss: None, wscale: None,
        };
        other_hdr.flags = TcpFlags::ACK;
        let b1 = FrameBuilder::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::NotEct,
            &other_hdr,
            &[2u8; 100],
        );
        let a2 = data_frame(200, &[3u8; 100], Ecn::NotEct, TcpFlags::ACK);
        let r = coalesce_vecs(vec![a1, b1, a2]);
        // The interleaving flushes flow A, so nothing merges.
        assert_eq!(r.frames.len(), 3);
        assert_eq!(r.merged, 0);
    }

    #[test]
    fn merge_respects_segment_count_cap() {
        let mut frames = Vec::new();
        for i in 0..(GRO_MAX_SEGS + 5) as u32 {
            frames.push(data_frame(
                100 + i * 100,
                &[i as u8; 100],
                Ecn::Ect0,
                TcpFlags::ACK,
            ));
        }
        let r = coalesce_vecs(frames);
        assert_eq!(r.wire_frames, GRO_MAX_SEGS + 5);
        assert_eq!(r.frames.len(), 2, "one full batch plus the remainder");
        assert_eq!(payload_of(&r.frames[0]).len(), GRO_MAX_SEGS * 100);
        assert_eq!(payload_of(&r.frames[1]).len(), 5 * 100);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let r = coalesce_vecs(Vec::new());
        assert!(r.frames.is_empty());
        assert_eq!(r.wire_frames, 0);
        assert_eq!(r.merged, 0);
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn stream_payload(frame: &[u8]) -> Option<(Ecn, Vec<u8>)> {
            let p = ParsedFrame::parse(frame).ok()?;
            let ecn = p.ipv4?.ecn;
            match p.l4 {
                ParsedL4::Tcp { payload, .. } => Some((ecn, payload)),
                _ => None,
            }
        }

        proptest! {
            /// GRO never loses, duplicates, or reorders stream bytes, never
            /// mixes ECN codepoints within one coalesced segment, and never
            /// produces more frames than it consumed.
            #[test]
            fn coalescing_preserves_the_byte_stream(
                chunks in proptest::collection::vec((1usize..1400, any::<bool>()), 1..40)
            ) {
                // Build one contiguous TCP stream: chunk i carries `len`
                // bytes of a recognisable pattern and is CE-marked when the
                // bool is set (as a congested switch would).
                let mut seq = 5000u32;
                let mut wire = Vec::new();
                let mut expected: Vec<u8> = Vec::new();
                for (i, (len, marked)) in chunks.iter().enumerate() {
                    let payload: Vec<u8> = (0..*len).map(|b| ((b + i * 31) % 251) as u8).collect();
                    expected.extend_from_slice(&payload);
                    let ecn = if *marked { Ecn::Ce } else { Ecn::Ect0 };
                    wire.push(data_frame(seq, &payload, ecn, TcpFlags::ACK));
                    seq = seq.wrapping_add(*len as u32);
                }
                let marked_bytes: usize = chunks.iter().filter(|(_, m)| *m).map(|(l, _)| *l).sum();

                let r = coalesce_vecs(wire);
                prop_assert_eq!(r.wire_frames, chunks.len());
                prop_assert!(r.frames.len() <= chunks.len());
                prop_assert_eq!(r.merged, chunks.len() - r.frames.len());

                let mut reassembled = Vec::new();
                let mut marked_out = 0usize;
                for f in &r.frames {
                    let (ecn, payload) = stream_payload(f).expect("coalesced frames stay valid TCP");
                    if ecn == Ecn::Ce {
                        marked_out += payload.len();
                    }
                    prop_assert!(payload.len() <= GRO_MAX_PAYLOAD);
                    reassembled.extend_from_slice(&payload);
                    // Checksums of rebuilt frames must verify.
                    prop_assert!(ParsedFrame::parse(f).unwrap().checksums_ok);
                }
                prop_assert_eq!(reassembled, expected);
                prop_assert_eq!(marked_out, marked_bytes, "CE-marked bytes are never transferred to unmarked segments");
            }
        }
    }
}
