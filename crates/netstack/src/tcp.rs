//! Simulated TCP with Reno and DCTCP congestion control.
//!
//! This is the transport the simulated hosts' "guest software" uses for the
//! iperf / netperf / memcached workloads of the paper's evaluation. It
//! implements connection setup and teardown, cumulative acknowledgements,
//! out-of-order reassembly, retransmission (RTO and fast retransmit),
//! receive-window flow control, delayed ACKs, and two congestion controllers:
//!
//! * **Reno** — slow start, congestion avoidance, fast retransmit/recovery.
//! * **DCTCP** — senders mark data packets ECT(0), switches mark CE above the
//!   queue threshold K, receivers echo the marks (ECE), and the sender keeps
//!   the EWMA `α` of the marked-byte fraction, shrinking `cwnd` by `α/2` once
//!   per window (Alizadeh et al., SIGCOMM 2010). This is what the Fig. 1
//!   marking-threshold sweep exercises.
//!
//! The implementation is deliberately event-driven and allocation-light, but
//! favours clarity over micro-optimization: the simulation spends its time in
//! the host and NIC models, not here.

use std::collections::{BTreeMap, VecDeque};

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simbricks_base::SimTime;
use simbricks_proto::{Ecn, TcpFlags, TcpHeader};

use crate::socket::SocketAddr;

/// Congestion-control algorithm for a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestionControl {
    Reno,
    Dctcp,
}

/// TCP connection states (TIME_WAIT is skipped: the simulation controls both
/// endpoints, so reincarnation hazards cannot occur).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closing,
    Closed,
}

/// Per-connection configuration.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    pub mss: usize,
    pub congestion: CongestionControl,
    pub tx_buf: usize,
    pub rx_buf: usize,
    pub rto_min: SimTime,
    pub rto_initial: SimTime,
    pub delayed_ack: SimTime,
    /// DCTCP EWMA gain g.
    pub dctcp_g: f64,
    /// Receive-window scale shift advertised in our SYN (RFC 7323). Without
    /// it the 16-bit window field caps inflight data at 64 KiB, window-
    /// limiting any high-bandwidth-delay-product path. Scaling is only used
    /// when both ends advertise it (both simulated ends share this default,
    /// so it is negotiated symmetrically); zero disables the option.
    pub window_scale: u8,
    /// TCP segmentation offload: when larger than `mss`, the connection emits
    /// super-segments up to this payload size and relies on the NIC to cut
    /// them into MSS-sized wire segments. Zero (or <= mss) disables TSO. The
    /// advertised MSS and all congestion-window accounting stay in wire-MSS
    /// units.
    pub tso_size: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            congestion: CongestionControl::Reno,
            tx_buf: 256 * 1024,
            rx_buf: 64 * 1024,
            rto_min: SimTime::from_ms(1),
            rto_initial: SimTime::from_ms(20),
            delayed_ack: SimTime::from_us(500),
            dctcp_g: 1.0 / 16.0,
            window_scale: 7,
            tso_size: 0,
        }
    }
}

/// A segment the connection wants transmitted, still address-agnostic; the
/// stack wraps it into IPv4 + Ethernet.
#[derive(Clone, Debug)]
pub struct SegmentOut {
    pub hdr: TcpHeader,
    pub payload: Vec<u8>,
    pub ecn: Ecn,
}

/// Connection-level notifications for the stack to translate into socket
/// events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnEvent {
    Connected,
    DataAvailable,
    SendSpace,
    PeerClosed,
    Closed,
    ConnectFailed,
}

#[inline]
fn seq_le(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) <= 0
}
#[inline]
fn seq_gt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}
#[inline]
fn seq_ge(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) >= 0
}

/// One TCP connection.
#[derive(Debug)]
pub struct TcpConn {
    pub state: TcpState,
    pub local: SocketAddr,
    pub remote: SocketAddr,
    cfg: TcpConfig,

    // Send side. `tx_buf` holds bytes starting at sequence `snd_una`; the
    // first `snd_nxt - snd_una` of them are in flight.
    snd_una: u32,
    snd_nxt: u32,
    snd_wnd: u32,
    tx_buf: VecDeque<u8>,
    fin_queued: bool,
    fin_sent: bool,
    fin_seq: u32,

    // Receive side.
    rcv_nxt: u32,
    rx_buf: VecDeque<u8>,
    ooo: BTreeMap<u32, Vec<u8>>,
    ooo_bytes: usize,
    peer_fin: Option<u32>,

    // Window scaling (RFC 7323): shift applied to window fields *received
    // from* the peer (the peer's advertised scale) and to window fields we
    // advertise (our scale). Both stay 0 unless negotiated at SYN time.
    snd_wscale: u8,
    rcv_wscale: u8,

    // Congestion control.
    cwnd: u64,
    ssthresh: u64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u32,

    // DCTCP state.
    alpha: f64,
    win_bytes_acked: u64,
    win_bytes_marked: u64,
    win_end: u32,
    ce_to_echo: bool,

    // RTT estimation / retransmission timer (RFC 6298, integer
    // picoseconds: float smoothing would make the RTO — virtual time —
    // depend on platform/optimization-sensitive rounding).
    srtt_ps: u64,
    rttvar_ps: u64,
    rto: SimTime,
    rto_backoff: u32,
    rto_deadline: Option<SimTime>,
    rtt_probe: Option<(u32, SimTime)>,

    // Delayed ACK.
    ack_pending: u32,
    delack_deadline: Option<SimTime>,

    /// Counters (exposed for experiment reporting).
    pub retransmits: u64,
    pub segs_sent: u64,
    pub segs_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub ce_marks_seen: u64,
}

impl TcpConn {
    fn base(local: SocketAddr, remote: SocketAddr, cfg: TcpConfig, state: TcpState) -> Self {
        // Deterministic initial sequence number from the four-tuple so reruns
        // are bit-identical (§7.6).
        let iss = {
            let mut h: u32 = 0x9e3779b9;
            for b in local
                .ip
                .as_bytes()
                .iter()
                .chain(remote.ip.as_bytes().iter())
            {
                h = h.wrapping_mul(31).wrapping_add(*b as u32);
            }
            h = h.wrapping_mul(31).wrapping_add(local.port as u32);
            h.wrapping_mul(31).wrapping_add(remote.port as u32)
        };
        let cwnd = (10 * cfg.mss) as u64;
        TcpConn {
            state,
            local,
            remote,
            cfg,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 65535,
            tx_buf: VecDeque::new(),
            fin_queued: false,
            fin_sent: false,
            fin_seq: 0,
            rcv_nxt: 0,
            rx_buf: VecDeque::new(),
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            peer_fin: None,
            snd_wscale: 0,
            rcv_wscale: 0,
            cwnd,
            ssthresh: u64::MAX / 4,
            dup_acks: 0,
            in_recovery: false,
            recover: iss,
            alpha: 0.0,
            win_bytes_acked: 0,
            win_bytes_marked: 0,
            win_end: iss,
            ce_to_echo: false,
            srtt_ps: 0,
            rttvar_ps: 0,
            rto: cfg.rto_initial,
            rto_backoff: 1,
            rto_deadline: None,
            rtt_probe: None,
            ack_pending: 0,
            delack_deadline: None,
            retransmits: 0,
            segs_sent: 0,
            segs_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
            ce_marks_seen: 0,
        }
    }

    /// Create an active-open connection; returns the connection and the SYN
    /// to transmit.
    pub fn connect(
        now: SimTime,
        local: SocketAddr,
        remote: SocketAddr,
        cfg: TcpConfig,
    ) -> (Self, SegmentOut) {
        let mut c = Self::base(local, remote, cfg, TcpState::SynSent);
        let syn = c.make_segment(TcpFlags::SYN, c.snd_nxt, Vec::new(), true);
        c.snd_nxt = c.snd_nxt.wrapping_add(1);
        c.arm_rto(now);
        (c, syn)
    }

    /// Create a passive connection from a received SYN; returns the
    /// connection and the SYN-ACK to transmit.
    pub fn accept(
        now: SimTime,
        local: SocketAddr,
        remote: SocketAddr,
        mut cfg: TcpConfig,
        syn: &TcpHeader,
    ) -> (Self, SegmentOut) {
        if let Some(mss) = syn.mss {
            cfg.mss = cfg.mss.min(mss as usize);
        }
        let mut c = Self::base(local, remote, cfg, TcpState::SynReceived);
        c.rcv_nxt = syn.seq.wrapping_add(1);
        // SYN windows are never scaled (RFC 7323 §2.2).
        c.snd_wnd = syn.window as u32;
        if let Some(ws) = syn.wscale {
            if cfg.window_scale > 0 {
                c.snd_wscale = ws.min(14);
                c.rcv_wscale = cfg.window_scale.min(14);
            }
        }
        let mut synack = c.make_segment(TcpFlags::SYN | TcpFlags::ACK, c.snd_nxt, Vec::new(), true);
        if syn.wscale.is_none() {
            // Only offer scaling back when the active opener offered it.
            synack.hdr.wscale = None;
        }
        synack.hdr.ack = c.rcv_nxt;
        c.snd_nxt = c.snd_nxt.wrapping_add(1);
        c.arm_rto(now);
        (c, synack)
    }

    // ------------------------------------------------------------------
    // Socket-facing operations
    // ------------------------------------------------------------------

    /// Buffer application data for sending; returns how many bytes fit.
    pub fn send(&mut self, data: &[u8]) -> usize {
        if matches!(
            self.state,
            TcpState::Closed | TcpState::FinWait1 | TcpState::FinWait2 | TcpState::LastAck
        ) || self.fin_queued
        {
            return 0;
        }
        let room = self.cfg.tx_buf.saturating_sub(self.tx_buf.len());
        let n = room.min(data.len());
        self.tx_buf.extend(&data[..n]);
        n
    }

    /// Read up to `max` received bytes.
    pub fn recv(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.rx_buf.len());
        self.rx_buf.drain(..n).collect()
    }

    /// Bytes currently readable.
    pub fn readable(&self) -> usize {
        self.rx_buf.len()
    }

    /// Free space in the send buffer.
    pub fn send_space(&self) -> usize {
        self.cfg.tx_buf.saturating_sub(self.tx_buf.len())
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Current DCTCP α estimate.
    pub fn dctcp_alpha(&self) -> f64 {
        self.alpha
    }

    /// Request a graceful close: a FIN is sent once buffered data drains.
    pub fn close(&mut self) {
        if !self.fin_queued && self.state != TcpState::Closed {
            self.fin_queued = true;
        }
    }

    /// Hard-close the connection state (after reset or final ACK).
    pub fn abort(&mut self) {
        self.state = TcpState::Closed;
        self.tx_buf.clear();
        self.rto_deadline = None;
        self.delack_deadline = None;
    }

    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    // ------------------------------------------------------------------
    // Segment input
    // ------------------------------------------------------------------

    /// Process a received segment. Any segments to transmit are pushed to
    /// `out`; connection events are pushed to `events`.
    pub fn on_segment(
        &mut self,
        now: SimTime,
        ecn: Ecn,
        hdr: &TcpHeader,
        payload: &[u8],
        out: &mut Vec<SegmentOut>,
        events: &mut Vec<ConnEvent>,
    ) {
        self.segs_received += 1;
        if hdr.flags.contains(TcpFlags::RST) {
            let was_connecting =
                matches!(self.state, TcpState::SynSent | TcpState::SynReceived);
            self.abort();
            events.push(if was_connecting {
                ConnEvent::ConnectFailed
            } else {
                ConnEvent::Closed
            });
            return;
        }

        if ecn == Ecn::Ce {
            self.ce_marks_seen += 1;
            self.ce_to_echo = true;
        }
        // Window fields of non-SYN segments carry the peer's scale shift once
        // negotiated; SYN/SYN-ACK windows are always unscaled (RFC 7323).
        self.snd_wnd = if hdr.flags.contains(TcpFlags::SYN) {
            hdr.window as u32
        } else {
            (hdr.window as u32) << self.snd_wscale
        };

        match self.state {
            TcpState::SynSent => {
                if hdr.flags.contains(TcpFlags::SYN) && hdr.flags.contains(TcpFlags::ACK) {
                    if let Some(mss) = hdr.mss {
                        self.cfg.mss = self.cfg.mss.min(mss as usize);
                        self.cwnd = self.cwnd.max((10 * self.cfg.mss) as u64);
                    }
                    if let Some(ws) = hdr.wscale {
                        if self.cfg.window_scale > 0 {
                            self.snd_wscale = ws.min(14);
                            self.rcv_wscale = self.cfg.window_scale.min(14);
                        }
                    }
                    self.rcv_nxt = hdr.seq.wrapping_add(1);
                    self.snd_una = hdr.ack;
                    self.state = TcpState::Established;
                    self.rto_deadline = None;
                    self.rto_backoff = 1;
                    events.push(ConnEvent::Connected);
                    out.push(self.make_ack());
                }
            }
            TcpState::SynReceived => {
                if hdr.flags.contains(TcpFlags::ACK) && seq_gt(hdr.ack, self.snd_una) {
                    self.snd_una = hdr.ack;
                    self.state = TcpState::Established;
                    self.rto_deadline = None;
                    self.rto_backoff = 1;
                    events.push(ConnEvent::Connected);
                }
                if !payload.is_empty() {
                    self.ingest_payload(hdr.seq, payload, out, events);
                }
            }
            TcpState::Closed => { /* drop */ }
            _ => {
                if hdr.flags.contains(TcpFlags::ACK) {
                    self.process_ack(now, hdr, payload.len(), out, events);
                }
                if !payload.is_empty() {
                    self.ingest_payload(hdr.seq, payload, out, events);
                    self.schedule_ack(now, out);
                }
                if hdr.flags.contains(TcpFlags::FIN) {
                    let fin_seq = hdr.seq.wrapping_add(payload.len() as u32);
                    self.peer_fin = Some(fin_seq);
                }
                self.try_consume_fin(events, out);
            }
        }
        self.poll_output(now, out);
    }

    fn try_consume_fin(&mut self, events: &mut Vec<ConnEvent>, out: &mut Vec<SegmentOut>) {
        if let Some(fin_seq) = self.peer_fin {
            if self.rcv_nxt == fin_seq {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.peer_fin = None;
                out.push(self.make_ack());
                match self.state {
                    TcpState::Established => {
                        self.state = TcpState::CloseWait;
                        events.push(ConnEvent::PeerClosed);
                    }
                    TcpState::FinWait1 => {
                        self.state = TcpState::Closing;
                        events.push(ConnEvent::PeerClosed);
                    }
                    TcpState::FinWait2 => {
                        self.state = TcpState::Closed;
                        events.push(ConnEvent::PeerClosed);
                        events.push(ConnEvent::Closed);
                    }
                    _ => {}
                }
            }
        }
    }

    fn ingest_payload(
        &mut self,
        seq: u32,
        payload: &[u8],
        _out: &mut [SegmentOut],
        events: &mut Vec<ConnEvent>,
    ) {
        self.bytes_received += payload.len() as u64;
        if seq_le(seq, self.rcv_nxt) {
            // In-order (possibly partially duplicate) data.
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            if skip < payload.len() {
                let fresh = &payload[skip..];
                let room = self.cfg.rx_buf.saturating_sub(self.rx_buf.len());
                let take = room.min(fresh.len());
                self.rx_buf.extend(&fresh[..take]);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
                if take > 0 {
                    events.push(ConnEvent::DataAvailable);
                }
                // Pull any now-contiguous out-of-order data.
                while let Some((&oseq, _)) = self.ooo.iter().next() {
                    if seq_gt(oseq, self.rcv_nxt) {
                        break;
                    }
                    let data = self.ooo.remove(&oseq).unwrap();
                    self.ooo_bytes -= data.len();
                    let skip = self.rcv_nxt.wrapping_sub(oseq) as usize;
                    if skip < data.len() {
                        let fresh = &data[skip..];
                        let room = self.cfg.rx_buf.saturating_sub(self.rx_buf.len());
                        let take = room.min(fresh.len());
                        self.rx_buf.extend(&fresh[..take]);
                        self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
                        if take < fresh.len() {
                            // rx_buf filled mid-drain: the stack already holds
                            // the remaining bytes, so keep them (re-keyed at
                            // the new rcv_nxt) instead of discarding them and
                            // forcing the peer to retransmit data we had.
                            let tail = fresh[take..].to_vec();
                            self.ooo_insert(self.rcv_nxt, tail);
                            break;
                        }
                    }
                }
            }
            self.ack_pending += 1;
        } else {
            // Out of order: buffer (bounded) and request a duplicate ACK.
            self.ooo_insert(seq, payload.to_vec());
            self.ack_pending += 2; // force an immediate dup-ACK
        }
    }

    /// Insert an out-of-order run at `seq`, keeping the **longer** payload
    /// when a run at the same sequence number is already buffered (a shorter
    /// duplicate never carries new bytes; a longer one always does) and
    /// enforcing the `rx_buf`-sized bound on total buffered OOO bytes.
    fn ooo_insert(&mut self, seq: u32, data: Vec<u8>) {
        let old_len = self.ooo.get(&seq).map_or(0, Vec::len);
        if data.len() <= old_len {
            return; // existing run already covers these bytes
        }
        if self.ooo_bytes - old_len + data.len() > self.cfg.rx_buf {
            return; // bounded buffer: drop, the peer will retransmit
        }
        self.ooo_bytes = self.ooo_bytes - old_len + data.len();
        self.ooo.insert(seq, data);
    }

    fn process_ack(
        &mut self,
        now: SimTime,
        hdr: &TcpHeader,
        payload_len: usize,
        out: &mut Vec<SegmentOut>,
        events: &mut Vec<ConnEvent>,
    ) {
        let ack = hdr.ack;
        if seq_gt(ack, self.snd_nxt) {
            return; // acks data we never sent
        }
        if seq_gt(ack, self.snd_una) {
            let acked = ack.wrapping_sub(self.snd_una) as u64;
            // Remove acked bytes from the transmit buffer (the FIN occupies a
            // sequence number but no buffer byte).
            let buf_acked = (acked as usize).min(self.tx_buf.len());
            self.tx_buf.drain(..buf_acked);
            self.snd_una = ack;
            self.dup_acks = 0;
            self.rto_backoff = 1;

            // RTT sample.
            if let Some((probe_seq, sent_at)) = self.rtt_probe {
                if seq_ge(ack, probe_seq) {
                    let sample = now - sent_at;
                    self.update_rtt(sample);
                    self.rtt_probe = None;
                }
            }

            // Congestion control.
            let ece = hdr.flags.contains(TcpFlags::ECE);
            self.on_bytes_acked(acked, ece);

            if self.in_recovery && seq_ge(ack, self.recover) {
                self.in_recovery = false;
                self.cwnd = self.ssthresh.max((2 * self.cfg.mss) as u64);
            }

            // FIN-related state transitions once our FIN is acknowledged.
            if self.fin_sent && seq_gt(ack, self.fin_seq) {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing | TcpState::LastAck => {
                        self.state = TcpState::Closed;
                        events.push(ConnEvent::Closed);
                    }
                    _ => {}
                }
            }

            if self.snd_una == self.snd_nxt {
                self.rto_deadline = None;
            } else {
                self.arm_rto(now);
            }
            if self.send_space() > 0 {
                events.push(ConnEvent::SendSpace);
            }
        } else if payload_len == 0
            && ack == self.snd_una
            && self.snd_una != self.snd_nxt
            && !hdr.flags.contains(TcpFlags::SYN)
            && !hdr.flags.contains(TcpFlags::FIN)
        {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                self.enter_fast_recovery(out);
            } else if self.dup_acks > 3 && self.in_recovery {
                self.cwnd += self.cfg.mss as u64;
            }
        }
    }

    fn enter_fast_recovery(&mut self, out: &mut Vec<SegmentOut>) {
        let inflight = self.snd_nxt.wrapping_sub(self.snd_una) as u64;
        self.ssthresh = (inflight / 2).max((2 * self.cfg.mss) as u64);
        self.cwnd = self.ssthresh + (3 * self.cfg.mss) as u64;
        self.in_recovery = true;
        self.recover = self.snd_nxt;
        self.retransmit_one(out);
    }

    fn on_bytes_acked(&mut self, acked: u64, ece: bool) {
        match self.cfg.congestion {
            CongestionControl::Reno => {
                if ece {
                    // RFC 3168 style: halve once per window on ECE.
                    if seq_ge(self.snd_una, self.win_end) {
                        self.ssthresh = (self.cwnd / 2).max((2 * self.cfg.mss) as u64);
                        self.cwnd = self.ssthresh;
                        self.win_end = self.snd_nxt;
                    }
                } else if !self.in_recovery {
                    self.grow_cwnd(acked);
                }
            }
            CongestionControl::Dctcp => {
                self.win_bytes_acked += acked;
                if ece {
                    self.win_bytes_marked += acked;
                }
                if !self.in_recovery {
                    self.grow_cwnd(acked);
                }
                // Once per window of data: update α and apply the reduction.
                if seq_ge(self.snd_una, self.win_end) {
                    let frac = if self.win_bytes_acked > 0 {
                        self.win_bytes_marked as f64 / self.win_bytes_acked as f64
                    } else {
                        0.0
                    };
                    self.alpha = (1.0 - self.cfg.dctcp_g) * self.alpha + self.cfg.dctcp_g * frac;
                    if self.win_bytes_marked > 0 {
                        let reduced = (self.cwnd as f64 * (1.0 - self.alpha / 2.0)) as u64;
                        self.cwnd = reduced.max((2 * self.cfg.mss) as u64);
                        self.ssthresh = self.cwnd;
                    }
                    self.win_bytes_acked = 0;
                    self.win_bytes_marked = 0;
                    self.win_end = self.snd_nxt;
                }
            }
        }
    }

    fn grow_cwnd(&mut self, acked: u64) {
        let mss = self.cfg.mss as u64;
        if self.cwnd < self.ssthresh {
            self.cwnd += acked.min(mss);
        } else {
            self.cwnd += (mss * mss / self.cwnd).max(1);
        }
        // Cap at send-buffer scale: more would never be used.
        self.cwnd = self.cwnd.min(4 * self.cfg.tx_buf as u64);
    }

    fn update_rtt(&mut self, sample: SimTime) {
        let s = sample.as_ps();
        if self.srtt_ps == 0 {
            self.srtt_ps = s;
            self.rttvar_ps = s / 2;
        } else {
            // srtt = 7/8 srtt + 1/8 s; rttvar = 3/4 rttvar + 1/4 |srtt - s|.
            let delta = self.srtt_ps.abs_diff(s);
            self.rttvar_ps = (3 * self.rttvar_ps + delta) / 4;
            self.srtt_ps = (7 * self.srtt_ps + s) / 8;
        }
        let rto = SimTime::from_ps(self.srtt_ps + 4 * self.rttvar_ps);
        self.rto = rto.max(self.cfg.rto_min);
    }

    // ------------------------------------------------------------------
    // Output generation
    // ------------------------------------------------------------------

    /// Generate as many segments as the congestion and receive windows allow.
    pub fn poll_output(&mut self, now: SimTime, out: &mut Vec<SegmentOut>) {
        if matches!(self.state, TcpState::SynSent | TcpState::Closed) {
            return;
        }
        // With TSO the connection hands super-segments (up to tso_size bytes)
        // to the NIC, which cuts them into wire-MSS segments in hardware.
        let max_emit = self.cfg.tso_size.max(self.cfg.mss);
        loop {
            let inflight = self.snd_nxt.wrapping_sub(self.snd_una) as u64;
            let wnd = self.cwnd.min(self.snd_wnd as u64);
            let budget = wnd.saturating_sub(inflight) as usize;
            let sent_off = inflight as usize;
            let unsent = self.tx_buf.len().saturating_sub(sent_off.min(self.tx_buf.len()));
            let len = budget.min(max_emit).min(unsent);
            if len == 0 {
                break;
            }
            // Sender-side silly-window-syndrome avoidance (Nagle): while data
            // is outstanding, do not emit a sub-MSS segment unless it is the
            // final chunk of buffered data. Without this, competing flows
            // whose windows shrink below one MSS degenerate into storms of
            // tiny segments.
            if len < self.cfg.mss && inflight > 0 && len < unsent {
                break;
            }
            let data: Vec<u8> = self
                .tx_buf
                .iter()
                .skip(sent_off)
                .take(len)
                .copied()
                .collect();
            let seq = self.snd_nxt;
            let last = len == unsent;
            let mut flags = TcpFlags::ACK;
            if last {
                flags |= TcpFlags::PSH;
            }
            let mut seg = self.make_segment(flags, seq, data, false);
            seg.hdr.ack = self.rcv_nxt;
            out.push(seg);
            self.snd_nxt = self.snd_nxt.wrapping_add(len as u32);
            self.bytes_sent += len as u64;
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt, now));
            }
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
            // Piggybacked ACK covers anything pending.
            self.ack_pending = 0;
            self.delack_deadline = None;
        }

        // FIN when requested and all data is out.
        if self.fin_queued && !self.fin_sent {
            let all_sent = self.snd_nxt.wrapping_sub(self.snd_una) as usize >= self.tx_buf.len();
            if all_sent {
                let mut seg = self.make_segment(TcpFlags::FIN | TcpFlags::ACK, self.snd_nxt, Vec::new(), false);
                seg.hdr.ack = self.rcv_nxt;
                out.push(seg);
                self.fin_seq = self.snd_nxt;
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.fin_sent = true;
                self.arm_rto(now);
                self.state = match self.state {
                    TcpState::Established | TcpState::SynReceived => TcpState::FinWait1,
                    TcpState::CloseWait => TcpState::LastAck,
                    s => s,
                };
            }
        }
    }

    fn schedule_ack(&mut self, now: SimTime, out: &mut Vec<SegmentOut>) {
        // DCTCP requires timely feedback; any CE mark forces an immediate ACK.
        let force = self.ack_pending >= 2 || self.ce_to_echo || !self.ooo.is_empty();
        if force {
            out.push(self.make_ack());
        } else if self.ack_pending > 0 && self.delack_deadline.is_none() {
            self.delack_deadline = Some(now + self.cfg.delayed_ack);
        }
    }

    /// A pure window-update ACK, emitted by the stack after the application
    /// drains the receive buffer so a window-limited sender can resume.
    pub fn window_update(&mut self) -> SegmentOut {
        self.make_ack()
    }

    fn make_ack(&mut self) -> SegmentOut {
        self.ack_pending = 0;
        self.delack_deadline = None;
        let mut flags = TcpFlags::ACK;
        if self.ce_to_echo {
            flags |= TcpFlags::ECE;
            self.ce_to_echo = false;
        }
        let mut seg = self.make_segment(flags, self.snd_nxt, Vec::new(), false);
        seg.hdr.ack = self.rcv_nxt;
        seg.ecn = Ecn::NotEct;
        seg
    }

    fn make_segment(
        &mut self,
        flags: TcpFlags,
        seq: u32,
        payload: Vec<u8>,
        with_mss: bool,
    ) -> SegmentOut {
        self.segs_sent += 1;
        let free = self.cfg.rx_buf.saturating_sub(self.rx_buf.len());
        // SYN segments advertise an unscaled window; everything after the
        // handshake advertises `free >> rcv_wscale` (RFC 7323).
        let window = if with_mss {
            free.min(65535) as u16
        } else {
            (free >> self.rcv_wscale).min(65535) as u16
        };
        let ecn = if self.cfg.congestion == CongestionControl::Dctcp && !payload.is_empty() {
            Ecn::Ect0
        } else {
            Ecn::NotEct
        };
        SegmentOut {
            hdr: TcpHeader {
                src_port: self.local.port,
                dst_port: self.remote.port,
                seq,
                ack: self.rcv_nxt,
                flags,
                window,
                mss: if with_mss {
                    Some(self.cfg.mss as u16)
                } else {
                    None
                },
                wscale: if with_mss && self.cfg.window_scale > 0 {
                    Some(self.cfg.window_scale.min(14))
                } else {
                    None
                },
            },
            payload,
            ecn,
        }
    }

    fn retransmit_one(&mut self, out: &mut Vec<SegmentOut>) {
        let inflight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
        if inflight == 0 {
            if self.fin_sent && self.state != TcpState::Closed {
                let mut seg =
                    self.make_segment(TcpFlags::FIN | TcpFlags::ACK, self.fin_seq, Vec::new(), false);
                seg.hdr.ack = self.rcv_nxt;
                out.push(seg);
                self.retransmits += 1;
            }
            return;
        }
        let len = inflight.min(self.cfg.mss).min(self.tx_buf.len());
        if len == 0 {
            return;
        }
        let data: Vec<u8> = self.tx_buf.iter().take(len).copied().collect();
        let mut seg = self.make_segment(TcpFlags::ACK, self.snd_una, data, false);
        seg.hdr.ack = self.rcv_nxt;
        out.push(seg);
        self.retransmits += 1;
        // An RTT sample taken over a retransmission would be ambiguous.
        self.rtt_probe = None;
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn arm_rto(&mut self, now: SimTime) {
        let backoff = self.rto.mul(self.rto_backoff as u64);
        self.rto_deadline = Some(now + backoff);
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore
    // ------------------------------------------------------------------

    /// Serialize the complete connection state — negotiated configuration,
    /// sequence space (`snd_una`/`snd_nxt`/`rcv_nxt`), send and receive
    /// buffers, out-of-order reassembly runs, negotiated window scale,
    /// congestion control (Reno + DCTCP α window), RTT estimator, timers,
    /// and counters — so a restored run continues bit-identically.
    pub fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        // Negotiated/clamped configuration (MSS shrinks at SYN time).
        w.usize(self.cfg.mss);
        w.u8(match self.cfg.congestion {
            CongestionControl::Reno => 0,
            CongestionControl::Dctcp => 1,
        });
        w.usize(self.cfg.tx_buf);
        w.usize(self.cfg.rx_buf);
        w.time(self.cfg.rto_min);
        w.time(self.cfg.rto_initial);
        w.time(self.cfg.delayed_ack);
        w.f64(self.cfg.dctcp_g);
        w.u8(self.cfg.window_scale);
        w.usize(self.cfg.tso_size);

        w.u8(tcp_state_to_u8(self.state));
        w.u32(self.local.ip.to_u32());
        w.u16(self.local.port);
        w.u32(self.remote.ip.to_u32());
        w.u16(self.remote.port);

        w.u32(self.snd_una);
        w.u32(self.snd_nxt);
        w.u32(self.snd_wnd);
        let tx: Vec<u8> = self.tx_buf.iter().copied().collect();
        w.bytes(&tx);
        w.bool(self.fin_queued);
        w.bool(self.fin_sent);
        w.u32(self.fin_seq);

        w.u32(self.rcv_nxt);
        let rx: Vec<u8> = self.rx_buf.iter().copied().collect();
        w.bytes(&rx);
        w.usize(self.ooo.len());
        for (seq, data) in &self.ooo {
            w.u32(*seq);
            w.bytes(data);
        }
        match self.peer_fin {
            Some(s) => {
                w.bool(true);
                w.u32(s);
            }
            None => w.bool(false),
        }
        w.u8(self.snd_wscale);
        w.u8(self.rcv_wscale);

        w.u64(self.cwnd);
        w.u64(self.ssthresh);
        w.u32(self.dup_acks);
        w.bool(self.in_recovery);
        w.u32(self.recover);

        w.f64(self.alpha);
        w.u64(self.win_bytes_acked);
        w.u64(self.win_bytes_marked);
        w.u32(self.win_end);
        w.bool(self.ce_to_echo);

        w.u64(self.srtt_ps);
        w.u64(self.rttvar_ps);
        w.time(self.rto);
        w.u32(self.rto_backoff);
        w.opt_time(self.rto_deadline);
        match self.rtt_probe {
            Some((seq, at)) => {
                w.bool(true);
                w.u32(seq);
                w.time(at);
            }
            None => w.bool(false),
        }
        w.u32(self.ack_pending);
        w.opt_time(self.delack_deadline);

        w.u64(self.retransmits);
        w.u64(self.segs_sent);
        w.u64(self.segs_received);
        w.u64(self.bytes_sent);
        w.u64(self.bytes_received);
        w.u64(self.ce_marks_seen);
        Ok(())
    }

    /// Rebuild a connection from [`TcpConn::snapshot`] output.
    pub fn restore(r: &mut SnapReader) -> SnapResult<TcpConn> {
        let cfg = TcpConfig {
            mss: r.usize()?,
            congestion: match r.u8()? {
                0 => CongestionControl::Reno,
                1 => CongestionControl::Dctcp,
                v => return Err(SnapError::Corrupt(format!("bad congestion tag {v}"))),
            },
            tx_buf: r.usize()?,
            rx_buf: r.usize()?,
            rto_min: r.time()?,
            rto_initial: r.time()?,
            delayed_ack: r.time()?,
            dctcp_g: r.f64()?,
            window_scale: r.u8()?,
            tso_size: r.usize()?,
        };
        let state = tcp_state_from_u8(r.u8()?)?;
        let local = SocketAddr::new(simbricks_proto::Ipv4Addr::from_u32(r.u32()?), r.u16()?);
        let remote = SocketAddr::new(simbricks_proto::Ipv4Addr::from_u32(r.u32()?), r.u16()?);
        let mut c = TcpConn::base(local, remote, cfg, state);
        c.snd_una = r.u32()?;
        c.snd_nxt = r.u32()?;
        c.snd_wnd = r.u32()?;
        c.tx_buf = VecDeque::from(r.bytes()?);
        c.fin_queued = r.bool()?;
        c.fin_sent = r.bool()?;
        c.fin_seq = r.u32()?;
        c.rcv_nxt = r.u32()?;
        c.rx_buf = VecDeque::from(r.bytes()?);
        let n = r.usize()?;
        if n > 1 << 20 {
            return Err(SnapError::Corrupt(format!("absurd ooo run count {n}")));
        }
        c.ooo = BTreeMap::new();
        c.ooo_bytes = 0;
        for _ in 0..n {
            let seq = r.u32()?;
            let data = r.bytes()?;
            c.ooo_bytes += data.len();
            c.ooo.insert(seq, data);
        }
        c.peer_fin = if r.bool()? { Some(r.u32()?) } else { None };
        c.snd_wscale = r.u8()?;
        c.rcv_wscale = r.u8()?;
        c.cwnd = r.u64()?;
        c.ssthresh = r.u64()?;
        c.dup_acks = r.u32()?;
        c.in_recovery = r.bool()?;
        c.recover = r.u32()?;
        c.alpha = r.f64()?;
        c.win_bytes_acked = r.u64()?;
        c.win_bytes_marked = r.u64()?;
        c.win_end = r.u32()?;
        c.ce_to_echo = r.bool()?;
        c.srtt_ps = r.u64()?;
        c.rttvar_ps = r.u64()?;
        c.rto = r.time()?;
        c.rto_backoff = r.u32()?;
        c.rto_deadline = r.opt_time()?;
        c.rtt_probe = if r.bool()? {
            Some((r.u32()?, r.time()?))
        } else {
            None
        };
        c.ack_pending = r.u32()?;
        c.delack_deadline = r.opt_time()?;
        c.retransmits = r.u64()?;
        c.segs_sent = r.u64()?;
        c.segs_received = r.u64()?;
        c.bytes_sent = r.u64()?;
        c.bytes_received = r.u64()?;
        c.ce_marks_seen = r.u64()?;
        Ok(c)
    }

    /// Earliest time at which [`TcpConn::on_timer`] must be called.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.rto_deadline, self.delack_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Fire any expired timers.
    pub fn on_timer(&mut self, now: SimTime, out: &mut Vec<SegmentOut>, events: &mut Vec<ConnEvent>) {
        if let Some(d) = self.delack_deadline {
            if d <= now {
                out.push(self.make_ack());
            }
        }
        if let Some(d) = self.rto_deadline {
            if d <= now {
                match self.state {
                    TcpState::SynSent => {
                        // Retransmit SYN.
                        let syn = self.make_segment(TcpFlags::SYN, self.snd_una, Vec::new(), true);
                        out.push(syn);
                        self.retransmits += 1;
                        self.rto_backoff = (self.rto_backoff * 2).min(64);
                        if self.rto_backoff > 32 {
                            self.abort();
                            events.push(ConnEvent::ConnectFailed);
                            return;
                        }
                        self.arm_rto(now);
                    }
                    TcpState::Closed => {}
                    _ => {
                        // Retransmission timeout: collapse the window.
                        let inflight = self.snd_nxt.wrapping_sub(self.snd_una) as u64;
                        if inflight > 0 || (self.fin_sent && self.state != TcpState::Closed) {
                            self.ssthresh = (inflight / 2).max((2 * self.cfg.mss) as u64);
                            self.cwnd = self.cfg.mss as u64;
                            self.in_recovery = false;
                            self.dup_acks = 0;
                            self.retransmit_one(out);
                            self.rto_backoff = (self.rto_backoff * 2).min(64);
                            self.arm_rto(now);
                        } else {
                            self.rto_deadline = None;
                        }
                    }
                }
            }
        }
        self.poll_output(now, out);
    }
}

fn tcp_state_to_u8(s: TcpState) -> u8 {
    match s {
        TcpState::SynSent => 0,
        TcpState::SynReceived => 1,
        TcpState::Established => 2,
        TcpState::FinWait1 => 3,
        TcpState::FinWait2 => 4,
        TcpState::CloseWait => 5,
        TcpState::LastAck => 6,
        TcpState::Closing => 7,
        TcpState::Closed => 8,
    }
}

fn tcp_state_from_u8(v: u8) -> SnapResult<TcpState> {
    Ok(match v {
        0 => TcpState::SynSent,
        1 => TcpState::SynReceived,
        2 => TcpState::Established,
        3 => TcpState::FinWait1,
        4 => TcpState::FinWait2,
        5 => TcpState::CloseWait,
        6 => TcpState::LastAck,
        7 => TcpState::Closing,
        8 => TcpState::Closed,
        v => return Err(SnapError::Corrupt(format!("bad tcp state tag {v}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_proto::Ipv4Addr;

    fn addr(last: u8, port: u16) -> SocketAddr {
        SocketAddr::new(Ipv4Addr::new(10, 0, 0, last), port)
    }

    /// Drive two directly-connected connections (no loss, no delay).
    fn handshake(cfg: TcpConfig) -> (TcpConn, TcpConn) {
        let now = SimTime::ZERO;
        let (mut client, syn) = TcpConn::connect(now, addr(1, 1000), addr(2, 80), cfg);
        let (mut server, synack) = TcpConn::accept(now, addr(2, 80), addr(1, 1000), cfg, &syn.hdr);
        let mut out = Vec::new();
        let mut ev = Vec::new();
        client.on_segment(now, Ecn::NotEct, &synack.hdr, &[], &mut out, &mut ev);
        assert!(ev.contains(&ConnEvent::Connected));
        // deliver client's ACK (and anything else) to the server
        let mut ev2 = Vec::new();
        for seg in out.drain(..) {
            let mut o = Vec::new();
            server.on_segment(now, Ecn::NotEct, &seg.hdr, &seg.payload, &mut o, &mut ev2);
        }
        assert!(ev2.contains(&ConnEvent::Connected));
        assert_eq!(client.state, TcpState::Established);
        assert_eq!(server.state, TcpState::Established);
        (client, server)
    }

    /// Exchange queued output between `a` and `b` until quiescent.
    fn pump(now: SimTime, a: &mut TcpConn, b: &mut TcpConn) -> (Vec<ConnEvent>, Vec<ConnEvent>) {
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        for _ in 0..200 {
            let mut out_a = Vec::new();
            a.poll_output(now, &mut out_a);
            let mut out_b = Vec::new();
            for seg in out_a {
                b.on_segment(now, seg.ecn, &seg.hdr, &seg.payload, &mut out_b, &mut ev_b);
            }
            let mut back = Vec::new();
            b.poll_output(now, &mut out_b);
            for seg in out_b {
                a.on_segment(now, seg.ecn, &seg.hdr, &seg.payload, &mut back, &mut ev_a);
            }
            let mut drained = Vec::new();
            for seg in back {
                b.on_segment(now, seg.ecn, &seg.hdr, &seg.payload, &mut drained, &mut ev_b);
            }
            if drained.is_empty() {
                let mut probe = Vec::new();
                a.poll_output(now, &mut probe);
                if probe.is_empty() {
                    break;
                }
                for seg in probe {
                    b.on_segment(now, seg.ecn, &seg.hdr, &seg.payload, &mut Vec::new(), &mut ev_b);
                }
            }
        }
        (ev_a, ev_b)
    }

    #[test]
    fn handshake_establishes_both_sides() {
        handshake(TcpConfig::default());
    }

    #[test]
    fn data_transfer_in_order() {
        let (mut c, mut s) = handshake(TcpConfig::default());
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        assert_eq!(c.send(&msg), msg.len());
        pump(SimTime::from_us(10), &mut c, &mut s);
        let got = s.recv(usize::MAX);
        assert_eq!(got, msg);
        assert_eq!(s.bytes_received, msg.len() as u64);
        // Flush the receiver's delayed ACK, then everything is acknowledged.
        if let Some(d) = s.next_deadline() {
            let mut acks = Vec::new();
            s.on_timer(d, &mut acks, &mut Vec::new());
            for a in acks {
                c.on_segment(d, Ecn::NotEct, &a.hdr, &[], &mut Vec::new(), &mut Vec::new());
            }
        }
        assert_eq!(c.snd_una, c.snd_nxt);
    }

    #[test]
    fn mss_limits_segment_size() {
        let cfg = TcpConfig {
            mss: 500,
            ..Default::default()
        };
        let (mut c, _s) = handshake(cfg);
        c.send(&vec![0u8; 5000]);
        let mut out = Vec::new();
        c.poll_output(SimTime::from_us(1), &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|s| s.payload.len() <= 500));
    }

    #[test]
    fn nagle_holds_back_sub_mss_segments_while_data_is_in_flight() {
        let cfg = TcpConfig {
            mss: 1000,
            ..Default::default()
        };
        let (mut c, _s) = handshake(cfg);
        // 2.5 MSS of data: two full segments go out; the 500-byte tail is the
        // final chunk of the buffer, so it may follow immediately (PSH).
        c.send(&vec![1u8; 2500]);
        let mut out = Vec::new();
        c.poll_output(SimTime::from_us(1), &mut out);
        assert_eq!(out.iter().map(|s| s.payload.len()).collect::<Vec<_>>(), vec![1000, 1000, 500]);

        // Now constrain the usable window to 1.3 MSS with more data buffered:
        // after the full segment, the 300-byte leftover must be held back
        // until the outstanding data is acknowledged.
        let (mut c, _s) = handshake(cfg);
        c.send(&vec![2u8; 5000]);
        c.snd_wnd = 1300;
        let mut out = Vec::new();
        c.poll_output(SimTime::from_us(2), &mut out);
        assert_eq!(out.len(), 1, "only the full-MSS segment is emitted");
        assert_eq!(out[0].payload.len(), 1000);
    }

    #[test]
    fn send_respects_buffer_limit() {
        let cfg = TcpConfig {
            tx_buf: 1000,
            ..Default::default()
        };
        let (mut c, _s) = handshake(cfg);
        assert_eq!(c.send(&vec![0u8; 5000]), 1000);
        assert_eq!(c.send(&[0u8; 10]), 0);
    }

    #[test]
    fn lost_segment_recovered_by_rto() {
        let (mut c, mut s) = handshake(TcpConfig::default());
        let msg = vec![7u8; 1200];
        c.send(&msg);
        // Generate the segment but "lose" it.
        let mut lost = Vec::new();
        c.poll_output(SimTime::from_us(1), &mut lost);
        assert_eq!(lost.len(), 1);
        // Fire the retransmission timeout.
        let deadline = c.next_deadline().expect("rto armed");
        let mut out = Vec::new();
        let mut ev = Vec::new();
        c.on_timer(deadline, &mut out, &mut ev);
        assert!(c.retransmits >= 1);
        assert!(!out.is_empty());
        // Deliver the retransmission.
        let mut ev_s = Vec::new();
        let mut acks = Vec::new();
        for seg in out {
            s.on_segment(deadline, seg.ecn, &seg.hdr, &seg.payload, &mut acks, &mut ev_s);
        }
        assert_eq!(s.recv(usize::MAX), msg);
    }

    #[test]
    fn out_of_order_segments_are_reassembled() {
        let (mut c, mut s) = handshake(TcpConfig {
            mss: 100,
            ..Default::default()
        });
        c.send(&(0..=255u8).cycle().take(300).collect::<Vec<_>>());
        let mut segs = Vec::new();
        c.poll_output(SimTime::from_us(1), &mut segs);
        assert!(segs.len() >= 3);
        // Deliver them in reverse order.
        let mut ev = Vec::new();
        let mut out = Vec::new();
        for seg in segs.iter().rev() {
            s.on_segment(SimTime::from_us(2), seg.ecn, &seg.hdr, &seg.payload, &mut out, &mut ev);
        }
        let got = s.recv(usize::MAX);
        assert_eq!(got, (0..=255u8).cycle().take(300).collect::<Vec<_>>());
    }

    /// Hand-deliver a data segment to `s` (seq/ack in absolute sequence
    /// space), returning any segments it wants to transmit.
    fn deliver(s: &mut TcpConn, seq: u32, payload: &[u8]) -> Vec<SegmentOut> {
        let hdr = TcpHeader {
            src_port: s.remote.port,
            dst_port: s.local.port,
            seq,
            ack: s.snd_nxt,
            flags: TcpFlags::ACK,
            window: 65535,
            mss: None, wscale: None,
        };
        let mut out = Vec::new();
        s.on_segment(SimTime::from_us(50), Ecn::NotEct, &hdr, payload, &mut out, &mut Vec::new());
        out
    }

    /// Regression test (reassembly tail loss): when `rx_buf` fills while
    /// draining a now-contiguous out-of-order run, the un-ingested tail used
    /// to be discarded — data the stack already held — forcing the peer to
    /// retransmit all of it. The tail must be re-buffered at the new
    /// `rcv_nxt` instead.
    #[test]
    fn ooo_drain_tail_is_rebuffered_when_rx_buf_fills() {
        let cfg = TcpConfig {
            rx_buf: 800,
            mss: 500,
            ..Default::default()
        };
        let (_c, mut s) = handshake(cfg);
        let base = s.rcv_nxt;
        let first: Vec<u8> = (0..500u32).map(|i| (i % 13) as u8).collect();
        let second: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();

        // Bytes [500, 1000) arrive out of order and are buffered.
        deliver(&mut s, base.wrapping_add(500), &second);
        assert_eq!(s.ooo_bytes, 500);

        // Bytes [0, 500) arrive: rx_buf takes them plus 300 drained bytes,
        // filling up mid-drain. The 200-byte tail must survive in `ooo`.
        deliver(&mut s, base, &first);
        assert_eq!(s.rx_buf.len(), 800, "rx_buf filled exactly");
        assert_eq!(s.rcv_nxt.wrapping_sub(base), 800);
        assert_eq!(s.ooo_bytes, 200, "un-ingested drain tail kept, not dropped");
        assert_eq!(
            s.ooo.get(&base.wrapping_add(800)).map(|d| d.as_slice()),
            Some(&second[300..]),
            "tail re-keyed at the new rcv_nxt with the right bytes"
        );

        // The app reads; the peer fast-retransmits only the first unacked
        // segment [800, 1000). Together with the kept tail this completes
        // the stream without retransmitting everything.
        let mut got = s.recv(usize::MAX);
        deliver(&mut s, base.wrapping_add(800), &second[300..]);
        got.extend(s.recv(usize::MAX));
        assert_eq!(s.rcv_nxt.wrapping_sub(base), 1000, "stream fully acked");
        assert_eq!(got.len(), 1000);
        assert_eq!(&got[..500], &first[..]);
        assert_eq!(&got[500..], &second[..]);
        assert_eq!(s.ooo_bytes, 0);
    }

    /// Regression test (duplicate-seq OOO): a retransmitted out-of-order
    /// segment that *extends* an already-buffered run at the same sequence
    /// number used to be dropped entirely; the longer payload must win.
    #[test]
    fn duplicate_seq_ooo_segment_with_longer_payload_is_kept() {
        let (_c, mut s) = handshake(TcpConfig::default());
        let base = s.rcv_nxt;
        let data: Vec<u8> = (0..400u32).map(|i| (i % 83) as u8).collect();

        deliver(&mut s, base.wrapping_add(500), &data[..100]);
        assert_eq!(s.ooo_bytes, 100);
        // Same seq, longer payload (e.g. a TSO-rebatched retransmit): the
        // longer run replaces the shorter one.
        deliver(&mut s, base.wrapping_add(500), &data);
        assert_eq!(s.ooo_bytes, 400, "longer duplicate replaces shorter run");
        // A shorter duplicate never shrinks the buffered run.
        deliver(&mut s, base.wrapping_add(500), &data[..50]);
        assert_eq!(s.ooo_bytes, 400);

        // Filling the hole drains the full 400-byte run.
        let first = vec![7u8; 500];
        deliver(&mut s, base, &first);
        assert_eq!(s.rcv_nxt.wrapping_sub(base), 900);
        let got = s.recv(usize::MAX);
        assert_eq!(&got[..500], &first[..]);
        assert_eq!(&got[500..], &data[..]);
    }

    /// Regression test (64 KiB window cap): without window scaling the
    /// 16-bit window field capped inflight data at 64 KiB regardless of the
    /// receiver's actual buffer, window-limiting high-BDP transfers. With
    /// the RFC 7323 scale option (negotiated at SYN, same default shift on
    /// both ends) the sender must be able to keep > 64 KiB in flight.
    #[test]
    fn window_scaling_lifts_the_64k_inflight_cap() {
        let cfg = TcpConfig {
            rx_buf: 1 << 20,
            tx_buf: 1 << 20,
            mss: 1000,
            ..Default::default()
        };
        let (mut c, mut s) = handshake(cfg);
        assert_eq!(c.snd_wscale, cfg.window_scale, "scale negotiated at SYN");
        assert_eq!(s.snd_wscale, cfg.window_scale);
        let total = 600_000usize;
        assert_eq!(c.send(&vec![5u8; total]), total);
        let now = SimTime::from_us(10);
        let mut max_inflight = 0u32;
        let mut received = 0usize;
        // Lossless exchange loop: segments the client emits while processing
        // ACKs are queued for the next delivery round, so nothing is lost.
        let mut to_s: Vec<SegmentOut> = Vec::new();
        for _ in 0..400 {
            let mut out = Vec::new();
            c.poll_output(now, &mut out);
            to_s.extend(out);
            max_inflight = max_inflight.max(c.snd_nxt.wrapping_sub(c.snd_una));
            let mut to_c = Vec::new();
            for seg in to_s.drain(..) {
                s.on_segment(now, seg.ecn, &seg.hdr, &seg.payload, &mut to_c, &mut Vec::new());
            }
            received += s.recv(usize::MAX).len();
            to_c.push(s.window_update());
            for a in to_c {
                c.on_segment(now, Ecn::NotEct, &a.hdr, &[], &mut to_s, &mut Vec::new());
            }
            max_inflight = max_inflight.max(c.snd_nxt.wrapping_sub(c.snd_una));
            if received == total {
                break;
            }
        }
        assert_eq!(received, total, "whole stream delivered");
        assert!(
            c.snd_wnd > 65535,
            "scaled peer window exceeds the 16-bit cap ({})",
            c.snd_wnd
        );
        assert!(
            max_inflight > 65535,
            "window scaling lifts the 64 KiB inflight cap (max {max_inflight})"
        );
    }

    /// Disabling the scale option (either end) falls back to unscaled
    /// windows, capped at 64 KiB.
    #[test]
    fn window_scaling_disabled_falls_back_to_unscaled() {
        let cfg = TcpConfig {
            rx_buf: 1 << 20,
            window_scale: 0,
            ..Default::default()
        };
        let (mut c, mut s) = handshake(cfg);
        assert_eq!((c.snd_wscale, c.rcv_wscale), (0, 0));
        assert_eq!((s.snd_wscale, s.rcv_wscale), (0, 0));
        c.send(&vec![1u8; 200_000]);
        pump(SimTime::from_us(10), &mut c, &mut s);
        assert!(c.snd_wnd <= 65535, "unscaled window stays 16-bit");
    }

    #[test]
    fn fast_retransmit_on_three_dup_acks() {
        let (mut c, mut s) = handshake(TcpConfig {
            mss: 100,
            ..Default::default()
        });
        c.send(&vec![1u8; 1000]);
        let mut segs = Vec::new();
        c.poll_output(SimTime::from_us(1), &mut segs);
        assert!(segs.len() >= 5);
        // Drop the first segment, deliver the rest: server emits dup ACKs.
        let mut dup_acks = Vec::new();
        for seg in &segs[1..] {
            s.on_segment(SimTime::from_us(2), seg.ecn, &seg.hdr, &seg.payload, &mut dup_acks, &mut Vec::new());
        }
        assert!(dup_acks.len() >= 3);
        let mut rtx = Vec::new();
        for ack in dup_acks {
            c.on_segment(SimTime::from_us(3), Ecn::NotEct, &ack.hdr, &[], &mut rtx, &mut Vec::new());
        }
        assert!(c.retransmits >= 1, "fast retransmit triggered");
        assert!(c.in_recovery, "sender is in fast recovery");
        // The retransmitted first segment plus the rest complete the stream.
        for seg in rtx {
            s.on_segment(SimTime::from_us(4), seg.ecn, &seg.hdr, &seg.payload, &mut Vec::new(), &mut Vec::new());
        }
        assert_eq!(s.recv(usize::MAX).len(), 1000);
    }

    #[test]
    fn receive_window_limits_sender() {
        let cfg = TcpConfig {
            rx_buf: 2000,
            mss: 1000,
            ..Default::default()
        };
        let (mut c, mut s) = handshake(cfg);
        c.send(&vec![9u8; 50_000]);
        pump(SimTime::from_us(10), &mut c, &mut s);
        // Server never reads: sender must stop at the advertised window.
        assert!(s.rx_buf.len() <= 2000);
        let inflight = c.snd_nxt.wrapping_sub(c.snd_una);
        assert!(inflight <= 2000, "inflight {} exceeds receive window", inflight);
        // Reading frees window; a window update lets the sender resume.
        let first = s.recv(usize::MAX).len();
        assert!(first > 0);
        let wu = s.window_update();
        let mut resumed = Vec::new();
        c.on_segment(SimTime::from_us(20), Ecn::NotEct, &wu.hdr, &[], &mut resumed, &mut Vec::new());
        assert!(!resumed.is_empty(), "sender resumes once the window opens");
        for seg in resumed {
            s.on_segment(SimTime::from_us(20), seg.ecn, &seg.hdr, &seg.payload, &mut Vec::new(), &mut Vec::new());
        }
        pump(SimTime::from_us(21), &mut c, &mut s);
        assert!(!s.rx_buf.is_empty() || s.recv(usize::MAX).len() + first == 50_000 || c.tx_buf.len() < 50_000);
        assert!(s.bytes_received as usize > first, "transfer continued after the window opened");
    }

    #[test]
    fn graceful_close_both_directions() {
        let (mut c, mut s) = handshake(TcpConfig::default());
        c.send(b"bye");
        c.close();
        let (_ev_c, ev_s) = pump(SimTime::from_us(5), &mut c, &mut s);
        assert_eq!(s.recv(usize::MAX), b"bye");
        assert!(ev_s.contains(&ConnEvent::PeerClosed));
        assert!(matches!(s.state, TcpState::CloseWait));
        assert!(matches!(c.state, TcpState::FinWait1 | TcpState::FinWait2));
        // Server closes too.
        s.close();
        let (ev_c2, _) = pump(SimTime::from_us(6), &mut s, &mut c);
        let _ = ev_c2;
        assert!(matches!(s.state, TcpState::LastAck | TcpState::Closed));
    }

    #[test]
    fn dctcp_alpha_tracks_marking_fraction() {
        let cfg = TcpConfig {
            congestion: CongestionControl::Dctcp,
            mss: 1000,
            ..Default::default()
        };
        let (mut c, mut s) = handshake(cfg);
        // Repeatedly send data where every data segment is CE-marked in
        // flight (a persistently congested queue), exchanging until quiescent.
        let mut saw_ece = false;
        for round in 0..50u64 {
            c.send(&vec![3u8; 4000]);
            let now = SimTime::from_us(10 * (round + 1));
            let mut to_s = Vec::new();
            c.poll_output(now, &mut to_s);
            for _ in 0..50 {
                if to_s.is_empty() {
                    break;
                }
                let mut acks = Vec::new();
                for seg in to_s.drain(..) {
                    let ecn = if seg.payload.is_empty() {
                        Ecn::NotEct
                    } else {
                        assert_eq!(seg.ecn, Ecn::Ect0, "DCTCP data is ECT(0)");
                        Ecn::Ce // switch marks every data packet
                    };
                    s.on_segment(now, ecn, &seg.hdr, &seg.payload, &mut acks, &mut Vec::new());
                }
                saw_ece |= acks
                    .iter()
                    .any(|a| a.hdr.flags.contains(TcpFlags::ECE));
                for a in acks {
                    c.on_segment(now, Ecn::NotEct, &a.hdr, &[], &mut to_s, &mut Vec::new());
                }
            }
            s.recv(usize::MAX);
        }
        assert!(saw_ece, "receiver echoes CE marks");
        assert!(c.dctcp_alpha() > 0.5, "alpha converges towards 1 under full marking, got {}", c.dctcp_alpha());
        assert!(c.cwnd() <= 20_000, "cwnd stays small under persistent marking");
    }

    /// Mid-transfer snapshot: a connection with in-flight data, buffered
    /// out-of-order runs, and armed timers restores to a state that
    /// completes the stream exactly like the original.
    #[test]
    fn snapshot_mid_transfer_restores_and_completes() {
        let cfg = TcpConfig {
            mss: 500,
            ..Default::default()
        };
        let (mut c, mut s) = handshake(cfg);
        let msg: Vec<u8> = (0..4000u32).map(|i| (i % 211) as u8).collect();
        c.send(&msg);
        let mut segs = Vec::new();
        c.poll_output(SimTime::from_us(1), &mut segs);
        // Deliver only segments 2.. so the server buffers OOO state, then
        // snapshot both sides mid-recovery.
        for seg in &segs[2..] {
            s.on_segment(SimTime::from_us(2), seg.ecn, &seg.hdr, &seg.payload, &mut Vec::new(), &mut Vec::new());
        }
        assert!(s.ooo_bytes > 0, "server holds out-of-order runs");
        let snap = |conn: &TcpConn| {
            let mut w = SnapWriter::new();
            conn.snapshot(&mut w).unwrap();
            w.into_vec()
        };
        let (bc, bs) = (snap(&c), snap(&s));
        let mut c2 = TcpConn::restore(&mut SnapReader::new(&bc)).unwrap();
        let mut s2 = TcpConn::restore(&mut SnapReader::new(&bs)).unwrap();
        assert_eq!(c2.snd_nxt, c.snd_nxt);
        assert_eq!(c2.tx_buf, c.tx_buf);
        assert_eq!(s2.ooo, s.ooo);
        assert_eq!(s2.ooo_bytes, s.ooo_bytes);
        assert_eq!(s2.next_deadline(), s.next_deadline());
        // Replay the missing head segments into the restored server and pump
        // to completion: the byte stream must come out exactly.
        for seg in &segs[..2] {
            s2.on_segment(SimTime::from_us(3), seg.ecn, &seg.hdr, &seg.payload, &mut Vec::new(), &mut Vec::new());
        }
        pump(SimTime::from_us(5), &mut c2, &mut s2);
        let got = s2.recv(usize::MAX);
        assert_eq!(got, msg);
    }

    #[test]
    fn snapshot_restore_rejects_corrupt_input() {
        let (c, _s) = handshake(TcpConfig::default());
        let mut w = SnapWriter::new();
        c.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        assert!(TcpConn::restore(&mut SnapReader::new(&buf[..10])).is_err());
        let mut bad = buf.clone();
        // Corrupt the congestion-control tag (offset 8: right after mss).
        bad[8] = 0xfe;
        assert!(TcpConn::restore(&mut SnapReader::new(&bad)).is_err());
    }

    #[test]
    fn rst_aborts_connection() {
        let (mut c, _s) = handshake(TcpConfig::default());
        let rst = TcpHeader {
            src_port: 80,
            dst_port: 1000,
            seq: 0,
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            mss: None, wscale: None,
        };
        let mut ev = Vec::new();
        c.on_segment(SimTime::from_us(1), Ecn::NotEct, &rst, &[], &mut Vec::new(), &mut ev);
        assert!(c.is_closed());
        assert!(ev.contains(&ConnEvent::Closed));
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The wrapping comparisons agree with arithmetic on unbounded
            /// integers whenever the two sequence numbers are within half the
            /// space of each other (the TCP validity window), including
            /// across the u32 wrap.
            #[test]
            fn seq_compare_matches_unbounded_arithmetic(base in any::<u32>(), delta in 0u32..0x7fff_ffff) {
                let b = base.wrapping_add(delta);
                prop_assert!(seq_le(base, b));
                prop_assert!(seq_ge(b, base));
                prop_assert_eq!(seq_gt(b, base), delta != 0);
                prop_assert_eq!(seq_le(b, base), delta == 0);
            }

            /// Reassembly is agnostic to where the stream sits in sequence
            /// space: segments delivered in arbitrary order with an initial
            /// receive sequence near u32::MAX reproduce the byte stream
            /// exactly, with no loss or duplication across the wrap.
            #[test]
            fn ingest_reassembles_across_the_u32_wrap(
                irs_back in 0u32..8000,
                order in proptest::collection::vec(0usize..8, 8),
            ) {
                let (_c, mut s) = handshake(TcpConfig { mss: 1000, ..Default::default() });
                // Rebase the receive side so the stream spans the wrap.
                let irs = u32::MAX.wrapping_sub(irs_back);
                s.rcv_nxt = irs;
                let stream: Vec<u8> = (0..8000u32).map(|i| (i % 199) as u8).collect();
                // Deliver the 8 1000-byte segments in the sampled order
                // (duplicates in `order` exercise redundant delivery too),
                // then in order to fill any holes.
                for &idx in &order {
                    deliver(&mut s, irs.wrapping_add((idx * 1000) as u32), &stream[idx * 1000..(idx + 1) * 1000]);
                }
                for idx in 0..8 {
                    deliver(&mut s, irs.wrapping_add((idx * 1000) as u32), &stream[idx * 1000..(idx + 1) * 1000]);
                }
                prop_assert_eq!(s.rcv_nxt, irs.wrapping_add(8000));
                let got = s.recv(usize::MAX);
                prop_assert_eq!(got, stream);
                prop_assert_eq!(s.ooo_bytes, 0);
            }

            /// Snapshot round trip (`decode(encode(s)) == s`): a connection
            /// driven into an arbitrary mid-transfer state — random payload,
            /// random subset of segments delivered out of order — restores
            /// with identical sequence space, buffers, reassembly runs, and
            /// timer deadlines.
            #[test]
            fn tcp_conn_snapshot_roundtrip(
                payload_len in 0usize..5000,
                deliver_mask in any::<u16>(),
            ) {
                let cfg = TcpConfig { mss: 400, ..Default::default() };
                let (mut c, mut s) = handshake(cfg);
                let msg: Vec<u8> = (0..payload_len).map(|i| (i % 239) as u8).collect();
                c.send(&msg);
                let mut segs = Vec::new();
                c.poll_output(SimTime::from_us(1), &mut segs);
                for (i, seg) in segs.iter().enumerate().rev() {
                    if deliver_mask & (1 << (i % 16)) != 0 {
                        s.on_segment(SimTime::from_us(2), seg.ecn, &seg.hdr, &seg.payload,
                                     &mut Vec::new(), &mut Vec::new());
                    }
                }
                for conn in [&c, &s] {
                    let mut w = SnapWriter::new();
                    conn.snapshot(&mut w).unwrap();
                    let buf = w.into_vec();
                    let mut r = SnapReader::new(&buf);
                    let back = TcpConn::restore(&mut r).unwrap();
                    prop_assert!(r.is_empty(), "every byte consumed");
                    prop_assert_eq!(back.state, conn.state);
                    prop_assert_eq!(back.snd_una, conn.snd_una);
                    prop_assert_eq!(back.snd_nxt, conn.snd_nxt);
                    prop_assert_eq!(back.rcv_nxt, conn.rcv_nxt);
                    prop_assert_eq!(&back.tx_buf, &conn.tx_buf);
                    prop_assert_eq!(&back.rx_buf, &conn.rx_buf);
                    prop_assert_eq!(&back.ooo, &conn.ooo);
                    prop_assert_eq!(back.ooo_bytes, conn.ooo_bytes);
                    prop_assert_eq!(back.cwnd, conn.cwnd);
                    prop_assert_eq!(back.next_deadline(), conn.next_deadline());
                    prop_assert_eq!(back.segs_sent, conn.segs_sent);
                    prop_assert_eq!(back.bytes_received, conn.bytes_received);
                }
            }
        }
    }

    #[test]
    fn rtt_estimation_sets_reasonable_rto() {
        let (mut c, mut s) = handshake(TcpConfig::default());
        c.send(&vec![0u8; 3000]); // at least two segments => immediate ACK
        let t_send = SimTime::from_us(100);
        let mut segs = Vec::new();
        c.poll_output(t_send, &mut segs);
        let mut acks = Vec::new();
        for seg in segs {
            s.on_segment(t_send, seg.ecn, &seg.hdr, &seg.payload, &mut acks, &mut Vec::new());
        }
        let t_ack = t_send + SimTime::from_us(50); // 50 us RTT
        for a in acks {
            c.on_segment(t_ack, Ecn::NotEct, &a.hdr, &[], &mut Vec::new(), &mut Vec::new());
        }
        assert!(c.srtt_ps > 0);
        assert!(c.rto >= c.cfg.rto_min);
    }

    /// Determinism regression: the RTT estimator is exact integer
    /// arithmetic (RFC 6298 in picoseconds). Pinning the values catches any
    /// reintroduction of float smoothing, whose rounding is
    /// platform/optimization sensitive and leaks into the RTO — virtual
    /// time that every executor must agree on bit-for-bit.
    #[test]
    fn rtt_estimator_is_exact_integer_arithmetic() {
        let (mut c, _s) = handshake(TcpConfig::default());
        assert_eq!(c.srtt_ps, 0, "handshake must not seed the estimator");
        c.update_rtt(SimTime::from_ms(1));
        assert_eq!(c.srtt_ps, SimTime::from_ms(1).as_ps());
        assert_eq!(c.rttvar_ps, SimTime::from_us(500).as_ps());
        c.update_rtt(SimTime::from_ms(2));
        // srtt = (7*1ms + 2ms)/8 = 1.125ms; rttvar = (3*0.5ms + 1ms)/4.
        assert_eq!(c.srtt_ps, 1_125_000_000);
        assert_eq!(c.rttvar_ps, 625_000_000);
        assert_eq!(c.rto, SimTime::from_ps(1_125_000_000 + 4 * 625_000_000));
    }
}
