//! # simbricks-nvmesim
//!
//! A compact NVMe SSD device model (stand-in for the FEMU integration in
//! §7.2 of the paper), demonstrating that the SimBricks PCIe interface
//! generalizes beyond NICs: the device announces itself with `INIT_DEV`,
//! exposes submission/completion queue doorbells in BAR 0, fetches 64-byte
//! commands from host memory by DMA, moves data by DMA, and signals
//! completions through MSI-X — exactly the same message vocabulary the NIC
//! models use.

use std::collections::VecDeque;

use simbricks_base::{Kernel, Model, OwnedMsg, PortId, SimTime};
use simbricks_pcie::{DevToHost, DeviceInfo, HostToDev, IntKind};

/// Register offsets in BAR 0.
pub const NVME_REG_SQ_BASE: u64 = 0x00;
pub const NVME_REG_CQ_BASE: u64 = 0x08;
pub const NVME_REG_Q_LEN: u64 = 0x10;
pub const NVME_REG_SQ_TAIL: u64 = 0x18;
pub const NVME_REG_ENABLE: u64 = 0x20;

/// NVMe-style command layout (64 bytes): opcode (0), lba (8..16),
/// length in blocks (16..20), buffer address (24..32), command id (32..40).
pub const NVME_CMD_SIZE: usize = 64;
pub const NVME_OPC_READ: u8 = 0x02;
pub const NVME_OPC_WRITE: u8 = 0x01;
pub const BLOCK_SIZE: usize = 4096;

/// Device configuration.
#[derive(Clone, Copy, Debug)]
pub struct NvmeConfig {
    pub capacity_blocks: u64,
    pub read_latency: SimTime,
    pub write_latency: SimTime,
}

impl Default for NvmeConfig {
    fn default() -> Self {
        NvmeConfig {
            capacity_blocks: 4096,
            read_latency: SimTime::from_us(80),
            write_latency: SimTime::from_us(20),
        }
    }
}

enum DmaCtx {
    CmdFetch,
    DataIn { cmd_id: u64, lba: u64 },
    DataOutDone { cmd_id: u64 },
    CplWrite,
}

/// The NVMe device model. Port 0 is its PCIe channel to a host simulator.
pub struct NvmeDev {
    cfg: NvmeConfig,
    storage: Vec<u8>,
    enabled: bool,
    sq_base: u64,
    cq_base: u64,
    q_len: u32,
    sq_head: u32,
    sq_tail: u32,
    cq_tail: u32,
    fetching: bool,
    outstanding: simbricks_pcie::OutstandingRequests<DmaCtx>,
    /// Commands waiting for their modelled media latency.
    in_media: VecDeque<(SimTime, u8, u64, u32, u64, u64)>,
    pub reads: u64,
    pub writes: u64,
    pub completions: u64,
}

const TOK_MEDIA: u64 = 1;

impl NvmeDev {
    pub fn new(cfg: NvmeConfig) -> Self {
        NvmeDev {
            storage: vec![0u8; (cfg.capacity_blocks as usize) * BLOCK_SIZE],
            cfg,
            enabled: false,
            sq_base: 0,
            cq_base: 0,
            q_len: 0,
            sq_head: 0,
            sq_tail: 0,
            cq_tail: 0,
            fetching: false,
            outstanding: simbricks_pcie::OutstandingRequests::new(),
            in_media: VecDeque::new(),
            reads: 0,
            writes: 0,
            completions: 0,
        }
    }

    fn dma_read(&mut self, k: &mut Kernel, addr: u64, len: usize, ctx: DmaCtx) {
        let req_id = self.outstanding.insert(ctx);
        let (ty, p) = DevToHost::DmaRead { req_id, addr, len }.encode();
        k.send(PortId(0), ty, &p);
    }

    fn dma_write(&mut self, k: &mut Kernel, addr: u64, data: &[u8], ctx: DmaCtx) {
        let req_id = self.outstanding.insert(ctx);
        let (ty, p) = DevToHost::DmaWrite {
            req_id,
            addr,
            data: data.to_vec().into(),
        }
        .encode();
        k.send(PortId(0), ty, &p);
    }

    fn fetch_next(&mut self, k: &mut Kernel) {
        if !self.enabled || self.fetching || self.sq_head == self.sq_tail || self.q_len == 0 {
            return;
        }
        let idx = self.sq_head % self.q_len;
        self.fetching = true;
        self.dma_read(
            k,
            self.sq_base + idx as u64 * NVME_CMD_SIZE as u64,
            NVME_CMD_SIZE,
            DmaCtx::CmdFetch,
        );
    }

    fn handle_command(&mut self, k: &mut Kernel, cmd: &[u8]) {
        let opcode = cmd[0];
        let lba = u64::from_le_bytes(cmd[8..16].try_into().unwrap());
        let blocks = u32::from_le_bytes(cmd[16..20].try_into().unwrap()).max(1);
        let buf = u64::from_le_bytes(cmd[24..32].try_into().unwrap());
        let cmd_id = u64::from_le_bytes(cmd[32..40].try_into().unwrap());
        let latency = match opcode {
            NVME_OPC_READ => self.cfg.read_latency,
            _ => self.cfg.write_latency,
        };
        let done = k.now() + latency;
        self.in_media
            .push_back((done, opcode, lba, blocks, buf, cmd_id));
        k.schedule_at(done, TOK_MEDIA);
        // The head, like the tail doorbell the driver writes, is kept modulo
        // the queue length (NVMe queue semantics).
        self.sq_head = (self.sq_head + 1) % self.q_len.max(1);
        self.fetching = false;
        self.fetch_next(k);
    }

    fn media_done(&mut self, k: &mut Kernel) {
        let now = k.now();
        while let Some((done, ..)) = self.in_media.front() {
            if *done > now {
                break;
            }
            let (_, opcode, lba, blocks, buf, cmd_id) = self.in_media.pop_front().unwrap();
            let len = blocks as usize * BLOCK_SIZE;
            let off = (lba as usize * BLOCK_SIZE).min(self.storage.len());
            let end = (off + len).min(self.storage.len());
            match opcode {
                NVME_OPC_READ => {
                    self.reads += 1;
                    let data = self.storage[off..end].to_vec();
                    self.dma_write(k, buf, &data, DmaCtx::DataOutDone { cmd_id });
                }
                _ => {
                    self.writes += 1;
                    self.dma_read(k, buf, end - off, DmaCtx::DataIn { cmd_id, lba });
                }
            }
        }
    }

    fn complete(&mut self, k: &mut Kernel, cmd_id: u64) {
        // Write a 16-byte completion entry and raise MSI-X vector 0.
        if self.q_len > 0 {
            let idx = self.cq_tail % self.q_len;
            let mut entry = [0u8; 16];
            entry[0..8].copy_from_slice(&cmd_id.to_le_bytes());
            entry[8] = 1; // phase/valid
            self.dma_write(k, self.cq_base + idx as u64 * 16, &entry, DmaCtx::CplWrite);
            self.cq_tail = self.cq_tail.wrapping_add(1);
        }
        self.completions += 1;
        let (ty, p) = DevToHost::Interrupt {
            kind: IntKind::Msix,
            vector: 0,
        }
        .encode();
        k.send(PortId(0), ty, &p);
    }
}

impl Model for NvmeDev {
    fn init(&mut self, k: &mut Kernel) {
        let (ty, p) = DevToHost::DevInfo(DeviceInfo::nvme(0x1b36, 0x0010, 0x4000, 8)).encode();
        k.send(PortId(0), ty, &p);
    }

    fn on_msg(&mut self, k: &mut Kernel, _port: PortId, msg: OwnedMsg) {
        match HostToDev::decode(msg.ty, &msg.data) {
            Some(HostToDev::MmioWrite {
                req_id,
                offset,
                data,
                ..
            }) => {
                let mut b = [0u8; 8];
                let n = data.len().min(8);
                b[..n].copy_from_slice(&data[..n]);
                let v = u64::from_le_bytes(b);
                match offset {
                    NVME_REG_SQ_BASE => self.sq_base = v,
                    NVME_REG_CQ_BASE => self.cq_base = v,
                    NVME_REG_Q_LEN => self.q_len = v as u32,
                    NVME_REG_ENABLE => self.enabled = v & 1 != 0,
                    NVME_REG_SQ_TAIL => {
                        self.sq_tail = v as u32;
                        self.fetch_next(k);
                    }
                    _ => {}
                }
                let (ty, p) = DevToHost::MmioComplete {
                    req_id,
                    data: simbricks_base::PktBuf::empty(),
                }
                .encode();
                k.send(PortId(0), ty, &p);
            }
            Some(HostToDev::MmioRead {
                req_id, offset, len, ..
            }) => {
                let v: u64 = match offset {
                    NVME_REG_ENABLE => self.enabled as u64,
                    NVME_REG_Q_LEN => self.q_len as u64,
                    _ => 0,
                };
                let (ty, p) = DevToHost::MmioComplete {
                    req_id,
                    data: v.to_le_bytes()[..len.min(8)].to_vec().into(),
                }
                .encode();
                k.send(PortId(0), ty, &p);
            }
            Some(HostToDev::DmaComplete { req_id, data }) => {
                match self.outstanding.complete(req_id) {
                    Some(DmaCtx::CmdFetch) => self.handle_command(k, &data),
                    Some(DmaCtx::DataIn { cmd_id, lba }) => {
                        let off = (lba as usize * BLOCK_SIZE).min(self.storage.len());
                        let n = data.len().min(self.storage.len() - off);
                        self.storage[off..off + n].copy_from_slice(&data[..n]);
                        self.complete(k, cmd_id);
                    }
                    Some(DmaCtx::DataOutDone { cmd_id }) => self.complete(k, cmd_id),
                    Some(DmaCtx::CplWrite) | None => {}
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        if token == TOK_MEDIA {
            self.media_done(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome, MSG_SYNC};

    #[test]
    fn announces_as_storage_device() {
        let (dev_end, mut host) = channel_pair(ChannelParams::default_sync());
        let mut kernel = Kernel::new("nvme", SimTime::from_us(10));
        kernel.add_port(dev_end);
        let mut dev = NvmeDev::new(NvmeConfig::default());
        host.send_raw(SimTime::from_us(10), MSG_SYNC, &[]).unwrap();
        while kernel.step(&mut dev, 256) == StepOutcome::Progressed {}
        let mut seen = false;
        while let Some(m) = host.recv_raw() {
            if let Some(DevToHost::DevInfo(info)) = DevToHost::decode(m.ty, &m.data) {
                assert_eq!(info.class, 0x01, "mass storage class");
                seen = true;
            }
        }
        assert!(seen);
    }

    #[test]
    fn processes_a_read_command_end_to_end() {
        let (dev_end, mut host) = channel_pair(ChannelParams::default_sync());
        let mut kernel = Kernel::new("nvme", SimTime::from_ms(2));
        kernel.add_port(dev_end);
        let mut dev = NvmeDev::new(NvmeConfig::default());
        // Host-side "driver": queue memory at 0x1000 (SQ) / 0x2000 (CQ),
        // data buffer at 0x10000.
        let mut mem = vec![0u8; 1 << 20];
        let mut cmd = [0u8; NVME_CMD_SIZE];
        cmd[0] = NVME_OPC_READ;
        cmd[8..16].copy_from_slice(&1u64.to_le_bytes()); // lba 1
        cmd[16..20].copy_from_slice(&1u32.to_le_bytes()); // 1 block
        cmd[24..32].copy_from_slice(&0x10000u64.to_le_bytes());
        cmd[32..40].copy_from_slice(&77u64.to_le_bytes()); // command id
        mem[0x1000..0x1000 + NVME_CMD_SIZE].copy_from_slice(&cmd);

        let t0 = SimTime::from_us(1);
        for (req, (off, val)) in [
            (NVME_REG_SQ_BASE, 0x1000u64),
            (NVME_REG_CQ_BASE, 0x2000),
            (NVME_REG_Q_LEN, 16),
            (NVME_REG_ENABLE, 1),
            (NVME_REG_SQ_TAIL, 1),
        ]
        .into_iter()
        .enumerate()
        {
            let (ty, p) = HostToDev::MmioWrite {
                req_id: req as u64 + 1,
                bar: 0,
                offset: off,
                data: val.to_le_bytes().to_vec().into(),
            }
            .encode();
            host.send_raw(t0, ty, &p).unwrap();
        }

        let mut horizon = 2u64;
        let mut interrupts = 0;
        let mut cq_written = false;
        for _ in 0..2000 {
            if kernel.step(&mut dev, 256) == StepOutcome::Finished {
                break;
            }
            let stamp = SimTime::from_us(horizon);
            while let Some(m) = host.recv_raw() {
                match DevToHost::decode(m.ty, &m.data) {
                    Some(DevToHost::DmaRead { req_id, addr, len }) => {
                        let data = mem[addr as usize..addr as usize + len].to_vec();
                        let (ty, p) = HostToDev::DmaComplete { req_id, data: data.into() }.encode();
                        host.send_raw(stamp, ty, &p).unwrap();
                    }
                    Some(DevToHost::DmaWrite { req_id, addr, data }) => {
                        mem[addr as usize..addr as usize + data.len()].copy_from_slice(&data);
                        if addr == 0x2000 {
                            cq_written = true;
                        }
                        let (ty, p) = HostToDev::DmaComplete {
                            req_id,
                            data: simbricks_base::PktBuf::empty(),
                        }
                        .encode();
                        host.send_raw(stamp, ty, &p).unwrap();
                    }
                    Some(DevToHost::Interrupt { .. }) => interrupts += 1,
                    _ => {}
                }
            }
            host.send_raw(stamp, MSG_SYNC, &[]).unwrap();
            horizon += 5;
            if interrupts > 0 {
                break;
            }
        }
        assert!(cq_written, "completion entry written to the CQ");
        assert_eq!(interrupts, 1);
        assert_eq!(dev.reads, 1);
        assert_eq!(
            u64::from_le_bytes(mem[0x2000..0x2008].try_into().unwrap()),
            77,
            "completion carries the command id"
        );
    }
}
