//! # simbricks-eth
//!
//! The SimBricks network component interface (Fig. 4, bottom table): NIC ↔
//! network and network ↔ network components exchange `PACKET` messages that
//! carry a raw Ethernet frame (without CRC — §5.1.2 of the paper). The link
//! bandwidth and propagation latency are channel parameters; serialization
//! delay is modelled by the sending component.

use simbricks_base::{Kernel, MsgType, OwnedMsg, PktBuf, PortId, SimTime};

/// Message type for Ethernet packets.
pub const MSG_ETH_PACKET: MsgType = 0x40;

/// An Ethernet frame crossing a SimBricks channel.
///
/// The frame bytes live in a pooled [`PktBuf`]: cloning the packet (e.g. a
/// switch flooding it out of several ports) is a reference-count bump, not a
/// copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthPacket {
    pub frame: PktBuf,
}

impl EthPacket {
    pub fn new(frame: impl Into<PktBuf>) -> Self {
        EthPacket {
            frame: frame.into(),
        }
    }

    pub fn len(&self) -> usize {
        self.frame.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frame.is_empty()
    }

    /// Encode into a (message type, payload) pair. The frame is carried
    /// verbatim; the length field of the interface definition is implicit in
    /// the slot's payload length.
    pub fn encode(&self) -> (MsgType, &[u8]) {
        (MSG_ETH_PACKET, &self.frame)
    }

    /// Decode a received SimBricks message into an Ethernet packet (refcount
    /// bump on the shared buffer, no byte copy).
    pub fn decode(msg: &OwnedMsg) -> Option<EthPacket> {
        if msg.ty == MSG_ETH_PACKET {
            Some(EthPacket {
                frame: msg.data.clone(),
            })
        } else {
            None
        }
    }

    /// Decode, taking ownership of the message buffer (no copy).
    pub fn decode_owned(msg: OwnedMsg) -> Option<EthPacket> {
        if msg.ty == MSG_ETH_PACKET {
            Some(EthPacket { frame: msg.data })
        } else {
            None
        }
    }
}

/// Send an Ethernet frame on `port` of `kernel` at the current virtual time.
pub fn send_packet(kernel: &mut Kernel, port: PortId, frame: &[u8]) {
    kernel.send(port, MSG_ETH_PACKET, frame);
}

/// Send an Ethernet frame the caller already owns as a [`PktBuf`]; on queue
/// backpressure the buffer moves into the port's outbox without a copy.
pub fn send_packet_buf(kernel: &mut Kernel, port: PortId, frame: PktBuf) {
    kernel.send_buf(port, MSG_ETH_PACKET, frame);
}

/// Compute the serialization (transmission) delay of a frame at `bits_per_sec`,
/// which link models add on top of the channel's propagation latency.
pub fn serialization_delay(frame_len: usize, bits_per_sec: u64) -> SimTime {
    simbricks_base::transmission_time(frame_len, bits_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{bw, OwnedMsg, SimTime};

    #[test]
    fn encode_decode_roundtrip() {
        let p = EthPacket::new(vec![1, 2, 3, 4, 5]);
        let (ty, payload) = p.encode();
        assert_eq!(ty, MSG_ETH_PACKET);
        let msg = OwnedMsg::new(SimTime::from_ns(5), ty, payload.to_vec());
        assert_eq!(EthPacket::decode(&msg), Some(p.clone()));
        assert_eq!(EthPacket::decode_owned(msg), Some(p));
    }

    #[test]
    fn foreign_message_types_rejected() {
        let msg = OwnedMsg::new(SimTime::ZERO, 0x10, vec![1, 2, 3]);
        assert!(EthPacket::decode(&msg).is_none());
        assert!(EthPacket::decode_owned(msg).is_none());
    }

    #[test]
    fn serialization_delay_matches_line_rate() {
        // 1500 B at 10 Gbps = 1.2 us
        assert_eq!(
            serialization_delay(1500, bw::B10G),
            SimTime::from_ns(1200)
        );
        // 64 B at 100 Gbps = 5.12 ns
        assert_eq!(
            serialization_delay(64, bw::B100G),
            SimTime::from_ps(5120)
        );
    }

    #[test]
    fn empty_frame_handling() {
        let p = EthPacket::new(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
