//! # simbricks-replay
//!
//! Time-travel replay over checkpoint rings. A ring directory (recorded by
//! `simbricks-run --checkpoint-ring` or [`record_ring`]) holds the exact
//! scenario text, ring metadata, and a bounded set of whole-experiment SBCK
//! snapshots taken at every multiple of the ring period. Because every
//! SimBricks run is bit-deterministic, those snapshots are enough to
//!
//! * **seek** — restore the newest snapshot at or below any virtual time `t`
//!   and step forward to exactly `t`, exposing the kernel clocks, per-port
//!   pending queue depths, event-log tails, and model state at that instant
//!   ([`Replay::seek`]);
//! * **bisect** — given two rings of the same scenario (or a ring and a live
//!   re-run), find the *first* event where their logs diverge
//!   ([`Replay::bisect`], [`bisect`]).
//!
//! The bisect never materializes full logs for whole runs. Each side is
//! replayed once in *fingerprint-only* mode: the restored log prefix folds
//! into per-epoch FNV accumulators (one epoch per ring period) and the tail
//! is re-simulated from the newest snapshot, yielding one fingerprint per
//! (component, epoch) in O(epochs) memory. Comparing the fingerprint vectors
//! pins the first divergent epoch; a second replay per side restores the
//! newest snapshot at or below that epoch's start, materializes only the
//! window, and a labeled merge (ordered by virtual time, component build
//! order, record order — the same total order as [`EventLog::merge`])
//! reports the first differing entry. Four replays in the worst case, two
//! when the runs are identical — within the ⌈log2(epochs)⌉+1 budget a
//! snapshot-space binary search would need, without its per-probe replays.

use std::path::{Path, PathBuf};

use simbricks_base::{EventLog, KernelStats, LogEntry, PortId, SimTime};
use simbricks_runner::{
    ring_entries, Execution, Experiment, PartitionBuilder, RingMeta, RunResult,
    RING_SCENARIO_FILE,
};
use simbricks_scenario::build_from_toml;

/// Rebuilds an experiment from the recorded scenario text. Ring directories
/// written by `simbricks-run` rebuild through the TOML lowering
/// ([`simbricks_scenario::build_from_toml`]); tests and embedders may
/// substitute any deterministic build of the same topology.
pub type BuildFn = fn(&str, &mut PartitionBuilder);

/// A replayable checkpoint ring: metadata, scenario text, and the snapshot
/// files found on disk, oldest first.
pub struct Replay {
    dir: PathBuf,
    meta: RingMeta,
    scenario: String,
    entries: Vec<(SimTime, PathBuf)>,
    build: BuildFn,
}

impl Replay {
    /// Open a ring directory recorded from a TOML scenario.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        Self::open_with(dir, build_from_toml)
    }

    /// Open a ring directory whose experiment is rebuilt by `build` instead
    /// of the TOML lowering (the scenario text is passed through verbatim).
    pub fn open_with(dir: impl Into<PathBuf>, build: BuildFn) -> Result<Self, String> {
        let dir = dir.into();
        let meta = RingMeta::read_from(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let spath = dir.join(RING_SCENARIO_FILE);
        let scenario = std::fs::read_to_string(&spath)
            .map_err(|e| format!("read {}: {e}", spath.display()))?;
        let entries =
            ring_entries(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        Ok(Replay { dir, meta, scenario, entries, build })
    }

    /// The directory this ring was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Ring metadata (scenario name, period, keep bound, run end).
    pub fn meta(&self) -> &RingMeta {
        &self.meta
    }

    /// Exact scenario text the ring was recorded from.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// Snapshots on disk as (virtual time, path), oldest first.
    pub fn entries(&self) -> &[(SimTime, PathBuf)] {
        &self.entries
    }

    fn build_experiment(&self) -> Experiment {
        let mut pb = PartitionBuilder::new_local();
        (self.build)(&self.scenario, &mut pb);
        pb.into_experiment()
    }

    /// Rebuild the experiment and restore the newest snapshot at or below
    /// `t` (a fresh build from virtual time zero when the ring holds none).
    /// Returns the experiment and the time it now stands at.
    pub fn restore_to(&self, t: SimTime) -> Result<(Experiment, SimTime), String> {
        let mut exp = self.build_experiment();
        match self.entries.iter().rev().find(|(at, _)| *at <= t) {
            Some((at, path)) => {
                exp.restore(path)
                    .map_err(|e| format!("restore {}: {e}", path.display()))?;
                Ok((exp, *at))
            }
            None => Ok((exp, SimTime::ZERO)),
        }
    }

    /// Seek to virtual time `t`: restore the newest snapshot at or below `t`,
    /// deterministically step every component forward to exactly `t`, and
    /// capture the state there. `t` must lie before the recorded run end.
    pub fn seek(&self, t: SimTime) -> Result<SeekState, String> {
        if t >= self.meta.end {
            return Err(format!(
                "seek time {t} is at or past the recorded run end {}",
                self.meta.end
            ));
        }
        let (mut exp, from) = self.restore_to(t)?;
        if t > from {
            exp.freeze_at(t)
                .map_err(|e| format!("stepping from {from} to {t}: {e}"))?;
        }
        SeekState::capture(&exp, t, from)
    }

    /// Bisect this ring against another ring of the same scenario. See
    /// [`bisect`].
    pub fn bisect(&self, other: &Replay) -> Result<BisectReport, String> {
        bisect(&Side::Ring(self), &Side::Ring(other))
    }

    /// Bisect this ring against a live re-run: side B has no snapshots, so
    /// its two replays both start from virtual time zero, rebuilt by `build`
    /// from `scenario`.
    pub fn bisect_live(&self, scenario: &str, build: BuildFn) -> Result<BisectReport, String> {
        bisect(&Side::Ring(self), &Side::Live { scenario, build })
    }
}

// ---------------------------------------------------------------------------
// Seek
// ---------------------------------------------------------------------------

/// Frozen state of one component at a seek time.
pub struct ComponentState {
    pub name: String,
    /// Kernel clock (equals the seek time once frozen).
    pub now: SimTime,
    /// Kernel counters. Sync counters (`syncs_sent`, pause promises) depend
    /// on the checkpoint schedule and are excluded from [`Self::sim_eq`];
    /// everything simulation-visible must match a fresh run bit for bit.
    pub stats: KernelStats,
    /// Pending message depth per port, in port order.
    pub port_pending: Vec<usize>,
    /// Full event log up to the seek time (the restored snapshot carries the
    /// prefix). Fingerprint-only logs carry accumulators, not entries.
    pub log: EventLog,
    /// Encoded model state (without the kernel record).
    pub model_state: Vec<u8>,
}

impl ComponentState {
    /// Bit-equality of everything the simulation can observe: clock, event
    /// log, per-port queue depths, and model state. Kernel sync counters are
    /// deliberately excluded — quiescing emits pause promises, so a
    /// ring-recording run legitimately sends more SYNCs than an
    /// uninterrupted one while computing the exact same simulation.
    pub fn sim_eq(&self, other: &ComponentState) -> bool {
        self.name == other.name
            && self.now == other.now
            && self.port_pending == other.port_pending
            && self.model_state == other.model_state
            && self.log.recorded() == other.log.recorded()
            && self.log.entries() == other.log.entries()
            && self.log.fingerprint() == other.log.fingerprint()
    }
}

/// Snapshot of the whole experiment at a seek time, in component build order.
pub struct SeekState {
    /// The seek time (every component's clock stands exactly here).
    pub time: SimTime,
    /// Ring entry the seek restored from (zero for a fresh build).
    pub restored_from: SimTime,
    pub components: Vec<ComponentState>,
}

impl SeekState {
    /// Capture the state of a quiesced experiment. Public so harnesses can
    /// compare a seek against a fresh run they froze themselves.
    pub fn capture(exp: &Experiment, t: SimTime, from: SimTime) -> Result<Self, String> {
        let models = exp
            .model_states()
            .map_err(|e| format!("snapshotting model state: {e}"))?;
        let mut components = Vec::new();
        for (i, name) in exp.component_names().into_iter().enumerate() {
            let k = exp.kernel(i);
            components.push(ComponentState {
                name,
                now: k.now(),
                stats: k.stats(),
                port_pending: (0..k.num_ports()).map(|p| k.port_pending(PortId(p))).collect(),
                log: k.event_log().clone(),
                model_state: models[i].clone(),
            });
        }
        Ok(SeekState { time: t, restored_from: from, components })
    }

    /// [`ComponentState::sim_eq`] across every component, in order.
    pub fn sim_eq(&self, other: &SeekState) -> bool {
        self.time == other.time
            && self.components.len() == other.components.len()
            && self
                .components
                .iter()
                .zip(&other.components)
                .all(|(a, b)| a.sim_eq(b))
    }
}

// ---------------------------------------------------------------------------
// Bisect
// ---------------------------------------------------------------------------

/// One side of a bisect.
pub enum Side<'a> {
    /// A recorded ring: replays restore from its snapshots.
    Ring(&'a Replay),
    /// A live re-run: no snapshots, every replay starts from virtual time
    /// zero, rebuilt by `build` from `scenario`.
    Live { scenario: &'a str, build: BuildFn },
}

impl Side<'_> {
    fn restored(&self, t: SimTime) -> Result<(Experiment, SimTime), String> {
        match self {
            Side::Ring(r) => r.restore_to(t),
            Side::Live { scenario, build } => {
                let mut pb = PartitionBuilder::new_local();
                build(scenario, &mut pb);
                Ok((pb.into_experiment(), SimTime::ZERO))
            }
        }
    }
}

/// The first divergent event between two runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Epoch (of the ring period) the fingerprint pass pinned.
    pub epoch: usize,
    /// Virtual time of the first divergent event.
    pub time: SimTime,
    /// Component the divergent entry belongs to.
    pub component: String,
    /// Side A's entry at the divergence point (`None`: A's log ended here).
    pub a: Option<LogEntry>,
    /// Side B's entry at the divergence point (`None`: B's log ended here).
    pub b: Option<LogEntry>,
}

/// Outcome of a bisect.
pub struct BisectReport {
    /// Epoch length used for the fingerprint comparison (the ring period).
    pub period: SimTime,
    /// Number of epochs covering the run.
    pub epochs: usize,
    /// Replays spent: 2 for identical runs, 4 when a divergence was pinned —
    /// always within the ⌈log2(epochs)⌉+1 budget of a snapshot binary search.
    pub replays: usize,
    /// `None` when the runs are bit-identical.
    pub divergence: Option<Divergence>,
}

/// Per-component fingerprint vectors for a whole run: one replay, restored
/// from the side's newest snapshot with the log prefix folded into
/// fingerprint-only accumulators, then re-simulated to the end.
fn epoch_fps(
    side: &Side<'_>,
    period: SimTime,
    epochs: usize,
) -> Result<Vec<(String, Vec<u64>)>, String> {
    let (mut exp, _) = side.restored(SimTime::from_ps(u64::MAX))?;
    if exp.component_names().is_empty() {
        return Err("experiment has no components".into());
    }
    if !exp.kernel(0).event_log().is_enabled() {
        return Err(
            "run was recorded without event logs (set `log = true` in the scenario)".into(),
        );
    }
    exp.convert_logs_fingerprint_only(period);
    let r = exp.run(Execution::Sequential);
    r.component_names
        .iter()
        .zip(&r.logs)
        .map(|(name, log)| {
            let fps = log
                .epoch_fingerprints(period, epochs)
                .ok_or_else(|| format!("{name}: log epoch does not match the ring period"))?;
            Ok((name.clone(), fps))
        })
        .collect()
}

/// Materialize one epoch's entries for a side: restore the newest snapshot
/// at or below the epoch start, reset the logs (dropping the restored
/// prefix), run to the epoch end, and return the window's entries labeled
/// with their component index — ordered by (time, component, record order),
/// the same total order as [`EventLog::merge`].
fn epoch_window(
    side: &Side<'_>,
    epoch: usize,
    period: SimTime,
) -> Result<Vec<(usize, LogEntry)>, String> {
    let start = SimTime::from_ps(epoch as u64 * period.as_ps());
    let (mut exp, _) = side.restored(start)?;
    let end = exp.end_time();
    let stop = SimTime::from_ps(((epoch as u64 + 1) * period.as_ps()).min(end.as_ps()));
    exp.reset_logs_materialized();
    let logs: Vec<EventLog> = if stop < end {
        exp.freeze_at(stop)
            .map_err(|e| format!("replaying epoch {epoch} to {stop}: {e}"))?;
        (0..exp.component_names().len())
            .map(|i| exp.kernel(i).event_log().clone())
            .collect()
    } else {
        exp.run(Execution::Sequential).logs
    };
    let mut window: Vec<(SimTime, usize, usize, LogEntry)> = Vec::new();
    for (ci, log) in logs.iter().enumerate() {
        for (ei, entry) in log.entries().iter().enumerate() {
            if entry.time >= start && entry.time < stop {
                window.push((entry.time, ci, ei, *entry));
            }
        }
    }
    window.sort_by_key(|&(t, ci, ei, _)| (t, ci, ei));
    Ok(window.into_iter().map(|(_, ci, _, e)| (ci, e)).collect())
}

/// Find the first divergent event between two runs of the same scenario.
///
/// Pass 1 (one replay per side): per-epoch, per-component FNV fingerprints
/// of the complete logs, compared epoch by epoch. Identical vectors means
/// bit-identical runs — done in 2 replays. Pass 2 (one more replay per
/// side): only the first divergent epoch is materialized and its labeled
/// merge compared entry by entry.
pub fn bisect(a: &Side<'_>, b: &Side<'_>) -> Result<BisectReport, String> {
    let (period, end) = match (a, b) {
        (Side::Ring(ra), Side::Ring(rb)) => {
            if ra.meta.period != rb.meta.period {
                return Err(format!(
                    "ring periods differ ({} vs {}); re-record with matching --ring-period",
                    ra.meta.period, rb.meta.period
                ));
            }
            if ra.meta.end != rb.meta.end {
                return Err(format!(
                    "run ends differ ({} vs {}); the rings record different scenarios",
                    ra.meta.end, rb.meta.end
                ));
            }
            (ra.meta.period, ra.meta.end)
        }
        (Side::Ring(r), Side::Live { .. }) | (Side::Live { .. }, Side::Ring(r)) => {
            (r.meta.period, r.meta.end)
        }
        (Side::Live { .. }, Side::Live { .. }) => {
            return Err("at least one side of a bisect must be a recorded ring".into())
        }
    };
    let epochs = end.as_ps().div_ceil(period.as_ps()) as usize;

    let fa = epoch_fps(a, period, epochs)?;
    let fb = epoch_fps(b, period, epochs)?;
    let names_a: Vec<&String> = fa.iter().map(|(n, _)| n).collect();
    let names_b: Vec<&String> = fb.iter().map(|(n, _)| n).collect();
    if names_a != names_b {
        return Err(format!(
            "component sets differ (A: {names_a:?}, B: {names_b:?}); \
             the runs are not the same scenario"
        ));
    }

    let divergent_epoch = (0..epochs).find(|&e| {
        fa.iter().zip(&fb).any(|((_, va), (_, vb))| va[e] != vb[e])
    });
    let Some(epoch) = divergent_epoch else {
        return Ok(BisectReport { period, epochs, replays: 2, divergence: None });
    };

    let wa = epoch_window(a, epoch, period)?;
    let wb = epoch_window(b, epoch, period)?;
    for i in 0..wa.len().max(wb.len()) {
        let (ea, eb) = (wa.get(i), wb.get(i));
        if ea == eb {
            continue;
        }
        // The streams first differ here. The divergent event is whichever
        // entry sorts earlier in the merge order; on a same-slot payload
        // mismatch both sides are reported.
        let first = match (ea, eb) {
            (Some(x), Some(y)) => {
                if (y.1.time, y.0) < (x.1.time, x.0) {
                    y
                } else {
                    x
                }
            }
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (None, None) => unreachable!("i < max(len, len)"),
        };
        return Ok(BisectReport {
            period,
            epochs,
            replays: 4,
            divergence: Some(Divergence {
                epoch,
                time: first.1.time,
                component: fa[first.0].0.clone(),
                a: ea.map(|(_, e)| *e),
                b: eb.map(|(_, e)| *e),
            }),
        });
    }
    Err(format!(
        "epoch {epoch} fingerprints differ but its materialized windows are \
         identical — the replay is not deterministic; run `simcheck` and the \
         determinism matrix"
    ))
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// Record a checkpoint ring into `dir` while running `scenario` (rebuilt by
/// `build`) under `exec`: snapshots at every multiple of `period` (pruned to
/// the newest `keep`, 0 = keep all) plus the `RING.meta` / scenario sidecars
/// that [`Replay::open_with`] needs. The build must enable event logging.
pub fn record_ring(
    dir: impl Into<PathBuf>,
    scenario: &str,
    build: BuildFn,
    exec: Execution,
    period: SimTime,
    keep: usize,
) -> Result<RunResult, String> {
    let dir = dir.into();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut pb = PartitionBuilder::new_local();
    build(scenario, &mut pb);
    let mut exp = pb.into_experiment();
    let end = exp.end_time();
    exp.set_checkpoint_ring(period, keep);
    exp.set_ring_dir(dir.clone());
    let r = exp.run(exec);
    let meta = RingMeta { name: r.name.clone(), period, keep, end };
    meta.write_to(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let spath = dir.join(RING_SCENARIO_FILE);
    std::fs::write(&spath, scenario).map_err(|e| format!("write {}: {e}", spath.display()))?;
    Ok(r)
}
