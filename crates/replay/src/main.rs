//! `simbricks-replay` — inspect and bisect recorded checkpoint rings.
//!
//! ```text
//! simbricks-replay dump RING [--json]
//! simbricks-replay seek RING TIME [--tail N] [--json]
//! simbricks-replay bisect RING_A RING_B [--json]
//! ```
//!
//! `dump` lists a ring's metadata and snapshots. `seek` restores the newest
//! snapshot at or below TIME (a duration such as `150us`), steps forward to
//! exactly TIME, and prints each component's clock, queue depths, and event
//! log tail. `bisect` compares two rings of the same scenario and reports
//! the first divergent event; like `diff`, it exits 0 when the runs are
//! bit-identical, 1 when a divergence was found, 2 on error.

use std::process::ExitCode;

use simbricks_base::{fnv1a, LogEntry, SimTime};
use simbricks_replay::{BisectReport, Replay, SeekState};
use simbricks_scenario::parse_duration;

fn usage() -> ! {
    eprintln!(
        "usage: simbricks-replay dump RING [--json]\n       \
         simbricks-replay seek RING TIME [--tail N] [--json]\n       \
         simbricks-replay bisect RING_A RING_B [--json]"
    );
    std::process::exit(2);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn entry_json(e: &LogEntry) -> String {
    format!(
        "{{\"time_ps\": {}, \"tag\": \"{}\", \"a\": {}, \"b\": {}}}",
        e.time.as_ps(),
        json_escape(e.tag),
        e.a,
        e.b
    )
}

fn dump(ring: &Replay, json: bool) {
    let m = ring.meta();
    if json {
        let mut s = format!(
            "{{\n  \"name\": \"{}\",\n  \"period_ps\": {},\n  \"keep\": {},\n  \
             \"end_ps\": {},\n  \"entries\": [",
            json_escape(&m.name),
            m.period.as_ps(),
            m.keep,
            m.end.as_ps()
        );
        for (i, (t, _)) in ring.entries().iter().enumerate() {
            s.push_str(if i == 0 { "" } else { ", " });
            s.push_str(&t.as_ps().to_string());
        }
        s.push_str("]\n}");
        println!("{s}");
    } else {
        println!("ring {:?}: period={} keep={} end={}", m.name, m.period, m.keep, m.end);
        for (t, path) in ring.entries() {
            println!("  {t}  {}", path.display());
        }
    }
}

fn seek(ring: &Replay, state: &SeekState, tail: usize, json: bool) {
    if json {
        let mut s = format!(
            "{{\n  \"name\": \"{}\",\n  \"time_ps\": {},\n  \"restored_from_ps\": {},\n  \
             \"components\": [\n",
            json_escape(&ring.meta().name),
            state.time.as_ps(),
            state.restored_from.as_ps()
        );
        for (i, c) in state.components.iter().enumerate() {
            let entries = c.log.entries();
            let tail_entries: Vec<String> = entries
                [entries.len().saturating_sub(tail)..]
                .iter()
                .map(entry_json)
                .collect();
            let depths: Vec<String> =
                c.port_pending.iter().map(|d| d.to_string()).collect();
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"now_ps\": {}, \"msgs_delivered\": {}, \
                 \"timers_fired\": {}, \"port_pending\": [{}], \"log_len\": {}, \
                 \"model_state_fnv\": \"{:#018x}\", \"log_tail\": [{}]}}{}\n",
                json_escape(&c.name),
                c.now.as_ps(),
                c.stats.msgs_delivered,
                c.stats.timers_fired,
                depths.join(", "),
                c.log.recorded(),
                fnv1a(&c.model_state),
                tail_entries.join(", "),
                if i + 1 < state.components.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}");
        println!("{s}");
    } else {
        println!(
            "seek {} (restored from {}):",
            state.time, state.restored_from
        );
        for c in &state.components {
            let depths: Vec<String> =
                c.port_pending.iter().map(|d| d.to_string()).collect();
            println!(
                "  {}: now={} delivered={} timers={} pending=[{}] log={} entries \
                 model_fnv={:#018x}",
                c.name,
                c.now,
                c.stats.msgs_delivered,
                c.stats.timers_fired,
                depths.join(","),
                c.log.recorded(),
                fnv1a(&c.model_state)
            );
            let entries = c.log.entries();
            for e in &entries[entries.len().saturating_sub(tail)..] {
                println!("    {e}");
            }
        }
    }
}

fn report_bisect(r: &BisectReport, json: bool) -> ExitCode {
    if json {
        let div = match &r.divergence {
            None => "null".to_string(),
            Some(d) => format!(
                "{{\"epoch\": {}, \"time_ps\": {}, \"component\": \"{}\", \"a\": {}, \"b\": {}}}",
                d.epoch,
                d.time.as_ps(),
                json_escape(&d.component),
                d.a.as_ref().map_or("null".into(), entry_json),
                d.b.as_ref().map_or("null".into(), entry_json)
            ),
        };
        println!(
            "{{\n  \"period_ps\": {},\n  \"epochs\": {},\n  \"replays\": {},\n  \
             \"divergence\": {div}\n}}",
            r.period.as_ps(),
            r.epochs,
            r.replays
        );
    } else {
        match &r.divergence {
            None => println!(
                "no divergence: runs are bit-identical ({} epochs, {} replays)",
                r.epochs, r.replays
            ),
            Some(d) => {
                println!(
                    "first divergence at {} in {:?} (epoch {} of {}, {} replays):",
                    d.time, d.component, d.epoch, r.epochs, r.replays
                );
                match &d.a {
                    Some(e) => println!("  A: {e}"),
                    None => println!("  A: <log ended>"),
                }
                match &d.b {
                    Some(e) => println!("  B: {e}"),
                    None => println!("  B: <log ended>"),
                }
            }
        }
    }
    if r.divergence.is_some() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("simbricks-replay: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| usage());
    let mut positional: Vec<String> = Vec::new();
    let mut json = false;
    let mut tail: usize = 8;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--tail" => {
                let n = args.next().unwrap_or_else(|| usage());
                tail = match n.parse() {
                    Ok(n) => n,
                    Err(_) => return fail(&format!("--tail `{n}` is not a number")),
                };
            }
            "--help" | "-h" => usage(),
            _ => positional.push(a),
        }
    }
    match (cmd.as_str(), positional.as_slice()) {
        ("dump", [dir]) => match Replay::open(dir.as_str()) {
            Ok(ring) => {
                dump(&ring, json);
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        ("seek", [dir, time]) => {
            let t = match parse_duration(time).or_else(|e| {
                time.parse::<u64>().map(SimTime::from_ps).map_err(|_| e)
            }) {
                Ok(t) => t,
                Err(e) => return fail(&format!("bad TIME: {e}")),
            };
            let ring = match Replay::open(dir.as_str()) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            match ring.seek(t) {
                Ok(state) => {
                    seek(&ring, &state, tail, json);
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        ("bisect", [a, b]) => {
            let ra = match Replay::open(a.as_str()) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            let rb = match Replay::open(b.as_str()) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            match ra.bisect(&rb) {
                Ok(r) => report_bisect(&r, json),
                Err(e) => fail(&e),
            }
        }
        _ => usage(),
    }
}
