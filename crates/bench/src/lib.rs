//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures. Every binary in `src/bin/` builds experiments from
//! these helpers, runs them, and prints the corresponding rows/series.
//!
//! Durations are scaled down from the paper's 1–10 s of virtual time so each
//! harness completes in seconds to minutes on a laptop-class machine; the
//! *shape* of each result (who wins, by what factor, where crossovers fall)
//! is what EXPERIMENTS.md compares against the paper.

use simbricks::apps::{IperfUdpClient, IperfUdpServer, NetperfClient, NetperfServer};
use simbricks::hostsim::{HostConfig, HostKind, HostModel, NicModelKind};
use simbricks::netsim::des::{EndpointApp, EndpointCtx};
use simbricks::netsim::{DesNetwork, LinkParams, QueueDiscipline, SwitchBm, SwitchConfig, TofinoConfig, TofinoSwitch};
use simbricks::netstack::{CongestionControl, SocketAddr, SocketEvent, SocketId, StackConfig};
use simbricks::proto::{Ipv4Addr, MacAddr};
use simbricks::runner::{attach_host_nic, Execution, Experiment, PartitionBuilder};
use simbricks::scenario::Scenario;
use simbricks::SimTime;

/// Re-export for binaries.
pub use simbricks;

/// Generators for the declarative TOML documents the bench harnesses run.
///
/// Every standard topology is expressed as a scenario document and lowered
/// through [`simbricks::scenario`] — the generated text is also exactly what
/// a distributed worker rebuilds its partition from, and what you can dump
/// into a file and replay with `simbricks-run`.
pub mod scen {
    use std::fmt::Write as _;

    use super::{HostKind, SimTime};

    /// Scenario-file spelling of a [`HostKind`].
    pub fn kind_str(kind: HostKind) -> &'static str {
        match kind {
            HostKind::Gem5Timing => "gem5_timing",
            HostKind::QemuTiming => "qemu_timing",
            HostKind::QemuKvm => "qemu_kvm",
        }
    }

    /// The Fig. 1 end-to-end dctcp document: two client/server pairs on
    /// separate edge switches joined by one shared bottleneck link, ECN
    /// marking threshold `k_packets` on both switches.
    pub fn dctcp_e2e_toml(
        k_packets: usize,
        duration: SimTime,
        host: HostKind,
        log: bool,
    ) -> String {
        let kind = kind_str(host);
        let mut t = String::new();
        let _ = write!(
            t,
            "[scenario]\nname = \"dctcp-e2e\"\nduration = \"{}ps\"\nend_margin = \"5ms\"\nlog = {log}\n",
            duration.as_ps()
        );
        for pair in 0..2u32 {
            let port = 5000 + pair;
            let _ = write!(
                t,
                "\n[[host]]\nname = \"s{pair}\"\nkind = \"{kind}\"\ncongestion = \"dctcp\"\n\
                 mtu = 4000\nindex = {}\n\n[host.app]\ntype = \"iperf_tcp_server\"\nport = {port}\n",
                pair * 2
            );
            let _ = write!(
                t,
                "\n[[host]]\nname = \"c{pair}\"\nkind = \"{kind}\"\ncongestion = \"dctcp\"\n\
                 mtu = 4000\nindex = {}\n\n[host.app]\ntype = \"iperf_tcp_client\"\n\
                 server = \"s{pair}\"\nport = {port}\n",
                pair * 2 + 1
            );
        }
        let _ = write!(
            t,
            "\n[[switch]]\nname = \"switch-clients\"\necn_k = {k_packets}\n\
             \n[[switch]]\nname = \"switch-servers\"\necn_k = {k_packets}\n"
        );
        // Link order fixes port numbering: servers [s0, s1, uplink], clients
        // [c0, c1, uplink] — the hand-rolled harness's port layout.
        for pair in 0..2u32 {
            let _ = write!(
                t,
                "\n[[link]]\nname = \"eth-s{pair}\"\na = \"s{pair}\"\nb = \"switch-servers\"\n\
                 \n[[link]]\nname = \"eth-c{pair}\"\na = \"c{pair}\"\nb = \"switch-clients\"\n"
            );
        }
        t.push_str("\n[[link]]\nname = \"uplink\"\na = \"switch-clients\"\nb = \"switch-servers\"\n");
        t
    }

    /// The §7.6 determinism document: two gem5-like hosts running netperf
    /// through the behavioural switch, event logging on.
    pub fn netperf_logged_toml(stream: SimTime, rr: SimTime) -> String {
        let mut t = String::new();
        let _ = write!(
            t,
            "[scenario]\nname = \"sec76-netperf\"\nduration = \"{}ps\"\nend_margin = \"2ms\"\nlog = true\n",
            (stream + rr).as_ps()
        );
        let _ = write!(
            t,
            "\n[[host]]\nname = \"server\"\nkind = \"gem5_timing\"\n\
             \n[host.app]\ntype = \"netperf_server\"\n\
             \n[[host]]\nname = \"client\"\nkind = \"gem5_timing\"\n\
             \n[host.app]\ntype = \"netperf_client\"\nserver = \"server\"\n\
             stream_duration = \"{}ps\"\nrr_duration = \"{}ps\"\n",
            stream.as_ps(),
            rr.as_ps()
        );
        t.push_str(
            "\n[[switch]]\nname = \"switch\"\n\
             \n[[link]]\nname = \"eth-server\"\na = \"server\"\nb = \"switch\"\n\
             \n[[link]]\nname = \"eth-client\"\na = \"client\"\nb = \"switch\"\n",
        );
        t
    }

    /// The Fig. 6/7 scale-up document: `hosts` hosts (one UDP server, the
    /// rest paced UDP clients) behind a single switch in `w0`, host `i`
    /// assigned to partition `w{i % parts}`.
    pub fn udp_scaleup_toml(
        hosts: usize,
        kind: HostKind,
        duration: SimTime,
        parts: usize,
        log: bool,
        hier: bool,
        barrier: bool,
    ) -> String {
        let kind = kind_str(kind);
        let per_client_rate = 1_000_000_000 / (hosts.max(2) as u64 - 1);
        let mut t = String::new();
        let _ = write!(
            t,
            "[scenario]\nname = \"scaleup\"\nduration = \"{}ps\"\nend_margin = \"2ms\"\n\
             log = {log}\nhier_sync = {hier}\nglobal_barrier = {barrier}\n",
            duration.as_ps()
        );
        for i in 0..hosts {
            let part = i % parts;
            if i == 0 {
                let _ = write!(
                    t,
                    "\n[[host]]\nname = \"server\"\nkind = \"{kind}\"\npartition = \"w0\"\n\
                     \n[host.app]\ntype = \"iperf_udp_server\"\nport = 9000\n"
                );
            } else {
                let _ = write!(
                    t,
                    "\n[[host]]\nname = \"client{i}\"\nkind = \"{kind}\"\npartition = \"w{part}\"\n\
                     \n[host.app]\ntype = \"iperf_udp_client\"\nserver = \"server\"\nport = 9000\n\
                     rate = {per_client_rate}\npayload = 800\n"
                );
            }
            let peer = if i == 0 { "server".to_string() } else { format!("client{i}") };
            let _ = write!(t, "\n[[link]]\nname = \"eth{i}\"\na = \"{peer}\"\nb = \"switch\"\n");
        }
        t.push_str("\n[[switch]]\nname = \"switch\"\npartition = \"w0\"\n");
        t
    }

    /// The Fig. 8 scale-out document: `racks` racks of `hpr` hosts (first
    /// half memcached servers, second half memaslap clients fanning out to
    /// every server) behind per-rack ToR switches and one core switch in
    /// `w0`; rack `r` lives in partition `w{r % parts}`.
    pub fn memcache_racks_toml(
        racks: usize,
        hpr: usize,
        kind: HostKind,
        parts: usize,
        log: bool,
        hier: bool,
    ) -> String {
        let kind = kind_str(kind);
        let mut servers = String::new();
        for r in 0..racks {
            for h in 0..hpr / 2 {
                if !servers.is_empty() {
                    servers.push_str(", ");
                }
                let _ = write!(servers, "\"r{r}h{h}\"");
            }
        }
        let mut t = String::new();
        let _ = write!(
            t,
            "[scenario]\nname = \"memcache-racks\"\nduration = \"5ms\"\nend_margin = \"2ms\"\n\
             log = {log}\nhier_sync = {hier}\n"
        );
        for r in 0..racks {
            let part = r % parts;
            for h in 0..hpr {
                let _ = write!(
                    t,
                    "\n[[host]]\nname = \"r{r}h{h}\"\nkind = \"{kind}\"\npartition = \"w{part}\"\n"
                );
                if h < hpr / 2 {
                    t.push_str("\n[host.app]\ntype = \"memcached_server\"\n");
                } else {
                    let _ = write!(
                        t,
                        "\n[host.app]\ntype = \"memaslap_client\"\nservers = [{servers}]\n\
                         concurrency = 2\nvalue_size = 64\n"
                    );
                }
                let _ = write!(
                    t,
                    "\n[[link]]\nname = \"r{r}h{h}-eth\"\na = \"r{r}h{h}\"\nb = \"tor{r}\"\n"
                );
            }
            let _ = write!(t, "\n[[switch]]\nname = \"tor{r}\"\npartition = \"w{part}\"\n");
            let _ = write!(t, "\n[[link]]\nname = \"up{r}\"\na = \"tor{r}\"\nb = \"core\"\n");
        }
        t.push_str("\n[[switch]]\nname = \"core\"\npartition = \"w0\"\n");
        t
    }
}

/// Parse and lower a generated scenario document onto `pb`. Panics on
/// invalid input — the generators above are the only callers, so a failure
/// is a bench bug, not user error.
fn lower_generated(toml: &str, pb: &mut PartitionBuilder) -> simbricks::scenario::Lowered {
    let spec = Scenario::from_toml_str(toml)
        .unwrap_or_else(|e| panic!("generated scenario invalid: {e}\n{toml}"));
    simbricks::scenario::lower(&spec, pb)
}

/// Result of one netperf-style run.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetperfResult {
    pub throughput_gbps: f64,
    pub latency_us: f64,
    pub wall_seconds: f64,
    pub virtual_time: SimTime,
    pub syncs: u64,
    pub barrier_waits: u64,
}

fn parse_report(report: &str) -> (f64, f64) {
    let tput = report
        .split_whitespace()
        .find_map(|t| t.strip_prefix("tput=").and_then(|v| v.strip_suffix("Gbps")).and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);
    let lat = report
        .split_whitespace()
        .find_map(|t| t.strip_prefix("rr_latency=").and_then(|v| v.strip_suffix("us")).and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);
    (tput, lat)
}

/// Which network simulator to use in standard experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Net {
    SwitchBm,
    Des,
    Tofino,
}

/// Two hosts running netperf through a NIC pair and a network — the Tab. 1 /
/// Tab. 3 configuration.
pub fn netperf_config(
    host: HostKind,
    nic: NicModelKind,
    rtl_nic: bool,
    net: Net,
    stream: SimTime,
    rr: SimTime,
    pcie_latency: SimTime,
) -> NetperfResult {
    let total = stream + rr + SimTime::from_ms(5);
    let mut exp = Experiment::new("netperf", total).with_pcie_latency(pcie_latency);
    if !host.synchronized() {
        exp = exp.unsynchronized();
    }
    let server_cfg = HostConfig::new(host, 0).with_nic(nic);
    let client_cfg = HostConfig::new(host, 1).with_nic(nic);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(server_cfg.ip, 5201, 5202, stream, rr));
    let (_s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, rtl_nic);
    let (c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, rtl_nic);
    match net {
        Net::SwitchBm => {
            exp.add(
                "switch",
                Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
                vec![s_eth, c_eth],
            );
        }
        Net::Des => {
            let mut net = DesNetwork::new();
            let sw = net.add_switch();
            let a = net.add_external_port(0);
            let b = net.add_external_port(1);
            net.connect(a, sw, LinkParams::default());
            net.connect(b, sw, LinkParams::default());
            exp.add("des-net", Box::new(net), vec![s_eth, c_eth]);
        }
        Net::Tofino => {
            exp.add(
                "tofino",
                Box::new(TofinoSwitch::new(TofinoConfig { ports: 2, ..Default::default() })),
                vec![s_eth, c_eth],
            );
        }
    }
    let r = exp.run(Execution::Sequential);
    let client: &HostModel = r.model(c).unwrap();
    let (tput, lat) = parse_report(&client.app_report());
    let total_stats = r.total_stats();
    NetperfResult {
        throughput_gbps: tput,
        latency_us: lat,
        wall_seconds: r.wall_seconds(),
        virtual_time: r.virtual_time,
        syncs: total_stats.syncs_sent,
        barrier_waits: total_stats.barrier_waits,
    }
}

/// Build the Fig. 1 end-to-end dctcp experiment (2 client/server pairs, one
/// shared 10 G bottleneck with ECN threshold `k_packets`); returns the
/// experiment plus the server-host component ids whose iperf reports carry
/// the per-flow goodput. `log` enables event logging (bit-identity checks,
/// checkpoint demos).
pub fn dctcp_e2e_build(
    k_packets: usize,
    duration: SimTime,
    host: HostKind,
    log: bool,
) -> (Experiment, Vec<usize>) {
    let toml = scen::dctcp_e2e_toml(k_packets, duration, host, log);
    let mut pb = PartitionBuilder::new_local();
    let low = lower_generated(&toml, &mut pb);
    let servers = low
        .hosts
        .iter()
        .filter(|(name, _)| name.starts_with('s'))
        .map(|(_, id)| *id)
        .collect();
    (pb.into_experiment(), servers)
}

/// Aggregate goodput (Gbps) reported by the server hosts of a completed
/// [`dctcp_e2e_build`] run.
pub fn dctcp_goodput(r: &simbricks::runner::RunResult, servers: &[usize]) -> f64 {
    let mut total = 0.0;
    for &s in servers {
        let host: &HostModel = r.model(s).unwrap();
        let report = host.app_report();
        let g = report
            .split_whitespace()
            .find_map(|t| t.strip_prefix("goodput=").and_then(|v| v.strip_suffix("Gbps")).and_then(|v| v.parse::<f64>().ok()))
            .unwrap_or(0.0);
        total += g;
    }
    total
}

/// Result of a dctcp fixed-threshold run: aggregate goodput in Gbps of two
/// flows sharing a single 10 Gbps bottleneck link between two switches (the
/// Fig. 1 topology: 2 clients and 2 servers, one shared bottleneck, ECN
/// marking threshold K at the bottleneck queue).
pub fn dctcp_end_to_end(k_packets: usize, duration: SimTime, host: HostKind) -> f64 {
    let (exp, servers) = dctcp_e2e_build(k_packets, duration, host, false);
    let r = exp.run(Execution::Sequential);
    dctcp_goodput(&r, &servers)
}

/// The standard determinism-check configuration (§7.6): two gem5-like hosts
/// running netperf through the behavioural switch, with event logging on.
pub fn netperf_logged_experiment(stream: SimTime, rr: SimTime) -> Experiment {
    let toml = scen::netperf_logged_toml(stream, rr);
    let mut pb = PartitionBuilder::new_local();
    lower_generated(&toml, &mut pb);
    pb.into_experiment()
}

/// An iperf-like endpoint running directly inside the DES network simulator —
/// the "ns-3 alone" baseline of Fig. 1 (no host, NIC, or driver model).
pub struct IperfEndpoint {
    server: Option<(Ipv4Addr, u16)>,
    listen_port: Option<u16>,
    sock: Option<SocketId>,
    duration: SimTime,
    pub bytes: u64,
    chunk: Vec<u8>,
}

impl IperfEndpoint {
    pub fn client(server: Ipv4Addr, port: u16, duration: SimTime) -> Self {
        IperfEndpoint {
            server: Some((server, port)),
            listen_port: None,
            sock: None,
            duration,
            bytes: 0,
            chunk: vec![0x42; 32 * 1024],
        }
    }
    pub fn server(port: u16) -> Self {
        IperfEndpoint {
            server: None,
            listen_port: Some(port),
            sock: None,
            duration: SimTime::ZERO,
            bytes: 0,
            chunk: Vec::new(),
        }
    }
    fn pump(&mut self, ctx: &mut EndpointCtx) {
        if let Some(s) = self.sock {
            loop {
                let n = ctx.stack.tcp_send(s, &self.chunk);
                self.bytes += n as u64;
                if n < self.chunk.len() {
                    break;
                }
            }
        }
    }
}

impl EndpointApp for IperfEndpoint {
    fn start(&mut self, ctx: &mut EndpointCtx) {
        if let Some(port) = self.listen_port {
            ctx.stack.tcp_listen(port);
        }
        if let Some((ip, port)) = self.server {
            self.sock = Some(ctx.stack.tcp_connect(ctx.now, ip, port));
            ctx.timers.push((ctx.now + self.duration, 1));
        }
    }
    fn on_event(&mut self, ctx: &mut EndpointCtx, ev: SocketEvent) {
        match ev {
            SocketEvent::Connected(_) | SocketEvent::SendSpace(_) if self.server.is_some() => {
                self.pump(ctx)
            }
            SocketEvent::DataAvailable(s) | SocketEvent::Accepted { socket: s, .. }
                if self.listen_port.is_some() =>
            {
                let data = ctx.stack.tcp_recv(s, usize::MAX);
                self.bytes += data.len() as u64;
            }
            _ => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut EndpointCtx, _token: u64) {
        if let Some(s) = self.sock {
            ctx.stack.tcp_close(s);
        }
        *ctx.done = true;
    }
    fn report(&self) -> String {
        format!("bytes={}", self.bytes)
    }
}

/// The Fig. 1 "network simulator alone" baseline: two DCTCP flows simulated
/// entirely inside the DES network with idealized endpoints; returns the
/// aggregate goodput in Gbps.
pub fn dctcp_network_only(k_packets: usize, duration: SimTime) -> f64 {
    let mut exp = Experiment::new("dctcp-ns3-alone", duration + SimTime::from_ms(5));
    let mut net = DesNetwork::new();
    // Same topology as the end-to-end run: clients behind one switch, servers
    // behind another, a single shared 10 G bottleneck link with the ECN
    // marking queue in between.
    let sw_clients = net.add_switch();
    let sw_servers = net.add_switch();
    let bottleneck = LinkParams {
        queue: QueueDiscipline::EcnThreshold {
            threshold_pkts: k_packets,
            capacity_bytes: 1 << 20,
        },
        ..LinkParams::default()
    };
    net.connect(sw_clients, sw_servers, bottleneck);
    let mut servers = Vec::new();
    for pair in 0..2u32 {
        let sip = Ipv4Addr::from_index(100 + pair * 2);
        let cip = Ipv4Addr::from_index(101 + pair * 2);
        let scfg = StackConfig {
            ip: sip,
            mac: MacAddr::from_index(200 + pair as u64 * 2),
            congestion: CongestionControl::Dctcp,
            mtu: 4000,
            ..StackConfig::default()
        };
        let ccfg = StackConfig {
            ip: cip,
            mac: MacAddr::from_index(201 + pair as u64 * 2),
            congestion: CongestionControl::Dctcp,
            mtu: 4000,
            ..StackConfig::default()
        };
        let s = net.add_endpoint(scfg, Box::new(IperfEndpoint::server(5000 + pair as u16)));
        let c = net.add_endpoint(
            ccfg,
            Box::new(IperfEndpoint::client(sip, 5000 + pair as u16, duration)),
        );
        // Access links carry a single flow each and are not the bottleneck.
        net.connect(s, sw_servers, LinkParams::default());
        net.connect(c, sw_clients, LinkParams::default());
        servers.push(s);
    }
    let idx = exp.add("des-net", Box::new(net), vec![]);
    let r = exp.run(Execution::Sequential);
    let net: &DesNetwork = r.model(idx).unwrap();
    let mut total_bytes = 0u64;
    for s in servers {
        let rep = net.endpoint_report(s);
        total_bytes += rep
            .strip_prefix("bytes=")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
    }
    total_bytes as f64 * 8.0 / duration.as_secs_f64() / 1e9
}

/// Distributed-scenario builders (§5.4, Fig. 6/Fig. 8): the same topologies
/// as the in-process harness helpers, but expressed through a
/// [`PartitionBuilder`] so they can run
/// as true multi-process distributed simulations — one worker OS process per
/// partition, cross-partition Ethernet links bridged by loopback TCP proxies.
///
/// Scenarios are `key=value` pairs joined by `;` (e.g.
/// `racks=2;hpr=8;kind=gem5;parts=2;log=1`) so a self-`exec`ed worker can
/// rebuild exactly the configuration its orchestrator is running.
pub mod dist_scen {
    use simbricks::runner::PartitionBuilder;

    use super::*;

    /// Look up `key` in a `k=v;k=v` scenario string.
    pub fn get<'a>(scenario: &'a str, key: &str) -> Option<&'a str> {
        scenario
            .split(';')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.trim())
    }

    /// Look up an integer key, falling back to `default`.
    pub fn get_usize(scenario: &str, key: &str, default: usize) -> usize {
        get(scenario, key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Host kind encoded in the scenario (`kind=gem5` or `kind=qemu`).
    pub fn get_kind(scenario: &str) -> HostKind {
        match get(scenario, "kind") {
            Some("qemu") => HostKind::QemuTiming,
            _ => HostKind::Gem5Timing,
        }
    }

    /// Partition names `w0..w{parts-1}` used by all builders in this module.
    pub fn partition_names(parts: usize) -> Vec<String> {
        (0..parts).map(|w| format!("w{w}")).collect()
    }

    /// The Fig. 8 scale-out topology — racks of memcached/memaslap hosts
    /// behind ToR switches joined by a core switch — partitioned rack-wise:
    /// rack `r` (hosts, NICs, and its ToR) lives in partition `w{r % parts}`,
    /// the core switch in `w0`, and every ToR-to-core uplink whose rack lives
    /// elsewhere becomes a cross-partition link (exactly the paper's "one
    /// proxy pair per inter-host link" claim, on loopback).
    ///
    /// Scenario keys: `racks`, `hpr` (hosts per rack), `kind`, `parts`,
    /// `log` (1 = enable event logging for bit-identity checks), `hier`
    /// (1 = hierarchical sync; changes SYNC traffic only, never the log).
    pub fn build_memcache_racks(scenario: &str, pb: &mut PartitionBuilder) {
        let toml = scen::memcache_racks_toml(
            get_usize(scenario, "racks", 1),
            get_usize(scenario, "hpr", 8),
            get_kind(scenario),
            get_usize(scenario, "parts", 1),
            get_usize(scenario, "log", 0) == 1,
            get_usize(scenario, "hier", 0) == 1,
        );
        super::lower_generated(&toml, pb);
    }

    /// The Fig. 6/7 scale-up topology — N hosts running rate-limited UDP
    /// iperf through one switch — partitioned host-wise: host `i` lives in
    /// partition `w{i % parts}`, the switch in `w0`, so every Ethernet link
    /// of a host outside `w0` crosses a process boundary.
    ///
    /// Scenario keys: `hosts`, `kind`, `parts`, `dur_ms`, `log`, `hier`.
    pub fn build_udp_scaleup(scenario: &str, pb: &mut PartitionBuilder) {
        let toml = scen::udp_scaleup_toml(
            get_usize(scenario, "hosts", 2),
            get_kind(scenario),
            SimTime::from_ms(get_usize(scenario, "dur_ms", 5) as u64),
            get_usize(scenario, "parts", 1),
            get_usize(scenario, "log", 0) == 1,
            get_usize(scenario, "hier", 0) == 1,
            false,
        );
        super::lower_generated(&toml, pb);
    }
}

/// A k-ary fat-tree pod hierarchy for the sync-protocol scale-out matrix:
/// `k` pods of `k/2` edge switches with `hosts_per_edge` hosts each, one
/// aggregation switch per pod, one core switch — `k * k/2 * hosts_per_edge`
/// hosts total (k=8 ⇒ 128, k=16 with 8 hosts/edge ⇒ 1024).
///
/// The generator wires the *active spanning tree* of the fabric (one uplink
/// per switch): the behavioural switch is a flooding L2 learner, and a full
/// multipath fat-tree contains loops that would turn its first flood into a
/// broadcast storm — exactly why real L2 fabrics run STP. The latency
/// hierarchy is what matters for synchronization: host links are fast
/// (500 ns class), edge→agg uplinks sit at `edge_up_latency` and agg→core at
/// `core_up_latency`, giving hierarchical sync distinct latency classes to
/// form domains over and multi-hop floors to widen through.
#[derive(Clone, Copy, Debug)]
pub struct FatTree {
    /// Pod count (also the core switch's port count). Must be even.
    pub k: usize,
    /// Hosts attached to each edge switch.
    pub hosts_per_edge: usize,
    /// Latency of edge→aggregation uplinks.
    pub edge_up_latency: SimTime,
    /// Latency of aggregation→core uplinks.
    pub core_up_latency: SimTime,
}

impl FatTree {
    /// The canonical spec for a target host count: 128 ⇒ k=8 (4 hosts/edge),
    /// 512 ⇒ k=8 oversubscribed (16 hosts/edge), 1024 ⇒ k=16 (8 hosts/edge).
    /// Other counts pick k=8 and scale hosts_per_edge.
    pub fn for_hosts(hosts: usize) -> FatTree {
        let (k, hosts_per_edge) = match hosts {
            1024 => (16, 8),
            h => (8, (h / 32).max(2)),
        };
        FatTree {
            k,
            hosts_per_edge,
            edge_up_latency: SimTime::from_us(2),
            core_up_latency: SimTime::from_us(4),
        }
    }

    /// Edge switches per pod.
    pub fn edges_per_pod(&self) -> usize {
        self.k / 2
    }

    /// Total host count.
    pub fn hosts(&self) -> usize {
        self.k * self.edges_per_pod() * self.hosts_per_edge
    }

    /// Total component count (hosts, NICs, edge/agg/core switches).
    pub fn components(&self) -> usize {
        2 * self.hosts() + self.k * self.edges_per_pod() + self.k + 1
    }
}

/// Build and run the fat-tree sync workload: in every edge group, host 0
/// serves UDP and host 1 streams to the same-position server one pod over
/// (crossing edge→agg→core→agg→edge), while the remaining hosts idle — the
/// regime where per-link promise volume, not data traffic, dominates the
/// message count. Returns wall seconds and merged kernel statistics.
pub fn fat_tree_stats(
    ft: &FatTree,
    kind: HostKind,
    duration: SimTime,
    hier: bool,
    exec: Execution,
) -> (f64, simbricks::base::KernelStats) {
    assert!(ft.k >= 2 && ft.k.is_multiple_of(2), "fat-tree k must be even");
    assert!(ft.hosts_per_edge >= 2, "need a server and a client per edge");
    let epp = ft.edges_per_pod();
    let total_edges = ft.k * epp;
    let hpe = ft.hosts_per_edge;
    let mut exp = Experiment::new("fat-tree", duration + SimTime::from_ms(2));
    if hier {
        exp = exp.with_hier_sync();
    }
    let eth = exp.eth_params();
    let per_client_rate = 50_000_000; // 50 Mbit/s per active flow
    let mut agg_down: Vec<Vec<simbricks::base::ChannelEnd>> = (0..ft.k).map(|_| Vec::new()).collect();
    for e in 0..total_edges {
        let pod = e / epp;
        let mut ports = Vec::new();
        for h in 0..hpe {
            let idx = (e * hpe + h) as u32;
            let cfg = HostConfig::new(kind, idx);
            let app: Box<dyn simbricks::hostsim::Application> = if h == 0 {
                Box::new(IperfUdpServer::new(9000))
            } else if h == 1 {
                // Stream to the same-position server one pod over.
                let peer_edge = (e + epp) % total_edges;
                let server_ip = HostConfig::new(kind, (peer_edge * hpe) as u32).ip;
                Box::new(IperfUdpClient::new(
                    SocketAddr::new(server_ip, 9000),
                    per_client_rate,
                    800,
                    duration,
                ))
            } else {
                // Idle host: still a full host+NIC+links, still synchronized.
                Box::new(IperfUdpServer::new(9001))
            };
            let (_h, _n, host_eth) =
                attach_host_nic(&mut exp, &format!("e{e}h{h}"), cfg, app, false);
            ports.push(host_eth);
        }
        let (up, down) = simbricks::base::channel_pair(eth.with_latency(ft.edge_up_latency));
        ports.push(up);
        agg_down[pod].push(down);
        exp.add(
            format!("edge{e}"),
            Box::new(SwitchBm::new(SwitchConfig {
                ports: hpe + 1,
                ..Default::default()
            })),
            ports,
        );
    }
    let mut core_ports = Vec::new();
    for (pod, mut ports) in agg_down.into_iter().enumerate() {
        let (up, down) = simbricks::base::channel_pair(eth.with_latency(ft.core_up_latency));
        ports.push(up);
        core_ports.push(down);
        exp.add(
            format!("agg{pod}"),
            Box::new(SwitchBm::new(SwitchConfig {
                ports: epp + 1,
                ..Default::default()
            })),
            ports,
        );
    }
    exp.add(
        "core",
        Box::new(SwitchBm::new(SwitchConfig {
            ports: ft.k,
            ..Default::default()
        })),
        core_ports,
    );
    let r = exp.run(exec);
    if std::env::var_os("FT_DUMP").is_some() {
        let mut by_class: std::collections::BTreeMap<&str, (u64, u64, usize)> =
            std::collections::BTreeMap::new();
        for (name, s) in r.component_names.iter().zip(&r.stats) {
            let class = if name.ends_with(".host") {
                "host"
            } else if name.ends_with(".nic") {
                "nic"
            } else if name.starts_with("edge") {
                "edge"
            } else if name.starts_with("agg") {
                "agg"
            } else {
                "core"
            };
            let e = by_class.entry(class).or_default();
            e.0 += s.syncs_sent;
            e.1 += s.syncs_suppressed;
            e.2 += 1;
        }
        for (class, (sent, sup, n)) in by_class {
            eprintln!("FT_DUMP {class}: {n} comps, {sent} syncs ({} per comp), {sup} suppressed",
                sent / n as u64);
        }
    }
    (r.wall_seconds(), r.total_stats())
}

/// N client hosts plus one server host running rate-limited UDP iperf through
/// a single switch (the Fig. 7 scale-up workload), executed with the default
/// (or `SIMBRICKS_EXEC`-selected) executor. Returns wall-clock seconds and
/// the number of synchronization messages.
pub fn udp_scaleup(hosts: usize, host_kind: HostKind, duration: SimTime, barrier: bool) -> (f64, u64) {
    udp_scaleup_with(
        hosts,
        host_kind,
        duration,
        barrier,
        Execution::from_env_or(Execution::Sequential),
    )
}

/// [`udp_scaleup`] with an explicit executor — the Fig. 7 harness uses this
/// to compare sequential against sharded wall-clock on the same topology.
pub fn udp_scaleup_with(
    hosts: usize,
    host_kind: HostKind,
    duration: SimTime,
    barrier: bool,
    exec: Execution,
) -> (f64, u64) {
    let (wall, stats) = udp_scaleup_stats(hosts, host_kind, duration, barrier, exec);
    (wall, stats.syncs_sent + stats.barrier_waits)
}

/// Like [`udp_scaleup_with`], returning the merged per-component kernel
/// statistics (sync counts, allocator-facing pool counters) alongside the
/// wall time.
pub fn udp_scaleup_stats(
    hosts: usize,
    host_kind: HostKind,
    duration: SimTime,
    barrier: bool,
    exec: Execution,
) -> (f64, simbricks::base::KernelStats) {
    udp_scaleup_stats_mode(hosts, host_kind, duration, barrier, false, exec)
}

/// [`udp_scaleup_stats`] with hierarchical sync domains enabled — the
/// flat-vs-hier comparison the Fig. 7 harness records under `--hier-sync`.
pub fn udp_scaleup_hier_stats(
    hosts: usize,
    host_kind: HostKind,
    duration: SimTime,
    exec: Execution,
) -> (f64, simbricks::base::KernelStats) {
    udp_scaleup_stats_mode(hosts, host_kind, duration, false, true, exec)
}

fn udp_scaleup_stats_mode(
    hosts: usize,
    host_kind: HostKind,
    duration: SimTime,
    barrier: bool,
    hier: bool,
    exec: Execution,
) -> (f64, simbricks::base::KernelStats) {
    let toml = scen::udp_scaleup_toml(hosts, host_kind, duration, 1, false, hier, barrier);
    let mut pb = PartitionBuilder::new_local();
    lower_generated(&toml, &mut pb);
    let r = pb.into_experiment().run(exec);
    (r.wall_seconds(), r.total_stats())
}
