//! Fig. 8: scale-out to many hosts organised in racks (ToR + core switches),
//! memcached/memaslap workload. Scaled down from the paper's 40-1000 hosts on
//! 26 servers to rack sizes that run on one machine; the quantity of interest
//! is how simulation time grows with host count.
//!
//! Usage:
//!   `fig08_distributed_scaling [--exec sequential|threads|sharded[:N]]
//!   [--dist N] [--transport tcp|shm|auto] [--hier-sync] [--json PATH]`
//!
//! `--hier-sync` reruns every distributed topology with hierarchical sync
//! domains enabled in all partitions and checks the merged event log is
//! still bit-identical to the flat in-process baseline (the protocol only
//! changes SYNC cadence, never data timestamps).
//!
//! Without `--dist` the racks run in-process with the selected executor (or
//! `SIMBRICKS_EXEC`). With `--dist N` each topology additionally runs as a
//! **true multi-process distributed simulation**: N worker OS processes (one
//! per partition; rack r lives in partition `w{r % N}`, the core switch in
//! `w0`) with one cross-partition channel per inter-partition ToR-to-core
//! uplink, exactly the paper's §5.4 deployment shape. Each cross link is
//! carried by the selected transport: loopback TCP proxy pairs or the
//! shared-memory ring transport the paper uses for co-located simulators.
//! With `--transport auto` (the default) the harness runs **both** tcp and
//! shm so their wall clocks are directly comparable; an explicit kind
//! restricts to that column. Every distributed run records event logs and
//! the harness verifies each is bit-identical to the in-process sequential
//! log before reporting wall-clock numbers.
//!
//! `--json PATH` writes the machine-readable baseline consumed by future
//! regression checks (see `BENCH_fig08.json` at the repository root).

use simbricks::hostsim::HostKind;
use simbricks::runner::dist::{self, DistOptions};
use simbricks::runner::{Execution, TransportKind};
use simbricks_bench::dist_scen;

fn scenario(
    racks: usize,
    hpr: usize,
    kind: HostKind,
    parts: usize,
    log: bool,
    hier: bool,
) -> String {
    let kind = match kind {
        HostKind::QemuTiming => "qemu",
        _ => "gem5",
    };
    format!(
        "racks={racks};hpr={hpr};kind={kind};parts={parts};log={};hier={}",
        log as u8, hier as u8
    )
}

struct Row {
    hosts: usize,
    kind: &'static str,
    inproc_wall: f64,
    /// Per-transport results: (transport, worker wall, orchestrated wall,
    /// log identical to the in-process baseline).
    dist: Vec<(&'static str, f64, f64, bool)>,
    /// Hierarchical-sync rerun (`--hier-sync`): in-process wall, then the
    /// same per-transport tuple — every log still compared against the FLAT
    /// in-process baseline, since hierarchical sync must not change events.
    hier_inproc_wall: Option<f64>,
    hier_dist: Vec<(&'static str, f64, f64, bool)>,
}

fn main() {
    // Hidden worker mode: when spawned by the orchestrator below (env
    // SIMBRICKS_DIST_CONTROL + `--dist-worker` argv), this call rebuilds one
    // partition, runs it, reports over the control socket, and exits.
    dist::maybe_worker(&dist_scen::build_memcache_racks);

    let mut exec = Execution::from_env_or(Execution::Sequential);
    let mut transport = TransportKind::from_env_or(TransportKind::Auto);
    let mut dist_n: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut hier_sync = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let need_value = |args: &[String], i: usize| {
        if i + 1 >= args.len() {
            eprintln!("{} requires a value", args[i]);
            std::process::exit(2);
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--exec" => {
                need_value(&args, i);
                i += 1;
                exec = Execution::parse(&args[i]).expect("--exec sequential|threads|sharded[:N]");
            }
            "--transport" => {
                need_value(&args, i);
                i += 1;
                transport = TransportKind::parse(&args[i]).expect("--transport tcp|shm|auto");
            }
            "--dist" => {
                need_value(&args, i);
                i += 1;
                let n: usize = args[i].parse().expect("--dist takes a worker count");
                assert!(n >= 1, "--dist needs at least one worker");
                dist_n = Some(n);
            }
            "--json" => {
                need_value(&args, i);
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--hier-sync" => {
                hier_sync = true;
            }
            "--dist-worker" => {
                eprintln!("--dist-worker is internal (requires the orchestrator environment)");
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if json_path.is_some() && dist_n.is_none() {
        eprintln!("--json requires --dist (the baseline records the distributed mode)");
        std::process::exit(2);
    }

    // The tcp-vs-shm comparison: `auto` measures both transports; an
    // explicit kind restricts to that one.
    let transports: Vec<(&'static str, TransportKind)> = match transport {
        TransportKind::Auto => {
            let mut t = vec![("tcp", TransportKind::Tcp)];
            if simbricks::runner::shm_supported() {
                t.push(("shm", TransportKind::Shm));
            }
            t
        }
        TransportKind::Tcp => vec![("tcp", TransportKind::Tcp)],
        TransportKind::Shm => vec![("shm", TransportKind::Shm)],
    };

    let hpr = 8usize;
    println!("# Figure 8: scale-out (memcached racks, 5 ms virtual, scaled down)");
    println!("# executor: {exec:?}");
    let mut rows = Vec::new();
    match dist_n {
        None => {
            println!("{:>6} {:>18} {:>18}", "hosts", "gem5-like [s]", "qemu-timing [s]");
            for racks in [1usize, 2, 4] {
                let hosts = racks * hpr;
                let g = dist_scen_wall(racks, hpr, HostKind::Gem5Timing, exec);
                let q = dist_scen_wall(racks, hpr, HostKind::QemuTiming, exec);
                println!("{:>6} {:>18.2} {:>18.2}", hosts, g, q);
            }
        }
        Some(parts) => {
            println!(
                "# distributed: {parts} worker processes, one cross-partition channel per inter-partition uplink"
            );
            print!("{:>6} {:>6} {:>14}", "hosts", "kind", "in-proc [s]");
            for (tname, _) in &transports {
                print!(" {:>11}", format!("dist-{tname} [s]"));
            }
            println!(" {:>10}", "identical");
            let mut all_identical = true;
            for racks in [1usize, 2, 4] {
                let hosts = racks * hpr;
                for (kname, kind) in [("gem5", HostKind::Gem5Timing), ("qemu", HostKind::QemuTiming)]
                {
                    let scen = scenario(racks, hpr, kind, parts, true, false);
                    let local = dist::run_local(&scen, &dist_scen::build_memcache_racks, exec);
                    let lm = local.merged_log();
                    let mut row = Row {
                        hosts,
                        kind: kname,
                        inproc_wall: local.wall_seconds(),
                        dist: Vec::new(),
                        hier_inproc_wall: None,
                        hier_dist: Vec::new(),
                    };
                    for (tname, tkind) in &transports {
                        let opts = DistOptions::new(dist_scen::partition_names(parts), scen.clone())
                            .with_exec(exec)
                            .with_transport(*tkind);
                        let dres = dist::run_distributed(&opts, &dist_scen::build_memcache_racks)
                            .expect("distributed run failed");
                        let dm = dres.merged_log();
                        let identical =
                            lm.len() == dm.len() && lm.fingerprint() == dm.fingerprint();
                        all_identical &= identical;
                        row.dist.push((
                            tname,
                            dres.max_partition_wall(),
                            dres.wall.as_secs_f64(),
                            identical,
                        ));
                    }
                    print!("{:>6} {:>6} {:>14.2}", hosts, kname, row.inproc_wall);
                    for (_, wall, _, _) in &row.dist {
                        print!(" {:>11.2}", wall);
                    }
                    let ok = row.dist.iter().all(|(_, _, _, id)| *id);
                    println!(" {:>10}", if ok { "yes" } else { "NO" });
                    if hier_sync {
                        // Hierarchical-sync rerun of the same topology; every
                        // event log must stay bit-identical to the FLAT
                        // in-process baseline (sync cadence is invisible).
                        let hscen = scenario(racks, hpr, kind, parts, true, true);
                        let hlocal =
                            dist::run_local(&hscen, &dist_scen::build_memcache_racks, exec);
                        let hm = hlocal.merged_log();
                        let lid = lm.len() == hm.len() && lm.fingerprint() == hm.fingerprint();
                        all_identical &= lid;
                        row.hier_inproc_wall = Some(hlocal.wall_seconds());
                        for (tname, tkind) in &transports {
                            let opts =
                                DistOptions::new(dist_scen::partition_names(parts), hscen.clone())
                                    .with_exec(exec)
                                    .with_transport(*tkind);
                            let dres =
                                dist::run_distributed(&opts, &dist_scen::build_memcache_racks)
                                    .expect("distributed hier run failed");
                            let dm = dres.merged_log();
                            let identical =
                                lm.len() == dm.len() && lm.fingerprint() == dm.fingerprint();
                            all_identical &= identical;
                            row.hier_dist.push((
                                tname,
                                dres.max_partition_wall(),
                                dres.wall.as_secs_f64(),
                                identical,
                            ));
                        }
                        print!("{:>6} {:>6} {:>14.2}", "+hier", kname, row.hier_inproc_wall.unwrap());
                        for (_, wall, _, _) in &row.hier_dist {
                            print!(" {:>11.2}", wall);
                        }
                        let ok =
                            lid && row.hier_dist.iter().all(|(_, _, _, id)| *id);
                        println!(" {:>10}", if ok { "yes" } else { "NO" });
                    }
                    rows.push(row);
                }
            }
            if let Some(path) = &json_path {
                write_json(path, parts, &rows);
            }
            if !all_identical {
                eprintln!("ERROR: a distributed event log diverged from the in-process run");
                std::process::exit(1);
            }
        }
    }
}

/// One in-process run (no logging) returning wall seconds.
fn dist_scen_wall(racks: usize, hpr: usize, kind: HostKind, exec: Execution) -> f64 {
    let scen = scenario(racks, hpr, kind, 1, false, false);
    dist::run_local(&scen, &dist_scen::build_memcache_racks, exec).wall_seconds()
}

fn write_json(path: &str, parts: usize, rows: &[Row]) {
    let mut out = String::from("{\n");
    out.push_str("  \"figure\": \"fig08_distributed_scaling\",\n");
    out.push_str("  \"workload\": \"memcached/memaslap racks (8 hosts/rack) + ToR/core switches\",\n");
    out.push_str("  \"virtual_duration_ms\": 5,\n");
    out.push_str(&format!("  \"dist_workers\": {parts},\n"));
    out.push_str(&format!(
        "  \"machine_cores\": {},\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    out.push_str(
        "  \"note\": \"dist_<transport>_wall_s is the slowest worker process; every \
         distributed run has event logging enabled for the bit-identity check against \
         the in-process baseline. On a single-core machine the distributed processes \
         time-share, so the paper's flat-scaling claim needs >= dist_workers real \
         cores; the tcp-vs-shm gap also narrows when forwarder threads time-share.\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mut fields = format!(
            "\"hosts\": {}, \"kind\": \"{}\", \"inproc_wall_s\": {:.4}",
            r.hosts, r.kind, r.inproc_wall
        );
        for (tname, wall, orch, identical) in &r.dist {
            fields.push_str(&format!(
                ", \"dist_{tname}_wall_s\": {wall:.4}, \"dist_{tname}_orchestrated_wall_s\": {orch:.4}, \
                 \"dist_{tname}_logs_identical\": {identical}"
            ));
        }
        out.push_str(&format!(
            "    {{{fields}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write --json file");
    eprintln!("wrote {path}");
}
