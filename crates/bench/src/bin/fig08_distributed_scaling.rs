//! Fig. 8: scale-out to many hosts organised in racks (ToR + core switches),
//! memcached/memaslap workload. Scaled down from the paper's 40-1000 hosts on
//! 26 servers to rack sizes that run on one machine; the quantity of interest
//! is how simulation time grows with host count.
//!
//! The executor is selectable: `--exec sequential|threads|sharded[:N]` or the
//! `SIMBRICKS_EXEC` environment variable (default: sequential). With dozens
//! of components per rack, `sharded` is the mode that lets one machine stand
//! in for the paper's cluster.
use simbricks::apps::memcache::MEMCACHE_PORT;
use simbricks::apps::{MemaslapClient, MemcachedServer};
use simbricks::hostsim::{HostConfig, HostKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::netstack::SocketAddr;
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

fn run(racks: usize, hosts_per_rack: usize, kind: HostKind, exec: Execution) -> f64 {
    let virt = SimTime::from_ms(5);
    let mut exp = Experiment::new("memcache-racks", virt + SimTime::from_ms(2));
    let mut core_ports = Vec::new();
    // First half of each rack are servers, second half clients.
    let mut server_addrs = Vec::new();
    for r in 0..racks {
        for h in 0..hosts_per_rack / 2 {
            let idx = (r * hosts_per_rack + h) as u32;
            server_addrs.push(SocketAddr::new(HostConfig::new(kind, idx).ip, MEMCACHE_PORT));
        }
    }
    for r in 0..racks {
        let mut eth = Vec::new();
        for h in 0..hosts_per_rack {
            let idx = (r * hosts_per_rack + h) as u32;
            let cfg = HostConfig::new(kind, idx);
            let is_server = h < hosts_per_rack / 2;
            let app: Box<dyn simbricks::hostsim::Application> = if is_server {
                Box::new(MemcachedServer::new())
            } else {
                Box::new(MemaslapClient::new(server_addrs.clone(), 2, 64, virt))
            };
            let (_h, _n, e) = attach_host_nic(&mut exp, &format!("r{r}h{h}"), cfg, app, false);
            eth.push(e);
        }
        let (up, down) = simbricks::base::channel_pair(exp.eth_params());
        eth.push(up);
        exp.add(
            format!("tor{r}"),
            Box::new(SwitchBm::new(SwitchConfig { ports: hosts_per_rack + 1, ..Default::default() })),
            eth,
        );
        core_ports.push(down);
    }
    exp.add(
        "core",
        Box::new(SwitchBm::new(SwitchConfig { ports: racks, ..Default::default() })),
        core_ports,
    );
    let r = exp.run(exec);
    r.wall_seconds()
}

fn main() {
    let mut exec = Execution::from_env_or(Execution::Sequential);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exec" => {
                if i + 1 >= args.len() {
                    eprintln!("--exec requires a value");
                    std::process::exit(2);
                }
                i += 1;
                exec = Execution::parse(&args[i]).expect("--exec sequential|threads|sharded[:N]");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    println!("# Figure 8: scale-out (memcached racks, 5 ms virtual, scaled down)");
    println!("# executor: {exec:?}");
    println!("{:>6} {:>18} {:>18}", "hosts", "gem5-like [s]", "qemu-timing [s]");
    for racks in [1usize, 2, 4] {
        let hosts = racks * 8;
        let g = run(racks, 8, HostKind::Gem5Timing, exec);
        let q = run(racks, 8, HostKind::QemuTiming, exec);
        println!("{:>6} {:>18.2} {:>18.2}", hosts, g, q);
    }
}
