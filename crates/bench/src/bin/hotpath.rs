//! Hot-path microbenchmark: per-message cost of the in-process SimBricks
//! channel (slot copy in, pooled buffer out) and of buffer-pool primitives.
//!
//! This is the steady-state cost every simulated hop pays; the pooled
//! packet-buffer arena (`simbricks::base::PktBuf`) turns its dominant term —
//! per-hop malloc/memcpy — into freelist reuse and refcount handoffs. The
//! benchmark reports messages/second, ns/message, and the pool hit rate, and
//! `--json PATH` writes the machine-readable baseline committed as
//! `BENCH_hotpath.json`.
//!
//! Usage: hotpath [--msgs N] [--payload BYTES] [--json PATH]

// Benchmarks measure real wall-clock throughput by design.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::time::Instant;

use simbricks::base::{channel_pair, BufPool, ChannelParams, PktBuf, SimTime};

/// Messages per measured run.
const DEFAULT_MSGS: usize = 500_000;
/// Payload of one message (a typical descriptor/doorbell-sized message).
const DEFAULT_PAYLOAD: usize = 64;
/// Channel ring depth (matches the default queue length).
const BATCH: usize = 32;

/// Per-message cost of a channel round: send (copy into the slot) + recv
/// (slot into a pooled buffer) + drop (freelist recycle), in ring-sized
/// batches. Returns (ns/msg, pool hit rate).
fn channel_roundtrip(msgs: usize, payload_len: usize) -> (f64, f64) {
    let params = ChannelParams::default_sync().with_queue_len(BATCH.max(2));
    let (mut tx, mut rx) = channel_pair(params);
    let pool = BufPool::new();
    rx.set_pool(pool.clone());
    let payload = vec![0xa5u8; payload_len];
    let start = Instant::now();
    let mut sent = 0usize;
    while sent < msgs {
        for i in 0..BATCH {
            tx.send_raw(SimTime::from_ps((sent + i) as u64), 5, &payload)
                .expect("ring sized for a full batch");
        }
        for _ in 0..BATCH {
            let m = rx.recv_raw().expect("all sent");
            assert_eq!(m.data.len(), payload_len);
        }
        sent += BATCH;
    }
    let ns = start.elapsed().as_nanos() as f64 / sent as f64;
    (ns, pool.stats().hit_rate())
}

/// Per-operation cost of a pooled copy + drop (alloc/copy/recycle cycle).
fn pool_copy_cycle(msgs: usize, payload_len: usize) -> (f64, f64) {
    let pool = BufPool::new();
    let payload = vec![0x5au8; payload_len];
    // Warm the freelist so the measurement reflects steady state.
    drop(pool.copy_from_slice(&payload));
    let start = Instant::now();
    for _ in 0..msgs {
        let b = pool.copy_from_slice(&payload);
        assert_eq!(b.len(), payload_len);
    }
    let ns = start.elapsed().as_nanos() as f64 / msgs as f64;
    (ns, pool.stats().hit_rate())
}

/// Per-clone cost of sharing a buffer (a switch flooding a frame): refcount
/// bump + drop, no bytes moved.
fn clone_cycle(msgs: usize, payload_len: usize) -> f64 {
    let pool = BufPool::new();
    let payload = vec![0x3cu8; payload_len];
    let b = pool.copy_from_slice(&payload);
    let start = Instant::now();
    for _ in 0..msgs {
        let c = b.clone();
        std::hint::black_box(&c);
    }
    let _keep: PktBuf = b;
    start.elapsed().as_nanos() as f64 / msgs as f64
}

fn main() {
    let mut msgs = DEFAULT_MSGS;
    let mut payload = DEFAULT_PAYLOAD;
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |args: &[String], i: usize| {
            if i + 1 >= args.len() {
                eprintln!("{} requires a value", args[i]);
                std::process::exit(2);
            }
        };
        match args[i].as_str() {
            "--msgs" => {
                need(&args, i);
                i += 1;
                msgs = args[i].parse().expect("--msgs number");
            }
            "--payload" => {
                need(&args, i);
                i += 1;
                payload = args[i].parse().expect("--payload bytes");
            }
            "--json" => {
                need(&args, i);
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (chan_ns, chan_hit) = channel_roundtrip(msgs, payload);
    let (pool_ns, pool_hit) = pool_copy_cycle(msgs, payload);
    let clone_ns = clone_cycle(msgs, payload);
    let msgs_per_sec = 1e9 / chan_ns;

    println!("# hot path microbenchmark ({msgs} msgs, {payload} B payload)");
    println!(
        "channel send+recv+drop: {chan_ns:.1} ns/msg ({msgs_per_sec:.0} msgs/s, pool hit rate {:.2}%)",
        chan_hit * 100.0
    );
    println!(
        "pooled copy cycle:      {pool_ns:.1} ns/op (hit rate {:.2}%)",
        pool_hit * 100.0
    );
    println!("clone (refcount bump):  {clone_ns:.1} ns/clone");
    if chan_hit < 0.99 {
        eprintln!(
            "WARNING: steady-state channel pool hit rate below 99% ({:.2}%)",
            chan_hit * 100.0
        );
    }

    if let Some(path) = json_path {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let out = format!(
            "{{\n  \"figure\": \"hotpath\",\n  \"workload\": \"in-process channel send/recv + pooled buffer primitives\",\n  \"machine_cores\": {cores},\n  \"messages\": {msgs},\n  \"payload_bytes\": {payload},\n  \"channel_ns_per_msg\": {chan_ns:.1},\n  \"channel_msgs_per_sec\": {msgs_per_sec:.0},\n  \"channel_pool_hit_rate\": {chan_hit:.4},\n  \"pool_copy_ns_per_op\": {pool_ns:.1},\n  \"pool_copy_hit_rate\": {pool_hit:.4},\n  \"clone_ns\": {clone_ns:.1}\n}}\n"
        );
        std::fs::write(&path, out).expect("write --json file");
        eprintln!("wrote {path}");
    }
}
