//! §7.3.2: decomposition for parallelism — 32 packet generators against one
//! switch vs a ToR + core switch hierarchy.
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::nicsim::{PktGen, PktGenConfig};
use simbricks::proto::MacAddr;
use simbricks::runner::{Execution, Experiment};
use simbricks::{bw, SimTime};

fn run(ngen: usize, decomposed: bool, rate: u64) -> f64 {
    let virt = SimTime::from_ms(10);
    let mut exp = Experiment::new("decomp", virt);
    let mk_gen = |i: usize| {
        Box::new(PktGen::new(PktGenConfig {
            mac: MacAddr::from_index(100 + i as u64),
            dst: MacAddr::from_index(1 + ((i + 1) % ngen) as u64 + 100),
            rate_bps: rate,
            frame_len: 1500,
            duration: virt,
        }))
    };
    if !decomposed {
        let mut eth = Vec::new();
        for i in 0..ngen {
            let (g, s) = simbricks::base::channel_pair(exp.eth_params());
            exp.add(format!("gen{i}"), mk_gen(i), vec![g]);
            eth.push(s);
        }
        exp.add("switch", Box::new(SwitchBm::new(SwitchConfig { ports: ngen, ..Default::default() })), eth);
    } else {
        // 4 ToR switches of ngen/4 generators each, plus one core switch.
        let tors = 4usize;
        let per = ngen / tors;
        let mut core_ports = Vec::new();
        for t in 0..tors {
            let mut eth = Vec::new();
            for i in 0..per {
                let idx = t * per + i;
                let (g, s) = simbricks::base::channel_pair(exp.eth_params());
                exp.add(format!("gen{idx}"), mk_gen(idx), vec![g]);
                eth.push(s);
            }
            let (up, down) = simbricks::base::channel_pair(exp.eth_params());
            eth.push(up);
            exp.add(format!("tor{t}"), Box::new(SwitchBm::new(SwitchConfig { ports: per + 1, ..Default::default() })), eth);
            core_ports.push(down);
        }
        exp.add("core", Box::new(SwitchBm::new(SwitchConfig { ports: tors, ..Default::default() })), core_ports);
    }
    let r = exp.run(Execution::Sequential);
    r.wall_seconds()
}

fn main() {
    println!("# Section 7.3.2: network decomposition (packet generators, 10 ms virtual)");
    println!("{:<34} {:>10}", "configuration", "wall[s]");
    for (rate, label) in [(0u64, "rate 0 (sync only)"), (bw::B10G, "10 Gbps per generator")] {
        let single_2 = run(2, false, rate);
        let single_32 = run(32, false, rate);
        let tor_core_32 = run(32, true, rate);
        println!("{:<34} {:>10.2}", format!("2 gens, 1 switch, {label}"), single_2);
        println!("{:<34} {:>10.2}", format!("32 gens, 1 switch, {label}"), single_32);
        println!("{:<34} {:>10.2}", format!("32 gens, ToR+core, {label}"), tor_core_32);
    }
}
