//! Tab. 1: four use-case configurations (SW/HW debugging and performance
//! evaluation), reporting netperf throughput, latency, and wall-clock
//! simulation time. Durations scaled down from the paper's 10 s + 10 s.
use simbricks::hostsim::{HostKind, NicModelKind};
use simbricks::SimTime;
use simbricks_bench::{netperf_config, Net};

fn main() {
    let stream = SimTime::from_ms(20);
    let rr = SimTime::from_ms(20);
    let pcie = SimTime::from_ns(500);
    let rows = [
        ("SW debugging    (QEMU-kvm + i40e BM + switch BM, unsync)", HostKind::QemuKvm, NicModelKind::I40e, false, Net::SwitchBm),
        ("SW perf eval    (gem5 + i40e BM + DES network, sync)", HostKind::Gem5Timing, NicModelKind::I40e, false, Net::Des),
        ("HW debugging    (QEMU-kvm + Corundum RTL + switch BM, unsync)", HostKind::QemuKvm, NicModelKind::Corundum, true, Net::SwitchBm),
        ("HW perf eval    (QEMU-timing + Corundum RTL + switch BM, sync)", HostKind::QemuTiming, NicModelKind::Corundum, true, Net::SwitchBm),
    ];
    println!("# Table 1: use-case configurations (netperf, scaled durations)");
    println!("{:<64} {:>10} {:>12} {:>10}", "configuration", "tput[Gbps]", "latency[us]", "wall[s]");
    for (name, host, nic, rtl, net) in rows {
        let r = netperf_config(host, nic, rtl, net, stream, rr, pcie);
        println!("{:<64} {:>10.3} {:>12.1} {:>10.2}", name, r.throughput_gbps, r.latency_us, r.wall_seconds);
    }
}
