//! Fig. 1: DCTCP throughput vs marking threshold K — network-simulator-only
//! baseline vs the SimBricks end-to-end simulation. The end-to-end curve
//! needs a larger K to reach line rate because host processing (interrupt
//! scheduling, driver work) adds burstiness the network-only model misses.
use simbricks::hostsim::HostKind;
use simbricks::SimTime;
use simbricks_bench::{dctcp_end_to_end, dctcp_network_only};

fn main() {
    let duration = SimTime::from_ms(30);
    let ks = [2usize, 5, 10, 20, 40, 65, 100];
    println!("# Figure 1: aggregate dctcp throughput [Gbps] vs marking threshold K (packets)");
    println!("{:>6} {:>18} {:>24}", "K", "network-only", "end-to-end (SimBricks)");
    for k in ks {
        let only = dctcp_network_only(k, duration);
        let e2e = dctcp_end_to_end(k, duration, HostKind::Gem5Timing);
        println!("{:>6} {:>18.3} {:>24.3}", k, only, e2e);
    }
}
