//! Fig. 1: DCTCP throughput vs marking threshold K — network-simulator-only
//! baseline vs the SimBricks end-to-end simulation. The end-to-end curve
//! needs a larger K to reach line rate because host processing (interrupt
//! scheduling, driver work) adds burstiness the network-only model misses.
//!
//! Checkpoint fast-forward (`docs/ARCHITECTURE.md`, "Checkpoint/restore"):
//!
//! * `--checkpoint-to PATH` — run one end-to-end configuration (K = 65),
//!   quiesce at the end of the warm-up phase, write the checkpoint, and
//!   continue to the end (the continuation is bit-identical to an
//!   uninterrupted run).
//! * `--restore-from PATH` — rebuild the same configuration, load the
//!   checkpoint, and simulate only the remaining (measured) region —
//!   skipping the warm-up entirely.
//! * `--demo-checkpoint` — all of the above in one invocation, verifying
//!   that the restored run reproduces the uninterrupted results bit for bit
//!   and reporting the wall-clock fraction the fast-forward skipped.
//! * `--json PATH` — write the checkpoint-demo measurements as JSON.
//! * `--warm-ms N` / `--duration-ms N` — warm-up / total stream duration.
use std::io::Write as _;

use simbricks::hostsim::HostKind;
use simbricks::runner::Execution;
use simbricks::SimTime;
use simbricks_bench::{dctcp_e2e_build, dctcp_end_to_end, dctcp_goodput, dctcp_network_only};

const DEMO_K: usize = 65;

struct Args {
    checkpoint_to: Option<String>,
    restore_from: Option<String>,
    demo: bool,
    json: Option<String>,
    warm_ms: u64,
    duration_ms: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        checkpoint_to: None,
        restore_from: None,
        demo: false,
        json: None,
        warm_ms: 5,
        duration_ms: 10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--checkpoint-to" => args.checkpoint_to = Some(val("--checkpoint-to")),
            "--restore-from" => args.restore_from = Some(val("--restore-from")),
            "--demo-checkpoint" => args.demo = true,
            "--json" => args.json = Some(val("--json")),
            "--warm-ms" => args.warm_ms = val("--warm-ms").parse().expect("--warm-ms"),
            "--duration-ms" => {
                args.duration_ms = val("--duration-ms").parse().expect("--duration-ms")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    if args.checkpoint_to.is_some() && args.restore_from.is_some() {
        panic!("--checkpoint-to and --restore-from are mutually exclusive (use --demo-checkpoint for the combined flow)");
    }
    if args.json.is_some() && !args.demo {
        panic!("--json is only produced by --demo-checkpoint");
    }
    args
}

/// One end-to-end K=65 run with logging; optionally checkpointing at `warm`
/// or restoring from a file first. Returns (goodput, wall seconds, log
/// fingerprint, log length).
fn e2e_run(
    duration: SimTime,
    checkpoint: Option<(SimTime, &str)>,
    restore: Option<&str>,
) -> (f64, f64, u64, usize) {
    let (mut exp, servers) = dctcp_e2e_build(DEMO_K, duration, HostKind::Gem5Timing, true);
    if let Some((at, path)) = checkpoint {
        exp.checkpoint_at(at, Some(path.into()));
    }
    if let Some(path) = restore {
        let at = exp
            .restore(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("restoring {path}: {e}"));
        eprintln!("restored from {path} at t={at}");
    }
    let r = exp.run(Execution::Sequential);
    let log = r.merged_log();
    (dctcp_goodput(&r, &servers), r.wall_seconds(), log.fingerprint(), log.len())
}

fn main() {
    let args = parse_args();
    let duration = SimTime::from_ms(args.duration_ms);
    let warm = SimTime::from_ms(args.warm_ms);

    if args.demo {
        // 1. Uninterrupted baseline.
        let (g_full, w_full, f_full, n_full) = e2e_run(duration, None, None);
        println!("# checkpoint fast-forward demo (end-to-end dctcp, K={DEMO_K})");
        println!("uninterrupted:     goodput={g_full:.3}Gbps wall={w_full:.3}s log_len={n_full} fp={f_full:#018x}");
        // 2. Same run, checkpointing at the end of the warm-up.
        let path = std::env::temp_dir().join(format!("fig01-warm-{}.ckpt", std::process::id()));
        let path_s = path.to_str().unwrap().to_string();
        let (g_ck, w_ck, f_ck, n_ck) = e2e_run(duration, Some((warm, &path_s)), None);
        println!("checkpointing run: goodput={g_ck:.3}Gbps wall={w_ck:.3}s log_len={n_ck} fp={f_ck:#018x}");
        // 3. Restore and simulate only the measured region.
        let (g_re, w_re, f_re, n_re) = e2e_run(duration, None, Some(&path_s));
        println!("restored run:      goodput={g_re:.3}Gbps wall={w_re:.3}s log_len={n_re} fp={f_re:#018x}");
        let _ = std::fs::remove_file(&path);

        assert_eq!((f_full, n_full), (f_ck, n_ck), "checkpointing run diverged");
        assert_eq!((f_full, n_full), (f_re, n_re), "restored run diverged");
        assert_eq!(g_full, g_re, "restored goodput differs");
        let end = duration + SimTime::from_ms(5);
        let warm_fraction = warm.as_secs_f64() / end.as_secs_f64();
        let skip_fraction = 1.0 - w_re / w_full;
        println!(
            "warm-up fraction {warm_fraction:.2} of virtual time; fast-forward skipped {:.0}% of wall clock",
            skip_fraction * 100.0
        );
        if let Some(json) = &args.json {
            let mut out = String::new();
            out.push_str("{\n");
            out.push_str("  \"bench\": \"fig01_checkpoint_demo\",\n");
            out.push_str(&format!("  \"k\": {DEMO_K},\n"));
            out.push_str(&format!("  \"duration_ms\": {},\n", args.duration_ms));
            out.push_str(&format!("  \"warm_ms\": {},\n", args.warm_ms));
            out.push_str(&format!("  \"warm_fraction\": {warm_fraction:.4},\n"));
            out.push_str(&format!("  \"wall_full_s\": {w_full:.4},\n"));
            out.push_str(&format!("  \"wall_checkpointing_s\": {w_ck:.4},\n"));
            out.push_str(&format!("  \"wall_restored_s\": {w_re:.4},\n"));
            out.push_str(&format!("  \"skip_fraction\": {skip_fraction:.4},\n"));
            out.push_str(&format!("  \"skip_ge_warm_fraction\": {},\n", skip_fraction >= warm_fraction));
            out.push_str(&format!("  \"goodput_full_gbps\": {g_full:.4},\n"));
            out.push_str(&format!("  \"goodput_restored_gbps\": {g_re:.4},\n"));
            out.push_str(&format!("  \"log_len\": {n_full},\n"));
            out.push_str(&format!("  \"fingerprint\": \"{f_full:#018x}\",\n"));
            out.push_str("  \"bit_identical\": true\n");
            out.push_str("}\n");
            let mut f = std::fs::File::create(json).expect("create json");
            f.write_all(out.as_bytes()).expect("write json");
            println!("wrote {json}");
        }
        return;
    }

    if let Some(path) = &args.checkpoint_to {
        let (g, w, f, n) = e2e_run(duration, Some((warm, path)), None);
        println!("checkpoint written to {path} at t={warm}");
        println!("goodput={g:.3}Gbps wall={w:.3}s log_len={n} fp={f:#018x}");
        return;
    }
    if let Some(path) = &args.restore_from {
        let (g, w, f, n) = e2e_run(duration, None, Some(path));
        println!("goodput={g:.3}Gbps wall={w:.3}s log_len={n} fp={f:#018x}");
        return;
    }

    // Default: the Fig. 1 sweep.
    let duration = SimTime::from_ms(30);
    let ks = [2usize, 5, 10, 20, 40, 65, 100];
    println!("# Figure 1: aggregate dctcp throughput [Gbps] vs marking threshold K (packets)");
    println!("{:>6} {:>18} {:>24}", "K", "network-only", "end-to-end (SimBricks)");
    for k in ks {
        let only = dctcp_network_only(k, duration);
        let e2e = dctcp_end_to_end(k, duration, HostKind::Gem5Timing);
        println!("{:>6} {:>18.3} {:>24.3}", k, only, e2e);
    }
}
