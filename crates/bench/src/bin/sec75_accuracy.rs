//! §7.5: accuracy — splitting one network simulation into two SimBricks
//! components connected by an Ethernet channel must not change simulated
//! behaviour: the timestamped per-endpoint packet logs of the monolithic and
//! the split configuration are compared entry by entry.
//!
//! This is the Ethernet half of the paper's accuracy experiment (two ns-3
//! instances vs one). The PCIe half (gem5's built-in e1000 vs the extracted
//! model) has no monolithic equivalent in this reimplementation — every host
//! talks to its NIC through the SimBricks PCIe interface — and is covered by
//! the determinism checks instead (see EXPERIMENTS.md).

use simbricks::base::SimTime;
use simbricks::netsim::des::QueueDiscipline;
use simbricks::netsim::{DesNetwork, LinkParams};
use simbricks::netstack::{CongestionControl, StackConfig};
use simbricks::proto::{Ipv4Addr, MacAddr};
use simbricks::runner::{Execution, Experiment};
use simbricks_bench::IperfEndpoint;

fn delay() -> SimTime {
    SimTime::from_us(2)
}

fn endpoint_cfg(ip_index: u32, mac_index: u64) -> StackConfig {
    StackConfig {
        ip: Ipv4Addr::from_index(ip_index),
        mac: MacAddr::from_index(mac_index),
        congestion: CongestionControl::Reno,
        mtu: 1500,
        ..StackConfig::default()
    }
}

fn plain_link(bandwidth_bps: u64, delay: SimTime) -> LinkParams {
    LinkParams {
        bandwidth_bps,
        delay,
        queue: QueueDiscipline::DropTail {
            capacity_bytes: 4 << 20,
        },
    }
}

/// Per-endpoint receive log as (time, frame length), ignoring node ids (they
/// differ between the monolithic and the split configuration).
fn rx_log(r: &simbricks::runner::RunResult) -> Vec<(SimTime, u64)> {
    let mut out = Vec::new();
    for log in &r.logs {
        for e in log.entries() {
            if e.tag == "ep_rx" {
                out.push((e.time, e.b));
            }
        }
    }
    out.sort();
    out
}

/// One network simulator containing both endpoints and the link.
fn monolithic(duration: SimTime) -> Vec<(SimTime, u64)> {
    let mut exp = Experiment::new("accuracy-mono", duration)
        .with_logging()
        .with_link_latency(delay());
    let mut net = DesNetwork::new();
    let a = net.add_endpoint(
        endpoint_cfg(100, 200),
        Box::new(IperfEndpoint::client(
            Ipv4Addr::from_index(101),
            7000,
            duration,
        )),
    );
    let b = net.add_endpoint(endpoint_cfg(101, 201), Box::new(IperfEndpoint::server(7000)));
    net.connect(a, b, plain_link(simbricks::base::bw::B10G, delay()));
    exp.add("net", Box::new(net), vec![]);
    rx_log(&exp.run(Execution::Sequential))
}

/// The same topology split across two network simulators joined by a
/// SimBricks Ethernet channel carrying the link's propagation delay. The
/// serialization of each direction stays on the sending endpoint's side, so
/// every packet must arrive at exactly the same virtual time as in the
/// monolithic configuration.
fn split(duration: SimTime) -> Vec<(SimTime, u64)> {
    let mut exp = Experiment::new("accuracy-split", duration)
        .with_logging()
        .with_link_latency(delay());
    let (ch_a, ch_b) = simbricks::base::channel_pair(exp.eth_params());

    let mut net_a = DesNetwork::new();
    let a = net_a.add_endpoint(
        endpoint_cfg(100, 200),
        Box::new(IperfEndpoint::client(
            Ipv4Addr::from_index(101),
            7000,
            duration,
        )),
    );
    let ext_a = net_a.add_external_port(0);
    // The sender-side link performs the serialization; the channel carries the
    // propagation delay; the receiver-side link is a zero-cost attachment.
    net_a.connect(a, ext_a, plain_link(simbricks::base::bw::B10G, SimTime::ZERO));

    let mut net_b = DesNetwork::new();
    let b = net_b.add_endpoint(endpoint_cfg(101, 201), Box::new(IperfEndpoint::server(7000)));
    let ext_b = net_b.add_external_port(0);
    net_b.connect(b, ext_b, plain_link(0, SimTime::ZERO));

    exp.add("net-a", Box::new(net_a), vec![ch_a]);
    exp.add("net-b", Box::new(net_b), vec![ch_b]);
    rx_log(&exp.run(Execution::Sequential))
}

fn main() {
    let duration = SimTime::from_ms(10);
    println!("# Section 7.5: accuracy — monolithic vs split network simulation");
    let mono = monolithic(duration);
    let split = split(duration);
    println!("monolithic endpoint-rx events: {}", mono.len());
    println!("split      endpoint-rx events: {}", split.len());
    let identical = mono == split;
    println!("timestamped logs identical:    {identical}");
    if !identical {
        for (i, (m, s)) in mono.iter().zip(split.iter()).enumerate() {
            if m != s {
                println!("first divergence at entry {i}: monolithic {m:?} vs split {s:?}");
                break;
            }
        }
        if mono.len() != split.len() {
            println!("(lengths differ)");
        }
        std::process::exit(1);
    }
}
