//! Fig. 7: local scale-up — simulation time as the number of hosts attached
//! to one switch grows (fixed 1 Gbps aggregate UDP load).
//!
//! The harness runs every topology twice on identical inputs: once with the
//! sequential executor and once with the sharded work-stealing executor, so
//! the local-scaling claim of §5.5 (components synchronize pairwise, so more
//! cores buy wall-clock speedup) can be checked on the machine at hand.
//!
//! Usage:
//!   fig07_local_scaling [--hosts 2,5,10,15,21] [--workers N]
//!                       [--duration-ms MS] [--json PATH]
//!
//! `--json PATH` writes the machine-readable baseline consumed by future
//! regression checks (see `BENCH_fig07.json` at the repository root).
//! `SIMBRICKS_WORKERS` provides the worker count when `--workers` is absent.

use simbricks::hostsim::HostKind;
use simbricks::runner::default_workers;
use simbricks::{Execution, SimTime};
use simbricks_bench::udp_scaleup_stats;

struct Row {
    hosts: usize,
    seq_wall: f64,
    seq_syncs: u64,
    sharded_wall: f64,
    sharded_syncs: u64,
    /// Allocator-facing counters of the sequential run (pooled packet
    /// buffers): freelist hits, cold misses, jumbo heap fallbacks.
    pool_hits: u64,
    pool_misses: u64,
    pool_fallbacks: u64,
}

fn main() {
    let mut hosts_list = vec![2usize, 5, 10, 15, 21];
    let mut workers = default_workers();
    let mut duration = SimTime::from_ms(5);
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let need_value = |args: &[String], i: usize| {
        if i + 1 >= args.len() {
            eprintln!("{} requires a value", args[i]);
            std::process::exit(2);
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--hosts" => {
                need_value(&args, i);
                i += 1;
                hosts_list = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--hosts takes a comma list"))
                    .collect();
            }
            "--workers" => {
                need_value(&args, i);
                i += 1;
                workers = args[i].parse().expect("--workers takes a number");
            }
            "--duration-ms" => {
                need_value(&args, i);
                i += 1;
                duration = SimTime::from_ms(args[i].parse().expect("--duration-ms number"));
            }
            "--json" => {
                need_value(&args, i);
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("# Figure 7: local scale-up (aggregate 1 Gbps UDP iperf)");
    println!("# sequential vs sharded executor, {workers} workers");
    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "hosts", "seq[s]", "sharded[s]", "speedup", "seq syncs", "sharded syncs"
    );
    let mut rows = Vec::new();
    for &hosts in &hosts_list {
        let (seq_wall, seq_stats) =
            udp_scaleup_stats(hosts, HostKind::Gem5Timing, duration, false, Execution::Sequential);
        let (sharded_wall, sharded_stats) = udp_scaleup_stats(
            hosts,
            HostKind::Gem5Timing,
            duration,
            false,
            Execution::Sharded { workers },
        );
        let seq_syncs = seq_stats.syncs_sent + seq_stats.barrier_waits;
        let sharded_syncs = sharded_stats.syncs_sent + sharded_stats.barrier_waits;
        let speedup = if sharded_wall > 0.0 {
            seq_wall / sharded_wall
        } else {
            0.0
        };
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>8.2}x {:>14} {:>14}  pool {:.1}% hit",
            hosts,
            seq_wall,
            sharded_wall,
            speedup,
            seq_syncs,
            sharded_syncs,
            seq_stats.pool_hit_rate() * 100.0,
        );
        rows.push(Row {
            hosts,
            seq_wall,
            seq_syncs,
            sharded_wall,
            sharded_syncs,
            pool_hits: seq_stats.pool_hits,
            pool_misses: seq_stats.pool_misses,
            pool_fallbacks: seq_stats.pool_fallbacks,
        });
    }

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"fig07_local_scaling\",\n");
        out.push_str("  \"workload\": \"udp_scaleup gem5-timing hosts + 1 switch\",\n");
        out.push_str(&format!(
            "  \"virtual_duration_ms\": {},\n",
            duration.as_ps() / 1_000_000_000
        ));
        out.push_str(&format!("  \"workers\": {workers},\n"));
        out.push_str(&format!(
            "  \"machine_cores\": {},\n",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        ));
        out.push_str(
            "  \"note\": \"speedup is bounded by machine_cores; on a single-core \
             machine sharded can only match sequential\",\n",
        );
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"hosts\": {}, \"sequential_wall_s\": {:.4}, \"sharded_wall_s\": {:.4}, \
                 \"speedup\": {:.4}, \"sequential_syncs\": {}, \"sharded_syncs\": {}, \
                 \"pool_hits\": {}, \"pool_misses\": {}, \"pool_fallbacks\": {}}}{}\n",
                r.hosts,
                r.seq_wall,
                r.sharded_wall,
                if r.sharded_wall > 0.0 { r.seq_wall / r.sharded_wall } else { 0.0 },
                r.seq_syncs,
                r.sharded_syncs,
                r.pool_hits,
                r.pool_misses,
                r.pool_fallbacks,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write --json file");
        eprintln!("wrote {path}");
    }
}
