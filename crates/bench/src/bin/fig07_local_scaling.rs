//! Fig. 7: local scale-up — simulation time as the number of hosts attached
//! to one switch grows (fixed 1 Gbps aggregate UDP load).
//!
//! The harness runs every topology twice on identical inputs: once with the
//! sequential executor and once with the sharded work-stealing executor, so
//! the local-scaling claim of §5.5 (components synchronize pairwise, so more
//! cores buy wall-clock speedup) can be checked on the machine at hand.
//!
//! Usage:
//!   fig07_local_scaling [--hosts 2,5,10,15,21] [--workers N]
//!                       [--duration-ms MS] [--json PATH] [--hier-sync]
//!                       [--fat-tree 128,512,1024] [--ft-duration-ms MS]
//!
//! `--json PATH` writes the machine-readable baseline consumed by future
//! regression checks (see `BENCH_fig07.json` at the repository root).
//! `SIMBRICKS_WORKERS` provides the worker count when `--workers` is absent.
//! `--hier-sync` reruns every topology with hierarchical sync domains on and
//! records the SYNC reduction; `--fat-tree` adds the scale-out matrix (k-ary
//! fat-tree pod hierarchies, flat vs hierarchical sync) whose committed
//! baseline carries the sublinearity claim.

use simbricks::hostsim::HostKind;
use simbricks::runner::default_workers;
use simbricks::{Execution, SimTime};
use simbricks_bench::{fat_tree_stats, udp_scaleup_stats, FatTree};

struct Row {
    hosts: usize,
    seq_wall: f64,
    seq_syncs: u64,
    sharded_wall: f64,
    sharded_syncs: u64,
    /// Allocator-facing counters of the sequential run (pooled packet
    /// buffers): freelist hits, cold misses, jumbo heap fallbacks.
    pool_hits: u64,
    pool_misses: u64,
    pool_fallbacks: u64,
    /// Hierarchical-sync rerun of the same topology (`--hier-sync`).
    hier: Option<(f64, u64, u64)>, // (wall, syncs, suppressed)
}

struct FtRow {
    hosts: usize,
    k: usize,
    hosts_per_edge: usize,
    flat_wall: f64,
    flat_syncs: u64,
    hier_wall: f64,
    hier_syncs: u64,
    hier_suppressed: u64,
}

fn main() {
    let mut hosts_list = vec![2usize, 5, 10, 15, 21];
    let mut workers = default_workers();
    let mut duration = SimTime::from_ms(5);
    let mut json_path: Option<String> = None;
    let mut hier_sync = false;
    let mut fat_tree: Vec<usize> = Vec::new();
    let mut ft_duration = SimTime::from_ms(2);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let need_value = |args: &[String], i: usize| {
        if i + 1 >= args.len() {
            eprintln!("{} requires a value", args[i]);
            std::process::exit(2);
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--hosts" => {
                need_value(&args, i);
                i += 1;
                hosts_list = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--hosts takes a comma list"))
                    .collect();
            }
            "--workers" => {
                need_value(&args, i);
                i += 1;
                workers = args[i].parse().expect("--workers takes a number");
            }
            "--duration-ms" => {
                need_value(&args, i);
                i += 1;
                duration = SimTime::from_ms(args[i].parse().expect("--duration-ms number"));
            }
            "--json" => {
                need_value(&args, i);
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--hier-sync" => {
                hier_sync = true;
            }
            "--fat-tree" => {
                need_value(&args, i);
                i += 1;
                fat_tree = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--fat-tree takes a comma list"))
                    .collect();
            }
            "--ft-duration-ms" => {
                need_value(&args, i);
                i += 1;
                ft_duration = SimTime::from_ms(args[i].parse().expect("--ft-duration-ms number"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("# Figure 7: local scale-up (aggregate 1 Gbps UDP iperf)");
    println!("# sequential vs sharded executor, {workers} workers");
    println!(
        "{:>6} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "hosts", "seq[s]", "sharded[s]", "speedup", "seq syncs", "sharded syncs"
    );
    let mut rows = Vec::new();
    for &hosts in &hosts_list {
        let (seq_wall, seq_stats) =
            udp_scaleup_stats(hosts, HostKind::Gem5Timing, duration, false, Execution::Sequential);
        let (sharded_wall, sharded_stats) = udp_scaleup_stats(
            hosts,
            HostKind::Gem5Timing,
            duration,
            false,
            Execution::Sharded { workers },
        );
        let seq_syncs = seq_stats.syncs_sent + seq_stats.barrier_waits;
        let sharded_syncs = sharded_stats.syncs_sent + sharded_stats.barrier_waits;
        let hier = hier_sync.then(|| {
            let (w, s) = simbricks_bench::udp_scaleup_hier_stats(
                hosts,
                HostKind::Gem5Timing,
                duration,
                Execution::Sequential,
            );
            (w, s.syncs_sent, s.syncs_suppressed)
        });
        let speedup = if sharded_wall > 0.0 {
            seq_wall / sharded_wall
        } else {
            0.0
        };
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>8.2}x {:>14} {:>14}  pool {:.1}% hit",
            hosts,
            seq_wall,
            sharded_wall,
            speedup,
            seq_syncs,
            sharded_syncs,
            seq_stats.pool_hit_rate() * 100.0,
        );
        if let Some((hw, hs, hsup)) = hier {
            let ratio = if seq_syncs > 0 { hs as f64 / seq_syncs as f64 } else { 0.0 };
            println!(
                "{:>6} {:>12.2} {:>12} {:>9} {:>14} {:>14}  hier: {:.2}x syncs, {} suppressed",
                "", hw, "(hier)", "", hs, "", ratio, hsup
            );
        }
        rows.push(Row {
            hosts,
            seq_wall,
            seq_syncs,
            sharded_wall,
            sharded_syncs,
            pool_hits: seq_stats.pool_hits,
            pool_misses: seq_stats.pool_misses,
            pool_fallbacks: seq_stats.pool_fallbacks,
            hier,
        });
    }

    let mut ft_rows: Vec<FtRow> = Vec::new();
    if !fat_tree.is_empty() {
        println!("# Fat-tree scale-out matrix (flat vs hierarchical sync, sequential)");
        println!(
            "{:>6} {:>4} {:>6} {:>12} {:>14} {:>12} {:>14} {:>7}",
            "hosts", "k", "h/edge", "flat[s]", "flat syncs", "hier[s]", "hier syncs", "ratio"
        );
        for &n in &fat_tree {
            let ft = FatTree::for_hosts(n);
            let (flat_wall, flat_stats) = fat_tree_stats(
                &ft,
                HostKind::Gem5Timing,
                ft_duration,
                false,
                Execution::Sequential,
            );
            let (hier_wall, hier_stats) = fat_tree_stats(
                &ft,
                HostKind::Gem5Timing,
                ft_duration,
                true,
                Execution::Sequential,
            );
            let ratio = if flat_stats.syncs_sent > 0 {
                hier_stats.syncs_sent as f64 / flat_stats.syncs_sent as f64
            } else {
                0.0
            };
            println!(
                "{:>6} {:>4} {:>6} {:>12.2} {:>14} {:>12.2} {:>14} {:>6.3}x",
                ft.hosts(),
                ft.k,
                ft.hosts_per_edge,
                flat_wall,
                flat_stats.syncs_sent,
                hier_wall,
                hier_stats.syncs_sent,
                ratio,
            );
            ft_rows.push(FtRow {
                hosts: ft.hosts(),
                k: ft.k,
                hosts_per_edge: ft.hosts_per_edge,
                flat_wall,
                flat_syncs: flat_stats.syncs_sent,
                hier_wall,
                hier_syncs: hier_stats.syncs_sent,
                hier_suppressed: hier_stats.syncs_suppressed,
            });
        }
    }

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"fig07_local_scaling\",\n");
        out.push_str("  \"workload\": \"udp_scaleup gem5-timing hosts + 1 switch\",\n");
        out.push_str(&format!(
            "  \"virtual_duration_ms\": {},\n",
            duration.as_ps() / 1_000_000_000
        ));
        out.push_str(&format!("  \"workers\": {workers},\n"));
        out.push_str(&format!(
            "  \"machine_cores\": {},\n",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        ));
        out.push_str(
            "  \"note\": \"speedup is bounded by machine_cores; on a single-core \
             machine sharded can only match sequential\",\n",
        );
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let hier_json = match r.hier {
                Some((hw, hs, hsup)) => format!(
                    ", \"hier_wall_s\": {hw:.4}, \"hier_syncs\": {hs}, \
                     \"hier_suppressed\": {hsup}"
                ),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"hosts\": {}, \"sequential_wall_s\": {:.4}, \"sharded_wall_s\": {:.4}, \
                 \"speedup\": {:.4}, \"sequential_syncs\": {}, \"sharded_syncs\": {}, \
                 \"pool_hits\": {}, \"pool_misses\": {}, \"pool_fallbacks\": {}{}}}{}\n",
                r.hosts,
                r.seq_wall,
                r.sharded_wall,
                if r.sharded_wall > 0.0 { r.seq_wall / r.sharded_wall } else { 0.0 },
                r.seq_syncs,
                r.sharded_syncs,
                r.pool_hits,
                r.pool_misses,
                r.pool_fallbacks,
                hier_json,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]");
        if !ft_rows.is_empty() {
            out.push_str(",\n");
            out.push_str(&format!(
                "  \"fat_tree_virtual_duration_ms\": {},\n",
                ft_duration.as_ps() / 1_000_000_000
            ));
            out.push_str("  \"fat_tree_rows\": [\n");
            for (i, r) in ft_rows.iter().enumerate() {
                let ratio =
                    if r.flat_syncs > 0 { r.hier_syncs as f64 / r.flat_syncs as f64 } else { 0.0 };
                out.push_str(&format!(
                    "    {{\"hosts\": {}, \"k\": {}, \"hosts_per_edge\": {}, \
                     \"flat_wall_s\": {:.4}, \"flat_syncs\": {}, \
                     \"hier_wall_s\": {:.4}, \"hier_syncs\": {}, \
                     \"hier_suppressed\": {}, \"sync_ratio\": {:.4}}}{}\n",
                    r.hosts,
                    r.k,
                    r.hosts_per_edge,
                    r.flat_wall,
                    r.flat_syncs,
                    r.hier_wall,
                    r.hier_syncs,
                    r.hier_suppressed,
                    ratio,
                    if i + 1 == ft_rows.len() { "" } else { "," }
                ));
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        std::fs::write(&path, out).expect("write --json file");
        eprintln!("wrote {path}");
    }
}
