//! Fig. 7: local scale-up — simulation time as the number of hosts attached
//! to one switch grows (fixed 1 Gbps aggregate UDP load).
use simbricks::hostsim::HostKind;
use simbricks::SimTime;
use simbricks_bench::udp_scaleup;

fn main() {
    let duration = SimTime::from_ms(5);
    println!("# Figure 7: local scale-up (aggregate 1 Gbps UDP iperf)");
    println!("{:>6} {:>12} {:>14}", "hosts", "wall[s]", "sync msgs");
    for hosts in [2usize, 5, 10, 15, 21] {
        let (wall, syncs) = udp_scaleup(hosts, HostKind::Gem5Timing, duration, false);
        println!("{:>6} {:>12.2} {:>14}", hosts, wall, syncs);
    }
}
