//! Fig. 6: SimBricks pairwise synchronization vs dist-gem5-style global
//! barrier synchronization as the number of simulated hosts grows.
//!
//! Usage:
//!   fig06_dist_gem5 [--dist N]
//!
//! With `--dist N` the pairwise-synchronization column runs as a true
//! multi-process distributed simulation: host `i` lives in worker process
//! `w{i % N}`, the switch in `w0`, every cross-partition Ethernet link
//! bridged by a loopback TCP proxy pair (§5.4). The global-barrier baseline
//! stays in-process — dist-gem5's barrier is exactly the kind of
//! tightly-coupled global state that does not distribute, which is the
//! point of the figure.
use simbricks::hostsim::HostKind;
use simbricks::runner::dist::{self, DistOptions};
use simbricks::SimTime;
use simbricks_bench::{dist_scen, udp_scaleup};

fn main() {
    // Hidden worker mode for `--dist` runs (see `dist::maybe_worker`).
    dist::maybe_worker(&dist_scen::build_udp_scaleup);

    let mut dist_n: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dist" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("--dist requires a value");
                        std::process::exit(2);
                    })
                    .parse()
                    .expect("--dist takes a worker count");
                assert!(n >= 1, "--dist needs at least one worker");
                dist_n = Some(n);
            }
            "--dist-worker" => {
                eprintln!("--dist-worker is internal (requires the orchestrator environment)");
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let duration = SimTime::from_ms(5);
    println!("# Figure 6: wall-clock simulation time, pairwise vs global barrier");
    if let Some(parts) = dist_n {
        println!("# pairwise column: {parts} worker processes over loopback TCP proxies");
        println!("# barrier column: in-process (a global barrier is process-local state)");
    }
    println!("{:>6} {:>16} {:>16} {:>10}", "hosts", "simbricks[s]", "dist-gem5[s]", "ratio");
    for hosts in [2usize, 4, 8, 16] {
        let pairwise = match dist_n {
            None => udp_scaleup(hosts, HostKind::QemuTiming, duration, false).0,
            Some(parts) => {
                let scen = format!("hosts={hosts};kind=qemu;parts={parts};dur_ms=5;log=0");
                let opts = DistOptions::new(dist_scen::partition_names(parts), scen);
                let r = dist::run_distributed(&opts, &dist_scen::build_udp_scaleup)
                    .expect("distributed run failed");
                r.max_partition_wall()
            }
        };
        let (barrier, _) = udp_scaleup(hosts, HostKind::QemuTiming, duration, true);
        println!(
            "{:>6} {:>16.2} {:>16.2} {:>10.2}",
            hosts,
            pairwise,
            barrier,
            barrier / pairwise.max(1e-9)
        );
    }
}
