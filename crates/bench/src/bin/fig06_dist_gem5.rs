//! Fig. 6: SimBricks pairwise synchronization vs dist-gem5-style global
//! barrier synchronization as the number of simulated hosts grows.
use simbricks::hostsim::HostKind;
use simbricks::SimTime;
use simbricks_bench::udp_scaleup;

fn main() {
    let duration = SimTime::from_ms(5);
    println!("# Figure 6: wall-clock simulation time, pairwise vs global barrier");
    println!("{:>6} {:>16} {:>16} {:>10}", "hosts", "simbricks[s]", "dist-gem5[s]", "ratio");
    for hosts in [2usize, 4, 8, 16] {
        let (pairwise, _) = udp_scaleup(hosts, HostKind::QemuTiming, duration, false);
        let (barrier, _) = udp_scaleup(hosts, HostKind::QemuTiming, duration, true);
        println!("{:>6} {:>16.2} {:>16.2} {:>10.2}", hosts, pairwise, barrier, barrier / pairwise.max(1e-9));
    }
}
