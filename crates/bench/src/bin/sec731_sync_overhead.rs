//! §7.3.1: synchronization overhead — a host running `sleep` (low event rate,
//! sync dominates) vs `dd` (high event rate, sync amortized), standalone vs
//! connected to a NIC + switch in SimBricks.
// Benchmarks measure real wall-clock throughput by design.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use simbricks::apps::{DdLoad, SleepLoad};
use simbricks::hostsim::{HostConfig, HostKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::{attach_host_nic, host_component, Execution, Experiment};
use simbricks::SimTime;
use std::time::Instant;

fn run(workload_sleep: bool, in_simbricks: bool) -> f64 {
    let duration = SimTime::from_ms(100);
    let cfg = HostConfig::new(HostKind::Gem5Timing, 0);
    let app: Box<dyn simbricks::hostsim::Application> = if workload_sleep {
        Box::new(SleepLoad::new(duration))
    } else {
        Box::new(DdLoad::new(duration))
    };
    let start = Instant::now();
    if in_simbricks {
        let mut exp = Experiment::new("sync-overhead", duration + SimTime::from_ms(2));
        let (_h, _n, eth) = attach_host_nic(&mut exp, "host", cfg, app, false);
        exp.add("switch", Box::new(SwitchBm::new(SwitchConfig { ports: 1, ..Default::default() })), vec![eth]);
        exp.run(Execution::Sequential);
    } else {
        // Standalone host: no channels at all.
        let mut exp = Experiment::new("standalone", duration + SimTime::from_ms(2));
        exp.add("host", host_component(cfg, app), vec![]);
        exp.run(Execution::Sequential);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    println!("# Section 7.3.1: synchronization overhead (gem5-like host, 100 ms virtual)");
    println!("{:<10} {:>16} {:>16} {:>10}", "workload", "standalone[s]", "simbricks[s]", "overhead");
    for (name, is_sleep) in [("sleep", true), ("dd", false)] {
        let alone = run(is_sleep, false);
        let sb = run(is_sleep, true);
        println!("{:<10} {:>16.3} {:>16.3} {:>9.1}%", name, alone, sb, (sb - alone) / alone.max(1e-9) * 100.0);
    }
}
