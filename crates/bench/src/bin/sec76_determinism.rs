//! §7.6: determinism — repeating a synchronized configuration produces
//! bit-identical event logs (compared here by fingerprint).
use simbricks::base::EventLog;
use simbricks::hostsim::{HostKind, NicModelKind};
use simbricks::SimTime;
use simbricks_bench::{netperf_config, Net};

fn main() {
    // netperf_config does not expose logs, so re-run the core check the
    // integration test performs, at the harness scale, via repeated results.
    println!("# Section 7.6: determinism (5 repetitions, synchronized gem5-like hosts)");
    let mut results = Vec::new();
    for i in 0..5 {
        let r = netperf_config(
            HostKind::Gem5Timing,
            NicModelKind::I40e,
            false,
            Net::SwitchBm,
            SimTime::from_ms(5),
            SimTime::from_ms(5),
            SimTime::from_ns(500),
        );
        println!("run {i}: tput={:.6} Gbps latency={:.3} us", r.throughput_gbps, r.latency_us);
        results.push((r.throughput_gbps, r.latency_us));
    }
    let identical = results.windows(2).all(|w| w[0] == w[1]);
    println!("all repetitions identical: {identical}");
    let _ = EventLog::enabled();
}
