//! §7.6: determinism — repeating a synchronized configuration produces
//! bit-identical event logs, independent of the executor and independent of
//! a mid-run checkpoint/restore cycle.
//!
//! Each row runs the standard 2-host netperf configuration with event
//! logging and reports the merged log's FNV-1a fingerprint and length:
//! sequential (twice, the §7.6 repetition check), sharded with 1/2/4
//! workers, and a checkpoint-at-half-time → restore → continue cycle. All
//! fingerprints must be identical.
//!
//! `--json PATH` writes the machine-readable baseline consumed by future
//! regression checks (see `BENCH_sec76.json` at the repository root) — a
//! determinism regression then shows up in the perf trajectory exactly like
//! fig07/fig08/sec742 wall-clock regressions do.
use simbricks::runner::Execution;
use simbricks::SimTime;
use simbricks_bench::netperf_logged_experiment;

const STREAM: SimTime = SimTime::from_ms(5);
const RR: SimTime = SimTime::from_ms(5);

fn fingerprint_of(exec: Execution) -> (u64, usize, f64) {
    let r = netperf_logged_experiment(STREAM, RR).run(exec);
    let log = r.merged_log();
    (log.fingerprint(), log.len(), r.wall_seconds())
}

fn fingerprint_of_ckpt_restore() -> (u64, usize, f64) {
    let path = std::env::temp_dir().join(format!("sec76-{}.ckpt", std::process::id()));
    let mut exp = netperf_logged_experiment(STREAM, RR);
    exp.checkpoint_at(SimTime::from_ms(6), Some(path.clone()));
    let _ = exp.run(Execution::Sequential);
    let mut exp = netperf_logged_experiment(STREAM, RR);
    exp.restore(&path).expect("restore checkpoint");
    let r = exp.run(Execution::Sequential);
    let _ = std::fs::remove_file(&path);
    let log = r.merged_log();
    (log.fingerprint(), log.len(), r.wall_seconds())
}

fn main() {
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json requires a path").clone());
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    println!("# Section 7.6: determinism (per-executor merged-log fingerprints, netperf 5+5 ms)");
    let rows: Vec<(&str, (u64, usize, f64))> = vec![
        ("sequential", fingerprint_of(Execution::Sequential)),
        ("sequential_rerun", fingerprint_of(Execution::Sequential)),
        ("sharded1", fingerprint_of(Execution::Sharded { workers: 1 })),
        ("sharded2", fingerprint_of(Execution::Sharded { workers: 2 })),
        ("sharded4", fingerprint_of(Execution::Sharded { workers: 4 })),
        ("checkpoint_restore", fingerprint_of_ckpt_restore()),
    ];
    for (name, (fp, len, wall)) in &rows {
        println!("{name:>20}: fp={fp:#018x} log_len={len} wall={wall:.3}s");
    }
    let identical = rows.windows(2).all(|w| (w[0].1 .0, w[0].1 .1) == (w[1].1 .0, w[1].1 .1));
    println!("all executors and checkpoint/restore identical: {identical}");
    assert!(identical, "determinism violated: fingerprints diverge");

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"sec76_determinism\",\n");
        out.push_str("  \"workload\": \"netperf 5ms stream + 5ms rr, 2 gem5-timing hosts + switch\",\n");
        out.push_str(&format!(
            "  \"machine_cores\": {},\n",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        ));
        out.push_str("  \"executors\": {\n");
        for (i, (name, (fp, len, _))) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{name}\": {{\"fingerprint\": \"{fp:#018x}\", \"log_len\": {len}}}{comma}\n"
            ));
        }
        out.push_str("  },\n");
        out.push_str(&format!("  \"identical\": {identical}\n"));
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write --json file");
        println!("wrote {path}");
    }
}
