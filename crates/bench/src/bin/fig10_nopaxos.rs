//! Fig. 10: NOPaxos with a switch sequencer vs an end-host sequencer vs
//! Multi-Paxos — latency/throughput as the number of closed-loop clients
//! grows.
use simbricks::apps::paxos::{PaxosClient, PaxosMode, Replica, SequencerHost, OUM_PORT, PAXOS_LEADER_PORT};
use simbricks::hostsim::{HostConfig, HostKind, HostModel};
use simbricks::netsim::{SequencerConfig, SwitchBm, SwitchConfig, TofinoConfig, TofinoSwitch};
use simbricks::netstack::SocketAddr;
use simbricks::proto::Ipv4Addr;
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

fn run(mode: PaxosMode, clients: usize) -> (f64, f64) {
    let virt = SimTime::from_ms(20);
    let mut exp = Experiment::new("nopaxos", virt + SimTime::from_ms(2));
    let kind = HostKind::QemuTiming;
    let replica_cfgs: Vec<_> = (0..3u32).map(|i| HostConfig::new(kind, i)).collect();
    let replica_ips: Vec<Ipv4Addr> = replica_cfgs.iter().map(|c| c.ip).collect();
    let mut eth = Vec::new();
    for (i, cfg) in replica_cfgs.iter().enumerate() {
        let peers = replica_ips.iter().filter(|ip| **ip != cfg.ip).copied().collect();
        let app = Box::new(Replica::new(i as u8, mode, peers));
        let (_h, _n, e) = attach_host_nic(&mut exp, &format!("replica{i}"), *cfg, app, false);
        eth.push(e);
    }
    // Optional end-host sequencer.
    let mut seq_ip = None;
    if mode == PaxosMode::EndHostSequencer {
        let cfg = HostConfig::new(kind, 10);
        seq_ip = Some(cfg.ip);
        let app = Box::new(SequencerHost::new(replica_ips.clone()));
        let (_h, _n, e) = attach_host_nic(&mut exp, "sequencer", cfg, app, false);
        eth.push(e);
    }
    // Clients.
    let target = match mode {
        PaxosMode::SwitchSequencer => SocketAddr::new(Ipv4Addr::BROADCAST, OUM_PORT),
        PaxosMode::EndHostSequencer => SocketAddr::new(seq_ip.unwrap(), OUM_PORT),
        PaxosMode::MultiPaxos => SocketAddr::new(replica_ips[0], PAXOS_LEADER_PORT),
    };
    let mut client_ids = Vec::new();
    for c in 0..clients {
        let cfg = HostConfig::new(kind, 20 + c as u32);
        let app = Box::new(PaxosClient::new(mode, target, 1, virt));
        let (h, _n, e) = attach_host_nic(&mut exp, &format!("client{c}"), cfg, app, false);
        eth.push(e);
        client_ids.push(h);
    }
    // Network: Tofino with the OUM program for the switch-sequencer mode,
    // plain behavioural switch otherwise.
    let ports = eth.len();
    if mode == PaxosMode::SwitchSequencer {
        exp.add(
            "tofino",
            Box::new(TofinoSwitch::new(TofinoConfig {
                ports,
                sequencer: Some(SequencerConfig { group_port: OUM_PORT, replica_ports: vec![0, 1, 2] }),
                ..Default::default()
            })),
            eth,
        );
    } else {
        exp.add(
            "switch",
            Box::new(SwitchBm::new(SwitchConfig { ports, ..Default::default() })),
            eth,
        );
    }
    let r = exp.run(Execution::Sequential);
    let mut tput = 0.0;
    let mut lat = 0.0;
    let mut n = 0.0;
    for id in client_ids {
        let host: &HostModel = r.model(id).unwrap();
        let rep = host.app_report();
        let t: f64 = rep.split_whitespace().find_map(|w| w.strip_prefix("tput=").and_then(|v| v.strip_suffix("req/s")).and_then(|v| v.parse().ok())).unwrap_or(0.0);
        let l: f64 = rep.split_whitespace().find_map(|w| w.strip_prefix("latency=").and_then(|v| v.strip_suffix("us")).and_then(|v| v.parse().ok())).unwrap_or(0.0);
        tput += t;
        if l > 0.0 {
            lat += l;
            n += 1.0;
        }
    }
    (tput, if n > 0.0 { lat / n } else { 0.0 })
}

fn main() {
    println!("# Figure 10: NOPaxos (switch / end-host sequencer) vs Multi-Paxos");
    println!("{:<22} {:>8} {:>14} {:>14}", "mode", "clients", "tput[req/s]", "latency[us]");
    for mode in [PaxosMode::SwitchSequencer, PaxosMode::EndHostSequencer, PaxosMode::MultiPaxos] {
        for clients in [1usize, 2, 4] {
            let (tput, lat) = run(mode, clients);
            println!("{:<22} {:>8} {:>14.0} {:>14.1}", format!("{mode:?}"), clients, tput, lat);
        }
    }
}
