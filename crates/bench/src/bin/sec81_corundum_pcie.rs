//! §8.1: Corundum's MMIO head-index reads make it sensitive to PCIe latency,
//! while the i40e (descriptor write-back polled in host memory) is not.
use simbricks::hostsim::{HostKind, NicModelKind};
use simbricks::SimTime;
use simbricks_bench::{netperf_config, Net};

fn main() {
    println!("# Section 8.1: throughput at 500 ns vs 1 us PCIe latency");
    println!("{:<12} {:>14} {:>14} {:>10}", "nic", "500ns [Gbps]", "1us [Gbps]", "change");
    for (name, nic) in [("i40e", NicModelKind::I40e), ("corundum", NicModelKind::Corundum)] {
        // As in the paper, the hosts are the detailed (gem5-like) model: the
        // workload must be CPU-bound for MMIO stall time to cost throughput.
        let base = netperf_config(HostKind::Gem5Timing, nic, false, Net::SwitchBm,
            SimTime::from_ms(20), SimTime::from_ms(2), SimTime::from_ns(500));
        let doubled = netperf_config(HostKind::Gem5Timing, nic, false, Net::SwitchBm,
            SimTime::from_ms(20), SimTime::from_ms(2), SimTime::from_us(1));
        let change = (doubled.throughput_gbps - base.throughput_gbps) / base.throughput_gbps.max(1e-9) * 100.0;
        println!("{:<12} {:>14.3} {:>14.3} {:>9.1}%", name, base.throughput_gbps, doubled.throughput_gbps, change);
    }
}
