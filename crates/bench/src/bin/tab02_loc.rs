//! Tab. 2: implementation size of this reimplementation, per component
//! (counts non-blank, non-comment-only lines in each crate).
use std::fs;
use std::path::Path;

fn count_dir(p: &Path) -> usize {
    let mut n = 0;
    if let Ok(entries) = fs::read_dir(p) {
        for e in entries.flatten() {
            let path = e.path();
            if path.is_dir() {
                n += count_dir(&path);
            } else if path.extension().map(|x| x == "rs").unwrap_or(false) {
                if let Ok(content) = fs::read_to_string(&path) {
                    n += content
                        .lines()
                        .filter(|l| {
                            let t = l.trim();
                            !t.is_empty() && !t.starts_with("//")
                        })
                        .count();
                }
            }
        }
    }
    n
}

fn main() {
    println!("# Table 2: lines of code per component (this Rust reimplementation)");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    let mut total = 0;
    for crate_dir in [
        "base", "proto", "pcie", "eth", "netstack", "nicsim", "netsim", "nvmesim", "hostsim",
        "apps", "runner", "core", "bench",
    ] {
        let n = count_dir(&root.join(crate_dir).join("src"));
        total += n;
        println!("{:<12} {:>8}", crate_dir, n);
    }
    println!("{:<12} {:>8}", "total", total);
}
