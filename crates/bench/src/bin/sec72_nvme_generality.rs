//! §7.2 (SimBricks interfaces are general): the NVMe SSD model (FEMU
//! stand-in) attaches through the same PCIe interface as the NICs and works
//! with the different host simulators. The harness runs a fio-style 4 KiB
//! random read workload on each host kind and with two device speed
//! configurations, reporting IOPS and latency.

use simbricks::apps::{AccessPattern, FioConfig, FioWorkload};
use simbricks::hostsim::{HostKind, StorageHostConfig, StorageHostModel};
use simbricks::nvmesim::NvmeConfig;
use simbricks::runner::{attach_host_nvme, Execution, Experiment};
use simbricks::SimTime;

fn run(kind: HostKind, nvme: NvmeConfig, qd: usize) -> (u64, f64, f64, f64) {
    let duration = SimTime::from_ms(20);
    let mut exp = Experiment::new("nvme-generality", duration + SimTime::from_ms(2));
    let workload = FioWorkload::new(FioConfig {
        queue_depth: qd,
        pattern: AccessPattern::Random,
        read_percent: 70,
        duration,
        ..Default::default()
    });
    let (host_id, _dev) = attach_host_nvme(
        &mut exp,
        "store",
        StorageHostConfig::new(kind),
        Box::new(workload),
        nvme,
    );
    let r = exp.run(Execution::Sequential);
    let host: &StorageHostModel = r.model(host_id).unwrap();
    let report = host.app_report();
    let field = |key: &str| -> f64 {
        report
            .split_whitespace()
            .find_map(|t| {
                t.strip_prefix(key)
                    .map(|v| v.trim_end_matches("us").parse().unwrap_or(0.0))
            })
            .unwrap_or(0.0)
    };
    (
        host.stats().completed,
        field("iops="),
        field("mean_lat="),
        r.wall_seconds(),
    )
}

fn main() {
    println!("# Section 7.2: NVMe device model on the SimBricks PCIe interface");
    println!(
        "{:<14} {:<10} {:>4} {:>8} {:>12} {:>14} {:>9}",
        "host", "device", "qd", "ops", "IOPS", "mean lat [us]", "wall [s]"
    );
    let fast = NvmeConfig {
        read_latency: SimTime::from_us(20),
        write_latency: SimTime::from_us(10),
        ..Default::default()
    };
    let slow = NvmeConfig::default(); // 80 us reads, flash-like
    for (host_name, kind) in [
        ("gem5", HostKind::Gem5Timing),
        ("qemu-timing", HostKind::QemuTiming),
    ] {
        for (dev_name, cfg) in [("flash-80us", slow), ("optane-20us", fast)] {
            for qd in [1usize, 16] {
                let (ops, iops, lat, wall) = run(kind, cfg, qd);
                println!(
                    "{:<14} {:<10} {:>4} {:>8} {:>12.0} {:>14.1} {:>9.2}",
                    host_name, dev_name, qd, ops, iops, lat, wall
                );
            }
        }
    }
}
