//! §7.4.2: overhead of distributed simulation — the same two-host netperf
//! configuration run with a direct (local) Ethernet channel, with the link
//! bridged by the sockets proxy pair, with the RDMA-style proxy pair, and
//! with the shared-memory ring transport (the paper's co-located fast path).
//! Proxies must not change simulated results of synchronized runs and should
//! not become a wall-clock bottleneck.
//!
//! `--json PATH` additionally measures the raw **per-message cross-partition
//! overhead** of the tcp and shm media (single-threaded, no simulators: the
//! serialize/syscall/deserialize cost per forwarded message, batched the way
//! the forwarders batch) and writes a machine-readable baseline. The shm
//! transport is expected to be >= 2x cheaper per message than tcp — that gap
//! is why `--transport auto` picks shared memory for co-located partitions.

// Benchmarks measure real wall-clock throughput by design.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::io::{Read, Write};
use std::time::Instant;

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::base::{ChannelParams, OwnedMsg};
use simbricks::hostsim::{HostConfig, HostKind, HostModel, NicModelKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::{host_component, nic_model, proxy_pair, Execution, Experiment, ProxyKind};
use simbricks::SimTime;

enum Transport {
    Direct,
    Proxy(ProxyKind),
}

fn run(transport: Transport) -> (f64, f64, f64, String) {
    let stream = SimTime::from_ms(10);
    let rr = SimTime::from_ms(5);
    let mut exp = Experiment::new("proxy-overhead", stream + rr + SimTime::from_ms(5));
    let server_cfg = HostConfig::new(HostKind::QemuTiming, 0).with_nic(NicModelKind::I40e);
    let client_cfg = HostConfig::new(HostKind::QemuTiming, 1).with_nic(NicModelKind::I40e);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(server_cfg.ip, 5201, 5202, stream, rr));

    // Server host + NIC; its Ethernet link to the switch is the one that
    // would cross physical machines in a distributed run.
    let (srv_pcie_host, srv_pcie_nic) = simbricks::base::channel_pair(exp.pcie_params());
    let (srv_eth_nic, srv_eth_switch, handle) = match transport {
        Transport::Direct => {
            let (a, b) = simbricks::base::channel_pair(exp.eth_params());
            (a, b, None)
        }
        Transport::Proxy(kind) => {
            let (a, b, h) = proxy_pair(kind, exp.eth_params()).expect("proxy setup");
            (a, b, Some(h))
        }
    };
    exp.add(
        "server.host",
        host_component(server_cfg, server_app),
        vec![srv_pcie_host],
    );
    exp.add(
        "server.nic",
        nic_model(server_cfg.nic, false),
        vec![srv_pcie_nic, srv_eth_nic],
    );

    let (cli_pcie_host, cli_pcie_nic) = simbricks::base::channel_pair(exp.pcie_params());
    let (cli_eth_nic, cli_eth_switch) = simbricks::base::channel_pair(exp.eth_params());
    let client_id = exp.add(
        "client.host",
        host_component(client_cfg, client_app),
        vec![cli_pcie_host],
    );
    exp.add(
        "client.nic",
        nic_model(client_cfg.nic, false),
        vec![cli_pcie_nic, cli_eth_nic],
    );
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig {
            ports: 2,
            ..Default::default()
        })),
        vec![srv_eth_switch, cli_eth_switch],
    );

    // Threads execution so the proxy forwarding threads overlap with the
    // component simulators, as in a real distributed run.
    let r = exp.run(Execution::Threads);
    let client: &HostModel = r.model(client_id).unwrap();
    let report = client.app_report();
    let tput = report
        .split_whitespace()
        .find_map(|t| t.strip_prefix("tput=").and_then(|v| v.strip_suffix("Gbps")).and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);
    let lat = report
        .split_whitespace()
        .find_map(|t| t.strip_prefix("rr_latency=").and_then(|v| v.strip_suffix("us")).and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);
    let proxy_line = handle
        .map(|h| {
            let s = h.stats();
            format!(
                "forwarded={} batches={} mean_batch={:.1} wire_bytes={}",
                s.forwarded,
                s.batches,
                s.mean_batch(),
                s.bytes
            )
        })
        .unwrap_or_else(|| "-".into());
    (tput, lat, r.wall_seconds(), proxy_line)
}

/// Number of messages for the per-message medium microbenchmark.
const MICRO_MSGS: usize = 200_000;
/// Messages per forwarding batch (matches the small adaptive batches the
/// forwarders actually form on this workload, mean_batch ~1-2).
const MICRO_BATCH: usize = 4;
/// Payload of one benchmark message (a typical small simulation message:
/// a PCIe doorbell / completion or an Ethernet descriptor, not a frame).
const MICRO_PAYLOAD: usize = 32;

/// Per-message cost of the TCP medium: serialize + write + read + parse over
/// a loopback socket pair, single-threaded, in forwarder-sized batches.
fn micro_tcp_ns() -> f64 {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let mut tx = std::net::TcpStream::connect(addr).expect("connect");
    let (mut rx, _) = listener.accept().expect("accept");
    tx.set_nodelay(true).ok();
    rx.set_nodelay(true).ok();
    let msg = OwnedMsg::new(SimTime::from_ns(1), 5, vec![0xabu8; MICRO_PAYLOAD]);
    let wire = msg.to_wire();
    let mut batch = Vec::with_capacity(wire.len() * MICRO_BATCH);
    for _ in 0..MICRO_BATCH {
        batch.extend_from_slice(&wire);
    }
    let mut buf = vec![0u8; batch.len()];
    let start = Instant::now();
    let mut sent = 0usize;
    while sent < MICRO_MSGS {
        tx.write_all(&batch).expect("write");
        rx.read_exact(&mut buf).expect("read");
        let mut consumed = 0;
        while let Some((m, used)) = OwnedMsg::from_wire(&buf[consumed..]) {
            assert_eq!(m.data.len(), MICRO_PAYLOAD);
            consumed += used;
        }
        sent += MICRO_BATCH;
    }
    start.elapsed().as_nanos() as f64 / sent as f64
}

/// Per-message cost of the shm medium: push + pop through the mmap ring,
/// single-threaded, in the same batch sizes. No serialization, no syscalls.
fn micro_shm_ns() -> f64 {
    let path = std::env::temp_dir().join(format!("simbricks-sec742-{}.shm", std::process::id()));
    let params = ChannelParams::default_sync().with_queue_len(MICRO_BATCH * 2);
    let shutdown = simbricks::runner::proxy::ShutdownSignal::default();
    let mut a = simbricks::runner::shm::create_region(&path, "micro", params).expect("create");
    let mut b = simbricks::runner::shm::attach_region(
        &path,
        "micro",
        params,
        Instant::now() + std::time::Duration::from_secs(5),
        &shutdown,
    )
    .expect("attach");
    let msg = OwnedMsg::new(SimTime::from_ns(1), 5, vec![0xabu8; MICRO_PAYLOAD]);
    let start = Instant::now();
    let mut sent = 0usize;
    while sent < MICRO_MSGS {
        for _ in 0..MICRO_BATCH {
            a.push(&msg).expect("ring sized for a full batch");
        }
        for _ in 0..MICRO_BATCH {
            let m = b.pop().expect("all pushed");
            assert_eq!(m.data.len(), MICRO_PAYLOAD);
        }
        sent += MICRO_BATCH;
    }
    start.elapsed().as_nanos() as f64 / sent as f64
}

struct Row {
    name: &'static str,
    tput: f64,
    lat: f64,
    wall: f64,
    proxies: String,
}

fn main() {
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                if i + 1 >= args.len() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("# Section 7.4.2: local vs proxied Ethernet link (synchronized netperf)");
    println!(
        "{:<18} {:>12} {:>13} {:>10}   proxy counters",
        "transport", "tput[Gbps]", "latency[us]", "wall[s]"
    );
    let mut rows = Vec::new();
    for (name, transport) in [
        ("direct channel", Transport::Direct),
        ("sockets proxy", Transport::Proxy(ProxyKind::Tcp)),
        ("rdma-style proxy", Transport::Proxy(ProxyKind::Rdma)),
        ("shm rings", Transport::Proxy(ProxyKind::Shm)),
    ] {
        if matches!(transport, Transport::Proxy(ProxyKind::Shm))
            && !simbricks::runner::shm_supported()
        {
            println!("{:<18} unsupported on this platform", name);
            continue;
        }
        let (tput, lat, wall, proxies) = run(transport);
        println!(
            "{:<18} {:>12.3} {:>13.1} {:>10.2}   {}",
            name, tput, lat, wall, proxies
        );
        rows.push(Row { name, tput, lat, wall, proxies });
    }

    if let Some(path) = json_path {
        let tcp_ns = micro_tcp_ns();
        let shm_ns = if simbricks::runner::shm_supported() {
            micro_shm_ns()
        } else {
            f64::NAN
        };
        let ratio = tcp_ns / shm_ns;
        println!("\n# per-message cross-partition overhead ({MICRO_MSGS} msgs, batch {MICRO_BATCH}, {MICRO_PAYLOAD} B payload)");
        println!("tcp: {tcp_ns:.0} ns/msg   shm: {shm_ns:.0} ns/msg   tcp/shm: {ratio:.1}x");
        if ratio.is_nan() || ratio < 2.0 {
            eprintln!("WARNING: expected shm to be >= 2x cheaper per message than tcp, measured {ratio:.2}x");
        }
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"sec742_proxy_overhead\",\n");
        out.push_str("  \"workload\": \"2-host synchronized netperf, server eth link bridged per transport\",\n");
        out.push_str(&format!(
            "  \"machine_cores\": {},\n",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        ));
        out.push_str("  \"per_message_overhead\": {\n");
        out.push_str(&format!("    \"messages\": {MICRO_MSGS},\n"));
        out.push_str(&format!("    \"batch\": {MICRO_BATCH},\n"));
        out.push_str(&format!("    \"payload_bytes\": {MICRO_PAYLOAD},\n"));
        out.push_str(&format!("    \"tcp_ns_per_msg\": {tcp_ns:.1},\n"));
        out.push_str(&format!("    \"shm_ns_per_msg\": {shm_ns:.1},\n"));
        out.push_str(&format!("    \"tcp_over_shm\": {ratio:.2}\n"));
        out.push_str("  },\n");
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"transport\": \"{}\", \"tput_gbps\": {:.3}, \"rr_latency_us\": {:.1}, \
                 \"wall_s\": {:.3}, \"proxy\": \"{}\"}}{}\n",
                r.name,
                r.tput,
                r.lat,
                r.wall,
                r.proxies,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write --json file");
        eprintln!("wrote {path}");
    }
}
