//! §7.4.2: overhead of distributed simulation — the same two-host netperf
//! configuration run with a direct (local) Ethernet channel, with the link
//! bridged by the sockets proxy pair, and with the RDMA-style proxy pair.
//! Proxies must not change simulated results of synchronized runs and should
//! not become a wall-clock bottleneck.

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::hostsim::{HostConfig, HostKind, HostModel, NicModelKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::{host_component, nic_model, proxy_pair, Execution, Experiment, ProxyKind};
use simbricks::SimTime;

enum Transport {
    Direct,
    Proxy(ProxyKind),
}

fn run(transport: Transport) -> (f64, f64, f64, String) {
    let stream = SimTime::from_ms(10);
    let rr = SimTime::from_ms(5);
    let mut exp = Experiment::new("proxy-overhead", stream + rr + SimTime::from_ms(5));
    let server_cfg = HostConfig::new(HostKind::QemuTiming, 0).with_nic(NicModelKind::I40e);
    let client_cfg = HostConfig::new(HostKind::QemuTiming, 1).with_nic(NicModelKind::I40e);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(server_cfg.ip, 5201, 5202, stream, rr));

    // Server host + NIC; its Ethernet link to the switch is the one that
    // would cross physical machines in a distributed run.
    let (srv_pcie_host, srv_pcie_nic) = simbricks::base::channel_pair(exp.pcie_params());
    let (srv_eth_nic, srv_eth_switch, handle) = match transport {
        Transport::Direct => {
            let (a, b) = simbricks::base::channel_pair(exp.eth_params());
            (a, b, None)
        }
        Transport::Proxy(kind) => {
            let (a, b, h) = proxy_pair(kind, exp.eth_params()).expect("proxy setup");
            (a, b, Some(h))
        }
    };
    exp.add(
        "server.host",
        host_component(server_cfg, server_app),
        vec![srv_pcie_host],
    );
    exp.add(
        "server.nic",
        nic_model(server_cfg.nic, false),
        vec![srv_pcie_nic, srv_eth_nic],
    );

    let (cli_pcie_host, cli_pcie_nic) = simbricks::base::channel_pair(exp.pcie_params());
    let (cli_eth_nic, cli_eth_switch) = simbricks::base::channel_pair(exp.eth_params());
    let client_id = exp.add(
        "client.host",
        host_component(client_cfg, client_app),
        vec![cli_pcie_host],
    );
    exp.add(
        "client.nic",
        nic_model(client_cfg.nic, false),
        vec![cli_pcie_nic, cli_eth_nic],
    );
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig {
            ports: 2,
            ..Default::default()
        })),
        vec![srv_eth_switch, cli_eth_switch],
    );

    // Threads execution so the proxy forwarding threads overlap with the
    // component simulators, as in a real distributed run.
    let r = exp.run(Execution::Threads);
    let client: &HostModel = r.model(client_id).unwrap();
    let report = client.app_report();
    let tput = report
        .split_whitespace()
        .find_map(|t| t.strip_prefix("tput=").and_then(|v| v.strip_suffix("Gbps")).and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);
    let lat = report
        .split_whitespace()
        .find_map(|t| t.strip_prefix("rr_latency=").and_then(|v| v.strip_suffix("us")).and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);
    let proxy_line = handle
        .map(|h| {
            let s = h.stats();
            format!(
                "forwarded={} batches={} mean_batch={:.1} wire_bytes={}",
                s.forwarded,
                s.batches,
                s.mean_batch(),
                s.bytes
            )
        })
        .unwrap_or_else(|| "-".into());
    (tput, lat, r.wall_seconds(), proxy_line)
}

fn main() {
    println!("# Section 7.4.2: local vs proxied Ethernet link (synchronized netperf)");
    println!(
        "{:<18} {:>12} {:>13} {:>10}   proxy counters",
        "transport", "tput[Gbps]", "latency[us]", "wall[s]"
    );
    for (name, transport) in [
        ("direct channel", Transport::Direct),
        ("sockets proxy", Transport::Proxy(ProxyKind::Tcp)),
        ("rdma-style proxy", Transport::Proxy(ProxyKind::Rdma)),
    ] {
        let (tput, lat, wall, proxies) = run(transport);
        println!(
            "{:<18} {:>12.3} {:>13.1} {:>10.2}   {}",
            name, tput, lat, wall, proxies
        );
    }
}
