//! Tab. 3: cross-product of host x NIC x network simulators (netperf),
//! scaled-down durations.
use simbricks::hostsim::{HostKind, NicModelKind};
use simbricks::SimTime;
use simbricks_bench::{netperf_config, Net};

fn main() {
    let stream = SimTime::from_ms(10);
    let rr = SimTime::from_ms(10);
    println!("# Table 3: host x NIC x network cross-product");
    println!("{:<6} {:<10} {:<8} {:>10} {:>12} {:>9}", "host", "nic", "net", "tput[Gbps]", "latency[us]", "wall[s]");
    for (hname, host) in [("QK", HostKind::QemuKvm), ("QT", HostKind::QemuTiming), ("G5", HostKind::Gem5Timing)] {
        for (nname, nic, rtl) in [
            ("IB", NicModelKind::I40e, false),
            ("CB", NicModelKind::Corundum, false),
            ("CV", NicModelKind::Corundum, true),
        ] {
            for (netname, net) in [("SW", Net::SwitchBm), ("NS", Net::Des), ("TO", Net::Tofino)] {
                let r = netperf_config(host, nic, rtl, net, stream, rr, SimTime::from_ns(500));
                println!("{:<6} {:<10} {:<8} {:>10.3} {:>12.1} {:>9.2}", hname, nname, netname, r.throughput_gbps, r.latency_us, r.wall_seconds);
            }
        }
    }
}
