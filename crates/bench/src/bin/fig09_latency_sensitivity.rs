//! Fig. 9: sensitivity of simulation time to the configured PCIe link
//! latency / synchronization interval (1 ns ... 1 us).
use simbricks::hostsim::{HostKind, NicModelKind};
use simbricks::SimTime;
use simbricks_bench::{netperf_config, Net};

fn main() {
    println!("# Figure 9: simulation time vs PCIe latency (netperf pair, gem5-like hosts)");
    println!("{:>12} {:>10} {:>12} {:>12}", "latency[ns]", "wall[s]", "tput[Gbps]", "sync msgs");
    for lat_ns in [1u64, 10, 100, 500, 1000] {
        let r = netperf_config(
            HostKind::Gem5Timing,
            NicModelKind::I40e,
            false,
            Net::SwitchBm,
            SimTime::from_ms(5),
            SimTime::from_ms(5),
            SimTime::from_ns(lat_ns),
        );
        println!("{:>12} {:>10.2} {:>12.3} {:>12}", lat_ns, r.wall_seconds, r.throughput_gbps, r.syncs);
    }
}
