//! Criterion microbenchmark of the SimBricks message transport: SPSC queue
//! enqueue/dequeue throughput and channel round trips.
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simbricks::base::{channel_pair, spsc, ChannelParams, SimTime};

fn bench_spsc(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc-queue");
    g.sample_size(20);
    for payload in [64usize, 1500] {
        g.throughput(Throughput::Bytes(payload as u64));
        g.bench_function(format!("send-recv-{payload}B"), |b| {
            let (mut p, mut cns) = spsc::queue(64);
            let data = vec![0u8; payload];
            b.iter(|| {
                p.try_send(SimTime::from_ns(1), 1, &data).unwrap();
                std::hint::black_box(cns.try_recv().unwrap());
            });
        });
    }
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");
    g.sample_size(20);
    g.bench_function("bidirectional-roundtrip", |b| {
        let (mut a, mut z) = channel_pair(ChannelParams::default_sync());
        b.iter(|| {
            a.send_raw(SimTime::from_ns(1), 1, b"ping").unwrap();
            let m = z.recv_raw().unwrap();
            z.send_raw(m.timestamp, 2, &m.data).unwrap();
            std::hint::black_box(a.recv_raw().unwrap());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_spsc, bench_channel);
criterion_main!(benches);
