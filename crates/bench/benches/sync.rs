//! Criterion microbenchmark of the synchronization layer: how fast two
//! synchronized kernels advance through virtual time when idle (pure SYNC
//! exchange, the §7.3.1 worst case) and under message load.
use criterion::{criterion_group, criterion_main, Criterion};
use simbricks::base::{channel_pair, ChannelParams, Kernel, Model, OwnedMsg, PortId, SimTime, StepOutcome};

struct Idle;
impl Model for Idle {
    fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {}
}

fn bench_sync_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync");
    g.sample_size(10);
    g.bench_function("idle-pair-1ms-virtual", |b| {
        b.iter(|| {
            let (ca, cb) = channel_pair(ChannelParams::default_sync());
            let mut ka = Kernel::new("a", SimTime::from_ms(1));
            let mut kb = Kernel::new("b", SimTime::from_ms(1));
            ka.add_port(ca);
            kb.add_port(cb);
            let (mut a, mut b_) = (Idle, Idle);
            loop {
                let ra = ka.step(&mut a, 256);
                let rb = kb.step(&mut b_, 256);
                if ra == StepOutcome::Finished && rb == StepOutcome::Finished {
                    break;
                }
            }
            std::hint::black_box(ka.stats().syncs_sent);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_sync_pair);
criterion_main!(benches);
