//! Ethernet II framing.

use crate::addr::MacAddr;

/// Length of an Ethernet II header (no 802.1Q tag, no FCS — the SimBricks
/// Ethernet interface omits CRCs, §5.1.2).
pub const ETH_HEADER_LEN: usize = 14;

/// EtherType values used by the simulators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    Arp,
    /// Anything else (kept verbatim).
    Other(u16),
}

impl EtherType {
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EthHeader {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
}

impl EthHeader {
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType) -> Self {
        EthHeader {
            dst,
            src,
            ethertype,
        }
    }

    /// Serialize the header followed by `payload` into a frame.
    pub fn build_frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::with_capacity(ETH_HEADER_LEN + payload.len());
        self.write(&mut f);
        f.extend_from_slice(payload);
        f
    }

    /// Append the 14 header bytes to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_array());
    }

    /// The serialized 14 header bytes (allocation-free).
    pub fn to_array(&self) -> [u8; ETH_HEADER_LEN] {
        let mut b = [0u8; ETH_HEADER_LEN];
        b[0..6].copy_from_slice(self.dst.as_bytes());
        b[6..12].copy_from_slice(self.src.as_bytes());
        b[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
        b
    }

    /// Parse a header from the start of `frame`, returning it and the payload.
    pub fn parse(frame: &[u8]) -> Option<(EthHeader, &[u8])> {
        if frame.len() < ETH_HEADER_LEN {
            return None;
        }
        let dst = MacAddr::from_slice(&frame[0..6])?;
        let src = MacAddr::from_slice(&frame[6..12])?;
        let ethertype = EtherType::from_u16(u16::from_be_bytes([frame[12], frame[13]]));
        Some((
            EthHeader {
                dst,
                src,
                ethertype,
            },
            &frame[ETH_HEADER_LEN..],
        ))
    }
}

/// Convenience: read the destination MAC of a frame without a full parse
/// (used on the switch fast path for MAC table lookups).
pub fn frame_dst(frame: &[u8]) -> Option<MacAddr> {
    MacAddr::from_slice(frame.get(0..6)?)
}

/// Convenience: read the source MAC of a frame without a full parse.
pub fn frame_src(frame: &[u8]) -> Option<MacAddr> {
    MacAddr::from_slice(frame.get(6..12)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = EthHeader::new(
            MacAddr::from_index(9),
            MacAddr::from_index(3),
            EtherType::Ipv4,
        );
        let frame = h.build_frame(b"payload!");
        assert_eq!(frame.len(), ETH_HEADER_LEN + 8);
        let (parsed, payload) = EthHeader::parse(&frame).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload, b"payload!");
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Other(0x1234).to_u16(), 0x1234);
    }

    #[test]
    fn short_frame_rejected() {
        assert!(EthHeader::parse(&[0u8; 13]).is_none());
        assert!(frame_dst(&[0u8; 5]).is_none());
    }

    #[test]
    fn fast_path_accessors() {
        let h = EthHeader::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Arp,
        );
        let frame = h.build_frame(&[]);
        assert_eq!(frame_dst(&frame).unwrap(), MacAddr::from_index(1));
        assert_eq!(frame_src(&frame).unwrap(), MacAddr::from_index(2));
    }
}
