//! RFC 1071 Internet checksum, used by IPv4, TCP and UDP.

use crate::addr::Ipv4Addr;

/// Incremental ones-complement checksum accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    pub fn new() -> Self {
        Checksum { sum: 0 }
    }

    /// Feed bytes (odd-length data is padded with a zero byte as per RFC 1071).
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u16::from_be_bytes([c[0], c[1]]) as u32;
        }
        if let [last] = chunks.remainder() {
            self.sum += u16::from_be_bytes([*last, 0]) as u32;
        }
    }

    pub fn add_u16(&mut self, v: u16) {
        self.sum += v as u32;
    }

    pub fn add_u32(&mut self, v: u32) {
        self.add_u16((v >> 16) as u16);
        self.add_u16(v as u16);
    }

    /// Add the TCP/UDP pseudo header.
    pub fn add_pseudo_header(&mut self, src: Ipv4Addr, dst: Ipv4Addr, proto: u8, l4_len: u16) {
        self.add_u32(src.to_u32());
        self.add_u32(dst.to_u32());
        self.add_u16(proto as u16);
        self.add_u16(l4_len);
    }

    /// Finalize: fold carries and complement.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s > 0xffff {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot checksum over a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify data that contains its own checksum field: summing everything,
/// including the stored checksum, must yield zero (after complement: 0).
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn verify_with_embedded_checksum() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11];
        data.extend_from_slice(&[0, 0]); // checksum placeholder
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = c as u8;
        assert!(verify(&data));
        data[4] ^= 0xff;
        assert!(!verify(&data));
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(checksum(&[0xab]), !0xab00u16);
        let mut c = Checksum::new();
        c.add_bytes(&[0x01, 0x02, 0x03]);
        assert_eq!(c.finish(), !((0x0102u32 + 0x0300) as u16));
    }

    #[test]
    fn pseudo_header_changes_result() {
        let payload = b"abcdefgh";
        let mut a = Checksum::new();
        a.add_bytes(payload);
        let mut b = Checksum::new();
        b.add_pseudo_header(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            6,
            payload.len() as u16,
        );
        b.add_bytes(payload);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn carry_folding() {
        // Many 0xffff words force repeated folding.
        let data = vec![0xffu8; 64];
        let c = checksum(&data);
        assert_eq!(c, 0x0000);
    }
}
