//! UDP datagram header handling.

use crate::addr::Ipv4Addr;
use crate::checksum::Checksum;

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    /// Length of header plus payload.
    pub length: u16,
}

impl UdpHeader {
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
        }
    }

    /// Serialize header plus payload as the L4 part of an IPv4 packet,
    /// computing the UDP checksum over the pseudo header.
    pub fn build_datagram(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(payload);
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 17, self.length);
        c.add_bytes(&out);
        let mut csum = c.finish();
        if csum == 0 {
            csum = 0xffff; // RFC 768: zero means "no checksum"
        }
        out[6] = (csum >> 8) as u8;
        out[7] = csum as u8;
        out
    }

    /// Parse a UDP datagram, returning header, payload and checksum validity.
    pub fn parse(
        data: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Option<(UdpHeader, &[u8], bool)> {
        if data.len() < UDP_HEADER_LEN {
            return None;
        }
        let length = u16::from_be_bytes([data[4], data[5]]);
        if (length as usize) < UDP_HEADER_LEN || data.len() < length as usize {
            return None;
        }
        let hdr = UdpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            length,
        };
        let stored_csum = u16::from_be_bytes([data[6], data[7]]);
        let ok = if stored_csum == 0 {
            true // checksum disabled
        } else {
            let mut c = Checksum::new();
            c.add_pseudo_header(src, dst, 17, length);
            c.add_bytes(&data[..length as usize]);
            c.finish() == 0
        };
        Some((hdr, &data[UDP_HEADER_LEN..length as usize], ok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn datagram_roundtrip() {
        let h = UdpHeader::new(1234, 11211, 6);
        let d = h.build_datagram(SRC, DST, b"memchd");
        let (parsed, payload, ok) = UdpHeader::parse(&d, SRC, DST).unwrap();
        assert!(ok);
        assert_eq!(parsed, h);
        assert_eq!(payload, b"memchd");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let h = UdpHeader::new(1, 2, 4);
        let mut d = h.build_datagram(SRC, DST, b"abcd");
        d[UDP_HEADER_LEN] ^= 0xff;
        let (_, _, ok) = UdpHeader::parse(&d, SRC, DST).unwrap();
        assert!(!ok);
    }

    #[test]
    fn zero_checksum_means_disabled() {
        let h = UdpHeader::new(1, 2, 2);
        let mut d = h.build_datagram(SRC, DST, b"ab");
        d[6] = 0;
        d[7] = 0;
        let (_, _, ok) = UdpHeader::parse(&d, SRC, DST).unwrap();
        assert!(ok);
    }

    #[test]
    fn truncated_rejected() {
        assert!(UdpHeader::parse(&[0u8; 7], SRC, DST).is_none());
        let h = UdpHeader::new(1, 2, 100);
        let d = h.build_datagram(SRC, DST, &[0u8; 100]);
        assert!(UdpHeader::parse(&d[..50], SRC, DST).is_none());
    }

    #[test]
    fn extra_trailing_bytes_ignored() {
        // Ethernet padding after the UDP datagram must not confuse parsing.
        let h = UdpHeader::new(9, 10, 3);
        let mut d = h.build_datagram(SRC, DST, b"xyz");
        d.extend_from_slice(&[0u8; 20]);
        let (parsed, payload, ok) = UdpHeader::parse(&d, SRC, DST).unwrap();
        assert!(ok);
        assert_eq!(parsed.length as usize, UDP_HEADER_LEN + 3);
        assert_eq!(payload, b"xyz");
    }
}
