//! TCP segment header handling (with the ECN flags used by DCTCP).

use std::ops::{BitOr, BitOrAssign};

use crate::addr::Ipv4Addr;
use crate::checksum::Checksum;

/// Basic TCP header length without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag set. Combines with `|`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    pub const NONE: TcpFlags = TcpFlags(0);
    pub const FIN: TcpFlags = TcpFlags(0x01);
    pub const SYN: TcpFlags = TcpFlags(0x02);
    pub const RST: TcpFlags = TcpFlags(0x04);
    pub const PSH: TcpFlags = TcpFlags(0x08);
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// ECN Echo: receiver reports that it saw a CE mark (DCTCP feedback).
    pub const ECE: TcpFlags = TcpFlags(0x40);
    /// Congestion Window Reduced: sender acknowledges the ECE feedback.
    pub const CWR: TcpFlags = TcpFlags(0x80);

    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

/// A TCP header. The options the simulated stack uses are MSS and window
/// scale (both SYN-only, RFC 793 / RFC 7323).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    /// Maximum segment size option (SYN segments only).
    pub mss: Option<u16>,
    /// Window scale shift option (SYN segments only). The advertised shift
    /// applies to window fields of the sender's *subsequent* non-SYN
    /// segments; RFC 7323 caps it at 14.
    pub wscale: Option<u8>,
}

impl TcpHeader {
    /// Header length including options, in bytes. Each option is padded to a
    /// four-byte boundary (window scale is 3 bytes + 1 NOP).
    pub fn header_len(&self) -> usize {
        TCP_HEADER_LEN
            + if self.mss.is_some() { 4 } else { 0 }
            + if self.wscale.is_some() { 4 } else { 0 }
    }

    /// Maximum serialized TCP header length (offset field limit: 15 words).
    pub const MAX_HEADER_LEN: usize = 60;

    /// Write the header (with options, checksum field zero) into the front
    /// of `out`, returning the header length. Allocation-free; used by the
    /// in-place pooled frame builders.
    pub fn write_header(&self, out: &mut [u8; Self::MAX_HEADER_LEN]) -> usize {
        let hlen = self.header_len();
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = ((hlen / 4) as u8) << 4;
        out[13] = self.flags.0;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..20].fill(0); // checksum placeholder + urgent pointer
        let mut o = TCP_HEADER_LEN;
        if let Some(mss) = self.mss {
            out[o] = 2; // kind: MSS
            out[o + 1] = 4; // length
            out[o + 2..o + 4].copy_from_slice(&mss.to_be_bytes());
            o += 4;
        }
        if let Some(ws) = self.wscale {
            out[o] = 3; // kind: window scale
            out[o + 1] = 3; // length
            out[o + 2] = ws;
            out[o + 3] = 1; // NOP padding to a 4-byte boundary
            o += 4;
        }
        debug_assert_eq!(o, hlen);
        hlen
    }

    /// Serialize the header plus payload as the L4 part of an IPv4 packet,
    /// computing the TCP checksum over the pseudo header.
    pub fn build_segment(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let mut hdr = [0u8; Self::MAX_HEADER_LEN];
        let hlen = self.write_header(&mut hdr);
        let total = hlen + payload.len();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&hdr[..hlen]);
        out.extend_from_slice(payload);
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 6, total as u16);
        c.add_bytes(&out);
        let csum = c.finish();
        out[16] = (csum >> 8) as u8;
        out[17] = csum as u8;
        out
    }

    /// Parse a TCP segment (header, payload, checksum validity) given the
    /// enclosing IPv4 addresses for pseudo-header verification.
    pub fn parse(
        data: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Option<(TcpHeader, &[u8], bool)> {
        if data.len() < TCP_HEADER_LEN {
            return None;
        }
        let data_off = ((data[12] >> 4) as usize) * 4;
        if data_off < TCP_HEADER_LEN || data.len() < data_off {
            return None;
        }
        let mut mss = None;
        let mut wscale = None;
        let mut opt = &data[TCP_HEADER_LEN..data_off];
        while !opt.is_empty() {
            match opt[0] {
                0 => break,        // end of options
                1 => opt = &opt[1..], // NOP
                2 if opt.len() >= 4 => {
                    mss = Some(u16::from_be_bytes([opt[2], opt[3]]));
                    opt = &opt[4..];
                }
                3 if opt.len() >= 3 => {
                    // RFC 7323 caps the shift at 14.
                    wscale = Some(opt[2].min(14));
                    opt = &opt[3..];
                }
                _ => {
                    if opt.len() < 2 || opt[1] as usize > opt.len() || opt[1] < 2 {
                        break;
                    }
                    let l = opt[1] as usize;
                    opt = &opt[l..];
                }
            }
        }
        let hdr = TcpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            mss,
            wscale,
        };
        let mut c = Checksum::new();
        c.add_pseudo_header(src, dst, 6, data.len() as u16);
        c.add_bytes(data);
        let ok = c.finish() == 0;
        Some((hdr, &data[data_off..], ok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn flags_operations() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(TcpFlags::NONE.is_empty());
        let mut g = TcpFlags::NONE;
        g |= TcpFlags::ECE;
        assert!(g.contains(TcpFlags::ECE));
    }

    #[test]
    fn segment_roundtrip_with_checksum() {
        let h = TcpHeader {
            src_port: 40000,
            dst_port: 5201,
            seq: 0xdeadbeef,
            ack: 0x12345678,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 8192,
            mss: None, wscale: None,
        };
        let seg = h.build_segment(SRC, DST, b"data bytes");
        let (parsed, payload, ok) = TcpHeader::parse(&seg, SRC, DST).unwrap();
        assert!(ok);
        assert_eq!(parsed, h);
        assert_eq!(payload, b"data bytes");
    }

    #[test]
    fn syn_with_mss_option() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 100,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
            mss: Some(1460), wscale: None,
        };
        assert_eq!(h.header_len(), 24);
        let seg = h.build_segment(SRC, DST, &[]);
        let (parsed, payload, ok) = TcpHeader::parse(&seg, SRC, DST).unwrap();
        assert!(ok);
        assert_eq!(parsed.mss, Some(1460));
        assert!(payload.is_empty());
    }

    #[test]
    fn syn_with_mss_and_window_scale_options() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 100,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
            mss: Some(1460),
            wscale: Some(7),
        };
        assert_eq!(h.header_len(), 28);
        let seg = h.build_segment(SRC, DST, &[]);
        let (parsed, payload, ok) = TcpHeader::parse(&seg, SRC, DST).unwrap();
        assert!(ok, "options keep the checksum valid");
        assert_eq!(parsed, h);
        assert!(payload.is_empty());

        // Window scale alone (no MSS) also round-trips, and an out-of-range
        // shift is clamped to the RFC 7323 maximum of 14 on parse.
        let h2 = TcpHeader { mss: None, wscale: Some(44), ..h };
        let seg2 = h2.build_segment(SRC, DST, b"x");
        let (parsed2, payload2, ok2) = TcpHeader::parse(&seg2, SRC, DST).unwrap();
        assert!(ok2);
        assert_eq!(parsed2.wscale, Some(14));
        assert_eq!(payload2, b"x");
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 1,
            ack: 1,
            flags: TcpFlags::ACK,
            window: 100,
            mss: None, wscale: None,
        };
        let mut seg = h.build_segment(SRC, DST, b"abcdef");
        seg[TCP_HEADER_LEN] ^= 0x01;
        let (_, _, ok) = TcpHeader::parse(&seg, SRC, DST).unwrap();
        assert!(!ok);
    }

    #[test]
    fn checksum_depends_on_pseudo_header() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 1,
            ack: 1,
            flags: TcpFlags::ACK,
            window: 100,
            mss: None, wscale: None,
        };
        let seg = h.build_segment(SRC, DST, b"abcdef");
        let (_, _, ok) = TcpHeader::parse(&seg, SRC, Ipv4Addr::new(10, 0, 0, 3)).unwrap();
        assert!(!ok, "wrong pseudo header address must fail verification");
    }

    #[test]
    fn parse_rejects_short_or_bogus_offsets() {
        assert!(TcpHeader::parse(&[0u8; 10], SRC, DST).is_none());
        let mut seg = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 0,
            mss: None, wscale: None,
        }
        .build_segment(SRC, DST, &[]);
        seg[12] = 0xf0; // data offset 60 > segment length
        assert!(TcpHeader::parse(&seg, SRC, DST).is_none());
    }
}
