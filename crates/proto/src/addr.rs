//! Link-layer and network-layer addresses.

use std::fmt;

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    pub const fn new(bytes: [u8; 6]) -> Self {
        MacAddr(bytes)
    }

    /// Deterministically derive a locally-administered unicast MAC from a
    /// small integer index. Used by the orchestration framework to assign
    /// addresses to simulated NICs.
    pub fn from_index(idx: u64) -> Self {
        let b = idx.to_be_bytes();
        // 0x02 prefix: locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }

    pub fn to_u64(&self) -> u64 {
        let mut v = 0u64;
        for b in self.0 {
            v = (v << 8) | b as u64;
        }
        v
    }

    pub fn from_slice(s: &[u8]) -> Option<Self> {
        if s.len() < 6 {
            return None;
        }
        let mut b = [0u8; 6];
        b.copy_from_slice(&s[..6]);
        Some(MacAddr(b))
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// An IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0; 4]);
    pub const BROADCAST: Ipv4Addr = Ipv4Addr([0xff; 4]);

    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// Deterministic host address inside 10.0.0.0/8 from an index
    /// (10.x.y.z with z != 0), used by the orchestration framework.
    pub fn from_index(idx: u32) -> Self {
        let i = idx + 1; // avoid .0 host part
        Ipv4Addr([10, (i >> 16) as u8, (i >> 8) as u8, i as u8])
    }

    pub fn as_bytes(&self) -> &[u8; 4] {
        &self.0
    }

    pub fn to_u32(&self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    pub fn from_u32(v: u32) -> Self {
        Ipv4Addr(v.to_be_bytes())
    }

    pub fn from_slice(s: &[u8]) -> Option<Self> {
        if s.len() < 4 {
            return None;
        }
        let mut b = [0u8; 4];
        b.copy_from_slice(&s[..4]);
        Some(Ipv4Addr(b))
    }

    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_from_index_is_unique_and_unicast() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
        assert!(!a.is_multicast());
        assert!(!a.is_broadcast());
        assert_eq!(a.to_string(), "02:00:00:00:00:01");
    }

    #[test]
    fn broadcast_and_multicast_detection() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::new([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!MacAddr::from_index(7).is_multicast());
    }

    #[test]
    fn mac_u64_roundtrip_and_slice() {
        let m = MacAddr::new([1, 2, 3, 4, 5, 6]);
        assert_eq!(m.to_u64(), 0x010203040506);
        assert_eq!(MacAddr::from_slice(&[1, 2, 3, 4, 5, 6, 99]).unwrap(), m);
        assert!(MacAddr::from_slice(&[1, 2, 3]).is_none());
    }

    #[test]
    fn ipv4_display_and_conversions() {
        let ip = Ipv4Addr::new(10, 1, 2, 3);
        assert_eq!(ip.to_string(), "10.1.2.3");
        assert_eq!(Ipv4Addr::from_u32(ip.to_u32()), ip);
        assert_eq!(Ipv4Addr::from_slice(&[10, 1, 2, 3]).unwrap(), ip);
        assert!(Ipv4Addr::from_slice(&[1]).is_none());
    }

    #[test]
    fn ipv4_from_index_distinct() {
        let a = Ipv4Addr::from_index(0);
        let b = Ipv4Addr::from_index(1);
        let c = Ipv4Addr::from_index(255);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(c, Ipv4Addr::new(10, 0, 1, 0));
    }
}
