//! IPv4 header handling, including the ECN code points that DCTCP relies on.

use crate::addr::Ipv4Addr;
use crate::checksum::{checksum, Checksum};

/// Length of an IPv4 header without options (all simulated traffic uses
/// option-less headers).
pub const IPV4_HEADER_LEN: usize = 20;

/// Explicit Congestion Notification code points (RFC 3168).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ecn {
    /// Not ECN-capable transport.
    NotEct,
    /// ECN-capable transport, codepoint 0 — set by DCTCP senders.
    Ect0,
    /// ECN-capable transport, codepoint 1.
    Ect1,
    /// Congestion experienced — set by switches when the queue exceeds the
    /// marking threshold K.
    Ce,
}

impl Ecn {
    pub fn to_bits(self) -> u8 {
        match self {
            Ecn::NotEct => 0b00,
            Ecn::Ect1 => 0b01,
            Ecn::Ect0 => 0b10,
            Ecn::Ce => 0b11,
        }
    }

    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => Ecn::NotEct,
            0b01 => Ecn::Ect1,
            0b10 => Ecn::Ect0,
            _ => Ecn::Ce,
        }
    }

    /// Whether a router/switch may mark this packet instead of dropping it.
    pub fn is_ect(self) -> bool {
        matches!(self, Ecn::Ect0 | Ecn::Ect1 | Ecn::Ce)
    }
}

/// IP protocol numbers used in the simulations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IpProto {
    Tcp,
    Udp,
    Other(u8),
}

impl IpProto {
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    pub fn from_u8(v: u8) -> Self {
        match v {
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// A parsed or to-be-built IPv4 header (no options).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub proto: IpProto,
    pub ecn: Ecn,
    pub dscp: u8,
    pub ttl: u8,
    pub ident: u16,
    /// Total length (header + payload) in bytes.
    pub total_len: u16,
}

impl Ipv4Header {
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, ecn: Ecn, payload_len: usize) -> Self {
        Ipv4Header {
            src,
            dst,
            proto,
            ecn,
            dscp: 0,
            ttl: 64,
            ident: 0,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
        }
    }

    /// Payload length implied by the total length field.
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(IPV4_HEADER_LEN)
    }

    /// Serialize the header (with a valid checksum) and append to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_array());
    }

    /// The serialized 20 header bytes with a valid checksum
    /// (allocation-free).
    pub fn to_array(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut b = [0u8; IPV4_HEADER_LEN];
        b[0] = 0x45; // version 4, IHL 5
        b[1] = (self.dscp << 2) | self.ecn.to_bits();
        b[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        b[4..6].copy_from_slice(&self.ident.to_be_bytes());
        b[6] = 0x40; // flags: DF, fragment offset 0
        b[7] = 0x00;
        b[8] = self.ttl;
        b[9] = self.proto.to_u8();
        // b[10..12] stays zero: checksum placeholder
        b[12..16].copy_from_slice(self.src.as_bytes());
        b[16..20].copy_from_slice(self.dst.as_bytes());
        let csum = checksum(&b);
        b[10] = (csum >> 8) as u8;
        b[11] = csum as u8;
        b
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_array().to_vec()
    }

    /// Parse a header from `data`; returns the header, whether the header
    /// checksum verified, and the L4 payload slice (bounded by `total_len`).
    pub fn parse(data: &[u8]) -> Option<(Ipv4Header, bool, &[u8])> {
        if data.len() < IPV4_HEADER_LEN {
            return None;
        }
        let version = data[0] >> 4;
        let ihl = (data[0] & 0x0f) as usize * 4;
        if version != 4 || ihl < IPV4_HEADER_LEN || data.len() < ihl {
            return None;
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        if (total_len as usize) < ihl || data.len() < total_len as usize {
            return None;
        }
        let hdr = Ipv4Header {
            dscp: data[1] >> 2,
            ecn: Ecn::from_bits(data[1]),
            total_len,
            ident: u16::from_be_bytes([data[4], data[5]]),
            ttl: data[8],
            proto: IpProto::from_u8(data[9]),
            src: Ipv4Addr::from_slice(&data[12..16])?,
            dst: Ipv4Addr::from_slice(&data[16..20])?,
        };
        let csum_ok = checksum(&data[..ihl]) == 0;
        Some((hdr, csum_ok, &data[ihl..total_len as usize]))
    }

    /// Rewrite the ECN bits of a serialized IPv4 packet in place (starting at
    /// `ip_offset` within `buf`), fixing up the header checksum. This is what
    /// a switch queue does when it marks Congestion Experienced.
    pub fn set_ecn_in_place(buf: &mut [u8], ip_offset: usize, ecn: Ecn) -> bool {
        if buf.len() < ip_offset + IPV4_HEADER_LEN {
            return false;
        }
        let hdr = &mut buf[ip_offset..ip_offset + IPV4_HEADER_LEN];
        hdr[1] = (hdr[1] & !0b11) | ecn.to_bits();
        hdr[10] = 0;
        hdr[11] = 0;
        let mut c = Checksum::new();
        c.add_bytes(hdr);
        let csum = c.finish();
        hdr[10] = (csum >> 8) as u8;
        hdr[11] = csum as u8;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_valid_checksum() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Tcp,
            Ecn::Ect0,
            100,
        );
        let mut bytes = h.to_bytes();
        bytes.extend_from_slice(&[0u8; 100]);
        let (parsed, ok, payload) = Ipv4Header::parse(&bytes).unwrap();
        assert!(ok);
        assert_eq!(parsed, h);
        assert_eq!(payload.len(), 100);
    }

    #[test]
    fn ecn_bits_roundtrip() {
        for e in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce] {
            assert_eq!(Ecn::from_bits(e.to_bits()), e);
        }
        assert!(Ecn::Ect0.is_ect());
        assert!(!Ecn::NotEct.is_ect());
    }

    #[test]
    fn set_ecn_in_place_keeps_checksum_valid() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Udp,
            Ecn::Ect0,
            8,
        );
        let mut bytes = h.to_bytes();
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(Ipv4Header::set_ecn_in_place(&mut bytes, 0, Ecn::Ce));
        let (parsed, ok, _) = Ipv4Header::parse(&bytes).unwrap();
        assert!(ok, "checksum must remain valid after ECN rewrite");
        assert_eq!(parsed.ecn, Ecn::Ce);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Ipv4Header::parse(&[0u8; 10]).is_none());
        // IPv6 version nibble
        let mut v6 = vec![0x60; IPV4_HEADER_LEN];
        v6[2] = 0;
        v6[3] = 20;
        assert!(Ipv4Header::parse(&v6).is_none());
        // total_len longer than buffer
        let h = Ipv4Header::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProto::Tcp,
            Ecn::NotEct,
            500,
        );
        let bytes = h.to_bytes();
        assert!(Ipv4Header::parse(&bytes).is_none());
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Tcp,
            Ecn::NotEct,
            0,
        );
        let mut bytes = h.to_bytes();
        bytes[8] = bytes[8].wrapping_add(1); // TTL
        let (_, ok, _) = Ipv4Header::parse(&bytes).unwrap();
        assert!(!ok);
    }

    #[test]
    fn proto_mapping() {
        assert_eq!(IpProto::from_u8(6), IpProto::Tcp);
        assert_eq!(IpProto::from_u8(17), IpProto::Udp);
        assert_eq!(IpProto::from_u8(89), IpProto::Other(89));
        assert_eq!(IpProto::Other(89).to_u8(), 89);
    }
}
