//! ARP (RFC 826) for IPv4-over-Ethernet address resolution.
//!
//! The simulated hosts resolve peer MAC addresses with real ARP
//! request/reply exchanges through their NICs and the simulated network, so
//! switches see realistic broadcast traffic and MAC learning works as in a
//! physical testbed.

use crate::addr::{Ipv4Addr, MacAddr};

/// ARP operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArpOp {
    Request,
    Reply,
}

impl ArpOp {
    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }

    fn from_u16(v: u16) -> Option<Self> {
        match v {
            1 => Some(ArpOp::Request),
            2 => Some(ArpOp::Reply),
            _ => None,
        }
    }
}

/// An ARP packet for IPv4 over Ethernet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArpPacket {
    pub op: ArpOp,
    pub sender_mac: MacAddr,
    pub sender_ip: Ipv4Addr,
    pub target_mac: MacAddr,
    pub target_ip: Ipv4Addr,
}

/// Serialized length of an IPv4-over-Ethernet ARP packet.
pub const ARP_LEN: usize = 28;

impl ArpPacket {
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::default(),
            target_ip,
        }
    }

    pub fn reply_to(&self, my_mac: MacAddr, my_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: my_ip,
            target_mac: self.sender_mac,
            target_ip: self.sender_ip,
        }
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(ARP_LEN);
        v.extend_from_slice(&1u16.to_be_bytes()); // hardware type: Ethernet
        v.extend_from_slice(&0x0800u16.to_be_bytes()); // protocol type: IPv4
        v.push(6); // hardware address length
        v.push(4); // protocol address length
        v.extend_from_slice(&self.op.to_u16().to_be_bytes());
        v.extend_from_slice(self.sender_mac.as_bytes());
        v.extend_from_slice(self.sender_ip.as_bytes());
        v.extend_from_slice(self.target_mac.as_bytes());
        v.extend_from_slice(self.target_ip.as_bytes());
        v
    }

    pub fn parse(data: &[u8]) -> Option<ArpPacket> {
        if data.len() < ARP_LEN {
            return None;
        }
        if u16::from_be_bytes([data[0], data[1]]) != 1
            || u16::from_be_bytes([data[2], data[3]]) != 0x0800
            || data[4] != 6
            || data[5] != 4
        {
            return None;
        }
        Some(ArpPacket {
            op: ArpOp::from_u16(u16::from_be_bytes([data[6], data[7]]))?,
            sender_mac: MacAddr::from_slice(&data[8..14])?,
            sender_ip: Ipv4Addr::from_slice(&data[14..18])?,
            target_mac: MacAddr::from_slice(&data[18..24])?,
            target_ip: Ipv4Addr::from_slice(&data[24..28])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let req = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let bytes = req.to_bytes();
        assert_eq!(bytes.len(), ARP_LEN);
        let parsed = ArpPacket::parse(&bytes).unwrap();
        assert_eq!(parsed, req);

        let rep = parsed.reply_to(MacAddr::from_index(2), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.target_mac, MacAddr::from_index(1));
        assert_eq!(rep.target_ip, Ipv4Addr::new(10, 0, 0, 1));
        let parsed_rep = ArpPacket::parse(&rep.to_bytes()).unwrap();
        assert_eq!(parsed_rep, rep);
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let req = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut bytes = req.to_bytes();
        bytes[1] = 2; // hardware type != Ethernet
        assert!(ArpPacket::parse(&bytes).is_none());
        assert!(ArpPacket::parse(&req.to_bytes()[..20]).is_none());
        let mut bad_op = req.to_bytes();
        bad_op[7] = 9;
        assert!(ArpPacket::parse(&bad_op).is_none());
    }

    #[test]
    fn padded_frames_accepted() {
        // Ethernet minimum frame padding after the ARP body.
        let req = ArpPacket::request(
            MacAddr::from_index(5),
            Ipv4Addr::new(10, 0, 0, 5),
            Ipv4Addr::new(10, 0, 0, 6),
        );
        let mut bytes = req.to_bytes();
        bytes.extend_from_slice(&[0u8; 18]);
        assert_eq!(ArpPacket::parse(&bytes).unwrap(), req);
    }
}
