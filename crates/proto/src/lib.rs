//! # simbricks-proto
//!
//! Wire formats used by the simulated end hosts, NICs and networks: Ethernet
//! II framing, ARP, IPv4 (including the ECN code points used by DCTCP), TCP
//! and UDP, plus the Internet checksum.
//!
//! The SimBricks Ethernet interface (§5.1.2 of the paper) exchanges raw
//! Ethernet frames between NIC and network simulators, so every component
//! that looks inside a packet (switch MAC learning, ECN marking at a queue,
//! the host network stack, NIC checksum offload, the Tofino-style sequencer)
//! parses and builds frames with this crate.

pub mod addr;
pub mod arp;
pub mod checksum;
pub mod eth;
pub mod frame;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use addr::{Ipv4Addr, MacAddr};
pub use arp::{ArpOp, ArpPacket};
pub use eth::{frame_dst, frame_src, EthHeader, EtherType, ETH_HEADER_LEN};
pub use frame::{tcp_payload_range, FrameBuilder, ParsedFrame, ParsedL4};
pub use ipv4::{Ecn, IpProto, Ipv4Header, IPV4_HEADER_LEN};
pub use tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
pub use udp::{UdpHeader, UDP_HEADER_LEN};

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn tcp_frame_roundtrip(sport in 1u16..65535, dport in 1u16..65535,
                               seq in any::<u32>(), ack in any::<u32>(),
                               window in any::<u16>(),
                               payload in proptest::collection::vec(any::<u8>(), 0..1400)) {
            let src_mac = MacAddr::from_index(1);
            let dst_mac = MacAddr::from_index(2);
            let src_ip = Ipv4Addr::new(10, 0, 0, 1);
            let dst_ip = Ipv4Addr::new(10, 0, 0, 2);
            let tcp = TcpHeader {
                src_port: sport,
                dst_port: dport,
                seq,
                ack,
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window,
                mss: None, wscale: None,
            };
            let frame = FrameBuilder::tcp(src_mac, dst_mac, src_ip, dst_ip, Ecn::Ect0, &tcp, &payload);
            let parsed = ParsedFrame::parse(&frame).unwrap();
            prop_assert_eq!(parsed.eth.src, src_mac);
            prop_assert_eq!(parsed.eth.dst, dst_mac);
            let ip = parsed.ipv4.unwrap();
            prop_assert_eq!(ip.src, src_ip);
            prop_assert_eq!(ip.dst, dst_ip);
            prop_assert_eq!(ip.ecn, Ecn::Ect0);
            match parsed.l4 {
                ParsedL4::Tcp { header, payload: p } => {
                    prop_assert_eq!(header.src_port, sport);
                    prop_assert_eq!(header.dst_port, dport);
                    prop_assert_eq!(header.seq, seq);
                    prop_assert_eq!(header.ack, ack);
                    prop_assert_eq!(p, payload);
                }
                _ => prop_assert!(false, "expected TCP"),
            }
            prop_assert!(ParsedFrame::parse(&frame).unwrap().checksums_ok);
        }

        #[test]
        fn udp_frame_roundtrip(sport in 1u16..65535, dport in 1u16..65535,
                               payload in proptest::collection::vec(any::<u8>(), 0..1400)) {
            let frame = FrameBuilder::udp(
                MacAddr::from_index(3), MacAddr::from_index(4),
                Ipv4Addr::new(192, 168, 1, 1), Ipv4Addr::new(192, 168, 1, 2),
                Ecn::NotEct, sport, dport, &payload);
            let parsed = ParsedFrame::parse(&frame).unwrap();
            match parsed.l4 {
                ParsedL4::Udp { header, payload: p } => {
                    prop_assert_eq!(header.src_port, sport);
                    prop_assert_eq!(header.dst_port, dport);
                    prop_assert_eq!(p, payload);
                }
                _ => prop_assert!(false, "expected UDP"),
            }
        }

        #[test]
        fn corrupting_a_byte_breaks_a_checksum(pos in 0usize..60) {
            let tcp = TcpHeader {
                src_port: 10, dst_port: 20, seq: 1, ack: 2,
                flags: TcpFlags::ACK, window: 1000, mss: None, wscale: None,
            };
            let mut frame = FrameBuilder::tcp(
                MacAddr::from_index(1), MacAddr::from_index(2),
                Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2),
                Ecn::NotEct, &tcp, b"hello checksum");
            // Only corrupt bytes covered by the IP or TCP checksum (skip the
            // Ethernet header and the checksum fields themselves).
            let idx = ETH_HEADER_LEN + pos % (frame.len() - ETH_HEADER_LEN);
            let ip_csum_range = ETH_HEADER_LEN + 10..ETH_HEADER_LEN + 12;
            let tcp_csum_range =
                ETH_HEADER_LEN + IPV4_HEADER_LEN + 16..ETH_HEADER_LEN + IPV4_HEADER_LEN + 18;
            prop_assume!(!ip_csum_range.contains(&idx) && !tcp_csum_range.contains(&idx));
            frame[idx] ^= 0xff;
            match ParsedFrame::parse(&frame) {
                Ok(parsed) => prop_assert!(!parsed.checksums_ok),
                Err(_) => {} // corrupting length/version fields may make the frame unparseable
            }
        }
    }
}
