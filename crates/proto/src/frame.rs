//! Whole-frame convenience builders and parsers.
//!
//! These combine the Ethernet, IPv4, TCP/UDP and ARP modules so component
//! simulators can construct and inspect complete frames with one call.

use crate::addr::{Ipv4Addr, MacAddr};
use crate::arp::ArpPacket;
use crate::eth::{EthHeader, EtherType, ETH_HEADER_LEN};
use crate::ipv4::{Ecn, IpProto, Ipv4Header, IPV4_HEADER_LEN};
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;

/// Minimum Ethernet payload (frames are padded up to this, as a real NIC
/// MAC would, so byte counts in the simulation match physical behaviour).
pub const MIN_ETH_PAYLOAD: usize = 46;

/// Builders for complete Ethernet frames.
pub struct FrameBuilder;

impl FrameBuilder {
    /// Build an Ethernet+IPv4+TCP frame.
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        ecn: Ecn,
        tcp: &TcpHeader,
        payload: &[u8],
    ) -> Vec<u8> {
        let l4 = tcp.build_segment(src_ip, dst_ip, payload);
        Self::ipv4(src_mac, dst_mac, src_ip, dst_ip, IpProto::Tcp, ecn, &l4)
    }

    /// Build an Ethernet+IPv4+UDP frame.
    #[allow(clippy::too_many_arguments)]
    pub fn udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        ecn: Ecn,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let l4 = UdpHeader::new(src_port, dst_port, payload.len())
            .build_datagram(src_ip, dst_ip, payload);
        Self::ipv4(src_mac, dst_mac, src_ip, dst_ip, IpProto::Udp, ecn, &l4)
    }

    /// Build an Ethernet+IPv4 frame around an already-serialized L4 payload.
    pub fn ipv4(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        proto: IpProto,
        ecn: Ecn,
        l4: &[u8],
    ) -> Vec<u8> {
        let ip = Ipv4Header::new(src_ip, dst_ip, proto, ecn, l4.len());
        let mut frame = Vec::with_capacity(ETH_HEADER_LEN + IPV4_HEADER_LEN + l4.len());
        EthHeader::new(dst_mac, src_mac, EtherType::Ipv4).write(&mut frame);
        ip.write(&mut frame);
        frame.extend_from_slice(l4);
        Self::pad(&mut frame);
        frame
    }

    /// Build an Ethernet+ARP frame (broadcast for requests).
    pub fn arp(src_mac: MacAddr, dst_mac: MacAddr, arp: &ArpPacket) -> Vec<u8> {
        let mut frame = Vec::with_capacity(ETH_HEADER_LEN + 28);
        EthHeader::new(dst_mac, src_mac, EtherType::Arp).write(&mut frame);
        frame.extend_from_slice(&arp.to_bytes());
        Self::pad(&mut frame);
        frame
    }

    fn pad(frame: &mut Vec<u8>) {
        let min = ETH_HEADER_LEN + MIN_ETH_PAYLOAD;
        if frame.len() < min {
            frame.resize(min, 0);
        }
    }
}

/// Parsed layer-4 content of a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsedL4 {
    Tcp { header: TcpHeader, payload: Vec<u8> },
    Udp { header: UdpHeader, payload: Vec<u8> },
    Arp(ArpPacket),
    Other(Vec<u8>),
}

/// A fully parsed Ethernet frame.
#[derive(Clone, Debug)]
pub struct ParsedFrame {
    pub eth: EthHeader,
    pub ipv4: Option<Ipv4Header>,
    pub l4: ParsedL4,
    /// Whether every checksum present (IPv4 header, TCP/UDP) verified.
    pub checksums_ok: bool,
}

/// Errors produced when a frame cannot be parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseError {
    TooShort,
    BadIpv4,
    BadL4,
    BadArp,
}

impl ParsedFrame {
    /// Parse an Ethernet frame. IPv4/TCP/UDP/ARP are decoded; everything else
    /// is returned raw in [`ParsedL4::Other`].
    pub fn parse(frame: &[u8]) -> Result<ParsedFrame, ParseError> {
        let (eth, rest) = EthHeader::parse(frame).ok_or(ParseError::TooShort)?;
        match eth.ethertype {
            EtherType::Ipv4 => {
                let (ip, ip_ok, l4) = Ipv4Header::parse(rest).ok_or(ParseError::BadIpv4)?;
                match ip.proto {
                    IpProto::Tcp => {
                        let (tcp, payload, tcp_ok) =
                            TcpHeader::parse(l4, ip.src, ip.dst).ok_or(ParseError::BadL4)?;
                        Ok(ParsedFrame {
                            eth,
                            ipv4: Some(ip),
                            l4: ParsedL4::Tcp {
                                header: tcp,
                                payload: payload.to_vec(),
                            },
                            checksums_ok: ip_ok && tcp_ok,
                        })
                    }
                    IpProto::Udp => {
                        let (udp, payload, udp_ok) =
                            UdpHeader::parse(l4, ip.src, ip.dst).ok_or(ParseError::BadL4)?;
                        Ok(ParsedFrame {
                            eth,
                            ipv4: Some(ip),
                            l4: ParsedL4::Udp {
                                header: udp,
                                payload: payload.to_vec(),
                            },
                            checksums_ok: ip_ok && udp_ok,
                        })
                    }
                    IpProto::Other(_) => Ok(ParsedFrame {
                        eth,
                        ipv4: Some(ip),
                        l4: ParsedL4::Other(l4.to_vec()),
                        checksums_ok: ip_ok,
                    }),
                }
            }
            EtherType::Arp => {
                let arp = ArpPacket::parse(rest).ok_or(ParseError::BadArp)?;
                Ok(ParsedFrame {
                    eth,
                    ipv4: None,
                    l4: ParsedL4::Arp(arp),
                    checksums_ok: true,
                })
            }
            EtherType::Other(_) => Ok(ParsedFrame {
                eth,
                ipv4: None,
                l4: ParsedL4::Other(rest.to_vec()),
                checksums_ok: true,
            }),
        }
    }

    /// Convenience accessor for the IPv4 destination, if present.
    pub fn dst_ip(&self) -> Option<Ipv4Addr> {
        self.ipv4.map(|h| h.dst)
    }

    /// Convenience accessor for the IPv4 source, if present.
    pub fn src_ip(&self) -> Option<Ipv4Addr> {
        self.ipv4.map(|h| h.src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;

    #[test]
    fn arp_frame_roundtrip() {
        let arp = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let frame = FrameBuilder::arp(MacAddr::from_index(1), MacAddr::BROADCAST, &arp);
        assert!(frame.len() >= ETH_HEADER_LEN + MIN_ETH_PAYLOAD);
        let parsed = ParsedFrame::parse(&frame).unwrap();
        assert_eq!(parsed.eth.ethertype, EtherType::Arp);
        assert_eq!(parsed.l4, ParsedL4::Arp(arp));
    }

    #[test]
    fn small_frames_are_padded_to_minimum() {
        let frame = FrameBuilder::udp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::NotEct,
            1,
            2,
            b"x",
        );
        assert_eq!(frame.len(), ETH_HEADER_LEN + MIN_ETH_PAYLOAD);
        // Padding does not confuse parsing.
        match ParsedFrame::parse(&frame).unwrap().l4 {
            ParsedL4::Udp { payload, .. } => assert_eq!(payload, b"x"),
            _ => panic!("expected UDP"),
        }
    }

    #[test]
    fn large_tcp_frame_not_padded() {
        let tcp = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 100,
            mss: None, wscale: None,
        };
        let payload = vec![7u8; 1400];
        let frame = FrameBuilder::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::Ect0,
            &tcp,
            &payload,
        );
        assert_eq!(
            frame.len(),
            ETH_HEADER_LEN + IPV4_HEADER_LEN + 20 + payload.len()
        );
        let parsed = ParsedFrame::parse(&frame).unwrap();
        assert!(parsed.checksums_ok);
        assert_eq!(parsed.ipv4.unwrap().ecn, Ecn::Ect0);
    }

    #[test]
    fn unknown_ethertype_passes_through() {
        let eth = EthHeader::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Other(0x88cc),
        );
        let frame = eth.build_frame(b"lldp-ish");
        let parsed = ParsedFrame::parse(&frame).unwrap();
        assert_eq!(parsed.l4, ParsedL4::Other(b"lldp-ish".to_vec()));
        assert!(parsed.ipv4.is_none());
    }

    #[test]
    fn truncated_ip_rejected() {
        let eth = EthHeader::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Ipv4,
        );
        let frame = eth.build_frame(&[0x45, 0x00, 0x00]);
        assert_eq!(ParsedFrame::parse(&frame), Err(ParseError::BadIpv4));
    }

    impl PartialEq for ParsedFrame {
        fn eq(&self, other: &Self) -> bool {
            self.eth == other.eth && self.ipv4 == other.ipv4 && self.l4 == other.l4
        }
    }
}
