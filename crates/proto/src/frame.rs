//! Whole-frame convenience builders and parsers.
//!
//! These combine the Ethernet, IPv4, TCP/UDP and ARP modules so component
//! simulators can construct and inspect complete frames with one call.

use simbricks_base::{BufPool, PktBuf};

use crate::addr::{Ipv4Addr, MacAddr};
use crate::arp::ArpPacket;
use crate::checksum::Checksum;
use crate::eth::{EthHeader, EtherType, ETH_HEADER_LEN};
use crate::ipv4::{Ecn, IpProto, Ipv4Header, IPV4_HEADER_LEN};
use crate::tcp::TcpHeader;
use crate::udp::{UdpHeader, UDP_HEADER_LEN};

/// Minimum Ethernet payload (frames are padded up to this, as a real NIC
/// MAC would, so byte counts in the simulation match physical behaviour).
pub const MIN_ETH_PAYLOAD: usize = 46;

/// Headroom reserved in pooled frames (room for re-framing/encapsulation).
const FRAME_HEADROOM: usize = 64;

/// Builders for complete Ethernet frames.
pub struct FrameBuilder;

impl FrameBuilder {
    /// Build an Ethernet+IPv4+TCP frame.
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        ecn: Ecn,
        tcp: &TcpHeader,
        payload: &[u8],
    ) -> Vec<u8> {
        let l4 = tcp.build_segment(src_ip, dst_ip, payload);
        Self::ipv4(src_mac, dst_mac, src_ip, dst_ip, IpProto::Tcp, ecn, &l4)
    }

    /// Build an Ethernet+IPv4+UDP frame.
    #[allow(clippy::too_many_arguments)]
    pub fn udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        ecn: Ecn,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let l4 = UdpHeader::new(src_port, dst_port, payload.len())
            .build_datagram(src_ip, dst_ip, payload);
        Self::ipv4(src_mac, dst_mac, src_ip, dst_ip, IpProto::Udp, ecn, &l4)
    }

    /// Build an Ethernet+IPv4 frame around an already-serialized L4 payload.
    pub fn ipv4(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        proto: IpProto,
        ecn: Ecn,
        l4: &[u8],
    ) -> Vec<u8> {
        let ip = Ipv4Header::new(src_ip, dst_ip, proto, ecn, l4.len());
        let mut frame = Vec::with_capacity(ETH_HEADER_LEN + IPV4_HEADER_LEN + l4.len());
        EthHeader::new(dst_mac, src_mac, EtherType::Ipv4).write(&mut frame);
        ip.write(&mut frame);
        frame.extend_from_slice(l4);
        Self::pad(&mut frame);
        frame
    }

    /// Build an Ethernet+ARP frame (broadcast for requests).
    pub fn arp(src_mac: MacAddr, dst_mac: MacAddr, arp: &ArpPacket) -> Vec<u8> {
        let mut frame = Vec::with_capacity(ETH_HEADER_LEN + 28);
        EthHeader::new(dst_mac, src_mac, EtherType::Arp).write(&mut frame);
        frame.extend_from_slice(&arp.to_bytes());
        Self::pad(&mut frame);
        frame
    }

    fn pad(frame: &mut Vec<u8>) {
        let min = ETH_HEADER_LEN + MIN_ETH_PAYLOAD;
        if frame.len() < min {
            frame.resize(min, 0);
        }
    }

    // ------------------------------------------------------------------
    // In-place pooled builders: construct the frame directly inside a
    // pooled [`PktBuf`] segment (one write pass, no intermediate L4
    // vector, no heap allocation on a warm pool).
    // ------------------------------------------------------------------

    /// Build an Ethernet+IPv4+TCP frame into a pooled buffer. Byte-identical
    /// to [`FrameBuilder::tcp`].
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_pooled(
        pool: &BufPool,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        ecn: Ecn,
        tcp: &TcpHeader,
        payload: &[u8],
    ) -> PktBuf {
        Self::tcp_chain_pooled(pool, src_mac, dst_mac, src_ip, dst_ip, ecn, tcp, &[payload])
    }

    /// Build an Ethernet+IPv4+TCP frame whose payload is scattered over
    /// `chunks` (e.g. a GRO chain of zero-copy segment views), flattening it
    /// exactly once into the pooled output frame. Byte-identical to
    /// [`FrameBuilder::tcp`] over the concatenated chunks.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_chain_pooled(
        pool: &BufPool,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        ecn: Ecn,
        tcp: &TcpHeader,
        chunks: &[&[u8]],
    ) -> PktBuf {
        let payload_len: usize = chunks.iter().map(|c| c.len()).sum();
        let mut tcp_hdr = [0u8; TcpHeader::MAX_HEADER_LEN];
        let tcp_hlen = tcp.write_header(&mut tcp_hdr);
        let l4_len = tcp_hlen + payload_len;
        let total = (ETH_HEADER_LEN + IPV4_HEADER_LEN + l4_len).max(ETH_HEADER_LEN + MIN_ETH_PAYLOAD);
        let mut buf = pool.alloc_capacity(total, FRAME_HEADROOM);
        let eth = EthHeader::new(dst_mac, src_mac, EtherType::Ipv4);
        buf.extend_from_slice(&eth.to_array());
        let ip = Ipv4Header::new(src_ip, dst_ip, IpProto::Tcp, ecn, l4_len);
        buf.extend_from_slice(&ip.to_array());
        buf.extend_from_slice(&tcp_hdr[..tcp_hlen]);
        for c in chunks {
            buf.extend_from_slice(c);
        }
        // TCP checksum over pseudo header + the contiguous L4 region.
        let l4_off = ETH_HEADER_LEN + IPV4_HEADER_LEN;
        let mut c = Checksum::new();
        c.add_pseudo_header(src_ip, dst_ip, 6, l4_len as u16);
        c.add_bytes(&buf[l4_off..l4_off + l4_len]);
        let csum = c.finish();
        {
            let bytes = buf.make_mut();
            bytes[l4_off + 16] = (csum >> 8) as u8;
            bytes[l4_off + 17] = csum as u8;
        }
        Self::pad_pooled(&mut buf);
        buf
    }

    /// Build an Ethernet+IPv4+UDP frame into a pooled buffer. Byte-identical
    /// to [`FrameBuilder::udp`].
    #[allow(clippy::too_many_arguments)]
    pub fn udp_pooled(
        pool: &BufPool,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        ecn: Ecn,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> PktBuf {
        let udp = UdpHeader::new(src_port, dst_port, payload.len());
        let l4_len = UDP_HEADER_LEN + payload.len();
        let total = (ETH_HEADER_LEN + IPV4_HEADER_LEN + l4_len).max(ETH_HEADER_LEN + MIN_ETH_PAYLOAD);
        let mut buf = pool.alloc_capacity(total, FRAME_HEADROOM);
        let eth = EthHeader::new(dst_mac, src_mac, EtherType::Ipv4);
        buf.extend_from_slice(&eth.to_array());
        let ip = Ipv4Header::new(src_ip, dst_ip, IpProto::Udp, ecn, l4_len);
        buf.extend_from_slice(&ip.to_array());
        buf.extend_from_slice(&udp.src_port.to_be_bytes());
        buf.extend_from_slice(&udp.dst_port.to_be_bytes());
        buf.extend_from_slice(&udp.length.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(payload);
        let l4_off = ETH_HEADER_LEN + IPV4_HEADER_LEN;
        let mut c = Checksum::new();
        c.add_pseudo_header(src_ip, dst_ip, 17, udp.length);
        c.add_bytes(&buf[l4_off..l4_off + l4_len]);
        let mut csum = c.finish();
        if csum == 0 {
            csum = 0xffff; // RFC 768: zero means "no checksum"
        }
        {
            let bytes = buf.make_mut();
            bytes[l4_off + 6] = (csum >> 8) as u8;
            bytes[l4_off + 7] = csum as u8;
        }
        Self::pad_pooled(&mut buf);
        buf
    }

    /// Build an Ethernet+IPv4 frame around an already-serialized L4 payload,
    /// into a pooled buffer. Byte-identical to [`FrameBuilder::ipv4`].
    #[allow(clippy::too_many_arguments)]
    pub fn ipv4_pooled(
        pool: &BufPool,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        proto: IpProto,
        ecn: Ecn,
        l4: &[u8],
    ) -> PktBuf {
        let total =
            (ETH_HEADER_LEN + IPV4_HEADER_LEN + l4.len()).max(ETH_HEADER_LEN + MIN_ETH_PAYLOAD);
        let mut buf = pool.alloc_capacity(total, FRAME_HEADROOM);
        let eth = EthHeader::new(dst_mac, src_mac, EtherType::Ipv4);
        buf.extend_from_slice(&eth.to_array());
        let ip = Ipv4Header::new(src_ip, dst_ip, proto, ecn, l4.len());
        buf.extend_from_slice(&ip.to_array());
        buf.extend_from_slice(l4);
        Self::pad_pooled(&mut buf);
        buf
    }

    /// Build an Ethernet+ARP frame into a pooled buffer. Byte-identical to
    /// [`FrameBuilder::arp`].
    pub fn arp_pooled(
        pool: &BufPool,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        arp: &ArpPacket,
    ) -> PktBuf {
        let mut buf =
            pool.alloc_capacity(ETH_HEADER_LEN + MIN_ETH_PAYLOAD, FRAME_HEADROOM);
        let eth = EthHeader::new(dst_mac, src_mac, EtherType::Arp);
        buf.extend_from_slice(&eth.to_array());
        buf.extend_from_slice(&arp.to_bytes());
        Self::pad_pooled(&mut buf);
        buf
    }

    fn pad_pooled(frame: &mut PktBuf) {
        const ZEROS: [u8; ETH_HEADER_LEN + MIN_ETH_PAYLOAD] = [0; ETH_HEADER_LEN + MIN_ETH_PAYLOAD];
        let min = ETH_HEADER_LEN + MIN_ETH_PAYLOAD;
        if frame.len() < min {
            let missing = min - frame.len();
            frame.extend_from_slice(&ZEROS[..missing]);
        }
    }
}

/// Byte range of the TCP payload within a raw IPv4/TCP Ethernet frame,
/// bounded by the IP total length (excludes Ethernet padding). Used for
/// zero-copy payload slicing (GRO segment chaining, TSO cutting); `None`
/// when the frame is not a well-formed IPv4/TCP frame.
pub fn tcp_payload_range(frame: &[u8]) -> Option<(usize, usize)> {
    if frame.len() < ETH_HEADER_LEN + IPV4_HEADER_LEN {
        return None;
    }
    if u16::from_be_bytes([frame[12], frame[13]]) != 0x0800 {
        return None;
    }
    let ip = &frame[ETH_HEADER_LEN..];
    if ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = (ip[0] & 0x0f) as usize * 4;
    let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if ihl < IPV4_HEADER_LEN || total_len < ihl || ip.len() < total_len || ip[9] != 6 {
        return None;
    }
    let l4 = &ip[ihl..total_len];
    if l4.len() < 20 {
        return None;
    }
    let data_off = ((l4[12] >> 4) as usize) * 4;
    if data_off < 20 || l4.len() < data_off {
        return None;
    }
    let start = ETH_HEADER_LEN + ihl + data_off;
    let end = ETH_HEADER_LEN + total_len;
    Some((start, end))
}

/// Parsed layer-4 content of a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsedL4 {
    Tcp { header: TcpHeader, payload: Vec<u8> },
    Udp { header: UdpHeader, payload: Vec<u8> },
    Arp(ArpPacket),
    Other(Vec<u8>),
}

/// A fully parsed Ethernet frame.
#[derive(Clone, Debug)]
pub struct ParsedFrame {
    pub eth: EthHeader,
    pub ipv4: Option<Ipv4Header>,
    pub l4: ParsedL4,
    /// Whether every checksum present (IPv4 header, TCP/UDP) verified.
    pub checksums_ok: bool,
}

/// Errors produced when a frame cannot be parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseError {
    TooShort,
    BadIpv4,
    BadL4,
    BadArp,
}

impl ParsedFrame {
    /// Parse an Ethernet frame. IPv4/TCP/UDP/ARP are decoded; everything else
    /// is returned raw in [`ParsedL4::Other`].
    pub fn parse(frame: &[u8]) -> Result<ParsedFrame, ParseError> {
        let (eth, rest) = EthHeader::parse(frame).ok_or(ParseError::TooShort)?;
        match eth.ethertype {
            EtherType::Ipv4 => {
                let (ip, ip_ok, l4) = Ipv4Header::parse(rest).ok_or(ParseError::BadIpv4)?;
                match ip.proto {
                    IpProto::Tcp => {
                        let (tcp, payload, tcp_ok) =
                            TcpHeader::parse(l4, ip.src, ip.dst).ok_or(ParseError::BadL4)?;
                        Ok(ParsedFrame {
                            eth,
                            ipv4: Some(ip),
                            l4: ParsedL4::Tcp {
                                header: tcp,
                                payload: payload.to_vec(),
                            },
                            checksums_ok: ip_ok && tcp_ok,
                        })
                    }
                    IpProto::Udp => {
                        let (udp, payload, udp_ok) =
                            UdpHeader::parse(l4, ip.src, ip.dst).ok_or(ParseError::BadL4)?;
                        Ok(ParsedFrame {
                            eth,
                            ipv4: Some(ip),
                            l4: ParsedL4::Udp {
                                header: udp,
                                payload: payload.to_vec(),
                            },
                            checksums_ok: ip_ok && udp_ok,
                        })
                    }
                    IpProto::Other(_) => Ok(ParsedFrame {
                        eth,
                        ipv4: Some(ip),
                        l4: ParsedL4::Other(l4.to_vec()),
                        checksums_ok: ip_ok,
                    }),
                }
            }
            EtherType::Arp => {
                let arp = ArpPacket::parse(rest).ok_or(ParseError::BadArp)?;
                Ok(ParsedFrame {
                    eth,
                    ipv4: None,
                    l4: ParsedL4::Arp(arp),
                    checksums_ok: true,
                })
            }
            EtherType::Other(_) => Ok(ParsedFrame {
                eth,
                ipv4: None,
                l4: ParsedL4::Other(rest.to_vec()),
                checksums_ok: true,
            }),
        }
    }

    /// Convenience accessor for the IPv4 destination, if present.
    pub fn dst_ip(&self) -> Option<Ipv4Addr> {
        self.ipv4.map(|h| h.dst)
    }

    /// Convenience accessor for the IPv4 source, if present.
    pub fn src_ip(&self) -> Option<Ipv4Addr> {
        self.ipv4.map(|h| h.src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;

    #[test]
    fn arp_frame_roundtrip() {
        let arp = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let frame = FrameBuilder::arp(MacAddr::from_index(1), MacAddr::BROADCAST, &arp);
        assert!(frame.len() >= ETH_HEADER_LEN + MIN_ETH_PAYLOAD);
        let parsed = ParsedFrame::parse(&frame).unwrap();
        assert_eq!(parsed.eth.ethertype, EtherType::Arp);
        assert_eq!(parsed.l4, ParsedL4::Arp(arp));
    }

    #[test]
    fn small_frames_are_padded_to_minimum() {
        let frame = FrameBuilder::udp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::NotEct,
            1,
            2,
            b"x",
        );
        assert_eq!(frame.len(), ETH_HEADER_LEN + MIN_ETH_PAYLOAD);
        // Padding does not confuse parsing.
        match ParsedFrame::parse(&frame).unwrap().l4 {
            ParsedL4::Udp { payload, .. } => assert_eq!(payload, b"x"),
            _ => panic!("expected UDP"),
        }
    }

    #[test]
    fn large_tcp_frame_not_padded() {
        let tcp = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 100,
            mss: None, wscale: None,
        };
        let payload = vec![7u8; 1400];
        let frame = FrameBuilder::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::Ect0,
            &tcp,
            &payload,
        );
        assert_eq!(
            frame.len(),
            ETH_HEADER_LEN + IPV4_HEADER_LEN + 20 + payload.len()
        );
        let parsed = ParsedFrame::parse(&frame).unwrap();
        assert!(parsed.checksums_ok);
        assert_eq!(parsed.ipv4.unwrap().ecn, Ecn::Ect0);
    }

    #[test]
    fn unknown_ethertype_passes_through() {
        let eth = EthHeader::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Other(0x88cc),
        );
        let frame = eth.build_frame(b"lldp-ish");
        let parsed = ParsedFrame::parse(&frame).unwrap();
        assert_eq!(parsed.l4, ParsedL4::Other(b"lldp-ish".to_vec()));
        assert!(parsed.ipv4.is_none());
    }

    #[test]
    fn truncated_ip_rejected() {
        let eth = EthHeader::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Ipv4,
        );
        let frame = eth.build_frame(&[0x45, 0x00, 0x00]);
        assert_eq!(ParsedFrame::parse(&frame), Err(ParseError::BadIpv4));
    }

    impl PartialEq for ParsedFrame {
        fn eq(&self, other: &Self) -> bool {
            self.eth == other.eth && self.ipv4 == other.ipv4 && self.l4 == other.l4
        }
    }

    /// The pooled in-place builders must produce byte-identical frames to
    /// the `Vec`-based builders — pooling is an allocator change, never a
    /// wire-format change.
    #[test]
    fn pooled_builders_match_vec_builders_bit_for_bit() {
        let pool = simbricks_base::BufPool::new();
        let (sm, dm) = (MacAddr::from_index(1), MacAddr::from_index(2));
        let (si, di) = (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        for payload_len in [0usize, 1, 45, 46, 100, 1400] {
            let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
            let tcp = TcpHeader {
                src_port: 40000,
                dst_port: 5201,
                seq: 0xdead_beef,
                ack: 0x1234_5678,
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window: 8192,
                mss: Some(1460),
                wscale: Some(7),
            };
            let v = FrameBuilder::tcp(sm, dm, si, di, Ecn::Ect0, &tcp, &payload);
            let p = FrameBuilder::tcp_pooled(&pool, sm, dm, si, di, Ecn::Ect0, &tcp, &payload);
            assert_eq!(p.as_slice(), v.as_slice(), "tcp len {payload_len}");
            // Chained payload (split at an odd boundary) flattens identically.
            let cut = payload_len / 3;
            let pc = FrameBuilder::tcp_chain_pooled(
                &pool, sm, dm, si, di, Ecn::Ect0, &tcp,
                &[&payload[..cut], &payload[cut..]],
            );
            assert_eq!(pc.as_slice(), v.as_slice(), "tcp chain len {payload_len}");

            let v = FrameBuilder::udp(sm, dm, si, di, Ecn::Ce, 7, 9, &payload);
            let p = FrameBuilder::udp_pooled(&pool, sm, dm, si, di, Ecn::Ce, 7, 9, &payload);
            assert_eq!(p.as_slice(), v.as_slice(), "udp len {payload_len}");

            let v = FrameBuilder::ipv4(sm, dm, si, di, IpProto::Other(89), Ecn::NotEct, &payload);
            let p = FrameBuilder::ipv4_pooled(
                &pool, sm, dm, si, di, IpProto::Other(89), Ecn::NotEct, &payload,
            );
            assert_eq!(p.as_slice(), v.as_slice(), "ipv4 len {payload_len}");
        }
        let arp = ArpPacket::request(sm, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        let v = FrameBuilder::arp(sm, MacAddr::BROADCAST, &arp);
        let p = FrameBuilder::arp_pooled(&pool, sm, MacAddr::BROADCAST, &arp);
        assert_eq!(p.as_slice(), v.as_slice(), "arp");
        assert!(pool.stats().hits + pool.stats().misses > 0, "builders used the pool");
    }

    #[test]
    fn tcp_payload_range_matches_parser() {
        let tcp = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 500,
            ack: 7,
            flags: TcpFlags::ACK,
            window: 100,
            mss: None,
            wscale: None,
        };
        let payload: Vec<u8> = (0..333).map(|i| (i % 101) as u8).collect();
        let frame = FrameBuilder::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::Ect0,
            &tcp,
            &payload,
        );
        let (start, end) = tcp_payload_range(&frame).unwrap();
        assert_eq!(&frame[start..end], payload.as_slice());
        // Padded short frames: the range excludes the Ethernet padding.
        let short = FrameBuilder::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::Ect0,
            &tcp,
            b"xy",
        );
        let (s, e) = tcp_payload_range(&short).unwrap();
        assert_eq!(&short[s..e], b"xy");
        // Non-TCP traffic yields None.
        let udp = FrameBuilder::udp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::NotEct,
            1,
            2,
            b"p",
        );
        assert!(tcp_payload_range(&udp).is_none());
        assert!(tcp_payload_range(&[0u8; 10]).is_none());
    }
}
