//! Replication workloads end-to-end (Fig. 10): NOPaxos with a switch
//! sequencer, NOPaxos with an end-host sequencer, and leader-based
//! Multi-Paxos, each running over simulated hosts, NICs, and switches.

use simbricks::apps::paxos::{
    PaxosClient, PaxosMode, Replica, SequencerHost, OUM_PORT, PAXOS_LEADER_PORT,
};
use simbricks::hostsim::{HostConfig, HostKind, HostModel};
use simbricks::netsim::{SequencerConfig, SwitchBm, SwitchConfig, TofinoConfig, TofinoSwitch};
use simbricks::netstack::SocketAddr;
use simbricks::proto::Ipv4Addr;
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

/// Build and run a 3-replica group with one closed-loop client; returns
/// (completed requests, mean latency us, replica-0 executed ops).
fn run(mode: PaxosMode) -> (u64, f64, u64) {
    let virt = SimTime::from_ms(10);
    let mut exp = Experiment::new("paxos-it", virt + SimTime::from_ms(2));
    let kind = HostKind::QemuTiming;
    let replica_cfgs: Vec<_> = (0..3u32).map(|i| HostConfig::new(kind, i)).collect();
    let replica_ips: Vec<Ipv4Addr> = replica_cfgs.iter().map(|c| c.ip).collect();
    let mut eth = Vec::new();
    let mut replica_hosts = Vec::new();
    for (i, cfg) in replica_cfgs.iter().enumerate() {
        let peers = replica_ips
            .iter()
            .filter(|ip| **ip != cfg.ip)
            .copied()
            .collect();
        let app = Box::new(Replica::new(i as u8, mode, peers));
        let (h, _n, e) = attach_host_nic(&mut exp, &format!("replica{i}"), *cfg, app, false);
        eth.push(e);
        replica_hosts.push(h);
    }
    let mut seq_ip = None;
    if mode == PaxosMode::EndHostSequencer {
        let cfg = HostConfig::new(kind, 10);
        seq_ip = Some(cfg.ip);
        let app = Box::new(SequencerHost::new(replica_ips.clone()));
        let (_h, _n, e) = attach_host_nic(&mut exp, "sequencer", cfg, app, false);
        eth.push(e);
    }
    let target = match mode {
        PaxosMode::SwitchSequencer => SocketAddr::new(Ipv4Addr::BROADCAST, OUM_PORT),
        PaxosMode::EndHostSequencer => SocketAddr::new(seq_ip.unwrap(), OUM_PORT),
        PaxosMode::MultiPaxos => SocketAddr::new(replica_ips[0], PAXOS_LEADER_PORT),
    };
    let client_cfg = HostConfig::new(kind, 20);
    let client_app = Box::new(PaxosClient::new(mode, target, 1, virt));
    let (client_id, _n, e) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    eth.push(e);

    let ports = eth.len();
    if mode == PaxosMode::SwitchSequencer {
        exp.add(
            "tofino",
            Box::new(TofinoSwitch::new(TofinoConfig {
                ports,
                sequencer: Some(SequencerConfig {
                    group_port: OUM_PORT,
                    replica_ports: vec![0, 1, 2],
                }),
                ..Default::default()
            })),
            eth,
        );
    } else {
        exp.add(
            "switch",
            Box::new(SwitchBm::new(SwitchConfig {
                ports,
                ..Default::default()
            })),
            eth,
        );
    }
    let r = exp.run(Execution::Sequential);
    let client: &HostModel = r.model(client_id).unwrap();
    let rep = client.app_report();
    let completed: u64 = rep
        .split_whitespace()
        .find_map(|w| w.strip_prefix("completed=").and_then(|v| v.parse().ok()))
        .unwrap_or(0);
    let latency: f64 = rep
        .split_whitespace()
        .find_map(|w| w.strip_prefix("latency=").and_then(|v| v.strip_suffix("us")).and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);
    let replica0: &HostModel = r.model(replica_hosts[0]).unwrap();
    let executed: u64 = replica0
        .app_report()
        .split_whitespace()
        .find_map(|w| w.strip_prefix("executed=").and_then(|v| v.parse().ok()))
        .unwrap_or(0);
    (completed, latency, executed)
}

#[test]
fn switch_sequencer_completes_requests_with_lowest_latency() {
    let (done_sw, lat_sw, exec_sw) = run(PaxosMode::SwitchSequencer);
    let (done_eh, lat_eh, _) = run(PaxosMode::EndHostSequencer);
    assert!(done_sw > 50, "switch sequencer completed {done_sw} requests");
    assert!(done_eh > 50, "end-host sequencer completed {done_eh} requests");
    assert!(exec_sw >= done_sw, "replicas executed every completed request");
    // The end-host sequencer adds one extra host traversal per request
    // (paper: 23-35% higher latency).
    assert!(
        lat_eh > lat_sw * 1.1,
        "end-host sequencer latency {lat_eh:.1}us should exceed switch {lat_sw:.1}us"
    );
}

#[test]
fn multi_paxos_completes_but_costs_an_extra_round_trip() {
    let (done_mp, lat_mp, exec_mp) = run(PaxosMode::MultiPaxos);
    let (_done_sw, lat_sw, _) = run(PaxosMode::SwitchSequencer);
    assert!(done_mp > 20, "multi-paxos completed {done_mp} requests");
    assert!(
        exec_mp >= done_mp,
        "the leader executed every completed request (got {exec_mp} vs {done_mp})"
    );
    // The leader-based accept round adds latency over ordered multicast
    // (paper: NOPaxos cuts latency vs Multi-Paxos).
    assert!(
        lat_mp > lat_sw,
        "multi-paxos latency {lat_mp:.1}us should exceed the switch sequencer {lat_sw:.1}us"
    );
}
