//! Deterministic checkpoint/restore, proven by a bit-identity matrix.
//!
//! A checkpoint taken mid-run must be invisible: the checkpointing run's own
//! continuation AND a later run restored from the file must both produce
//! event logs bit-identical (fingerprint *and* every entry) to an
//! uninterrupted run. The matrix covers
//!
//! * executors: sequential, sharded with 1/2/4 workers, and true 2-process
//!   distributed runs over both channel transports (tcp, shm);
//! * workloads: netperf (TCP stream + RR) and memcached/memaslap (UDP KV).

use std::path::PathBuf;

use simbricks::apps::{MemaslapClient, MemcachedServer, NetperfClient, NetperfServer};
use simbricks::base::{EventLog, SnapError};
use simbricks::hostsim::{Application, HostConfig, HostKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::netstack::SocketAddr;
use simbricks::runner::dist::{self, DistOptions, PartitionBuilder};
use simbricks::runner::{attach_host_nic, Execution, Experiment, TransportKind};
use simbricks::SimTime;

/// Virtual end of every experiment in this matrix.
fn end_time() -> SimTime {
    SimTime::from_ms(6)
}

/// Checkpoint in the middle of the measured region.
fn ckpt_time() -> SimTime {
    SimTime::from_ms(3)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Workload {
    Netperf,
    Memcache,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Netperf => "netperf",
            Workload::Memcache => "memcache",
        }
    }

    fn apps(self, server_cfg: &HostConfig) -> (Box<dyn Application>, Box<dyn Application>) {
        match self {
            Workload::Netperf => (
                Box::new(NetperfServer::new(5201, 5202)),
                Box::new(NetperfClient::new(
                    server_cfg.ip,
                    5201,
                    5202,
                    SimTime::from_ms(2),
                    SimTime::from_ms(2),
                )),
            ),
            Workload::Memcache => (
                Box::new(MemcachedServer::new()),
                Box::new(MemaslapClient::new(
                    vec![SocketAddr::new(
                        server_cfg.ip,
                        simbricks::apps::memcache::MEMCACHE_PORT,
                    )],
                    2,
                    64,
                    SimTime::from_ms(4),
                )),
            ),
        }
    }
}

/// Two gem5-like hosts (server + client) through the behavioural switch.
fn build(workload: Workload) -> Experiment {
    let mut exp =
        Experiment::new(format!("ckpt-{}", workload.name()), end_time()).with_logging();
    let server_cfg = HostConfig::new(HostKind::Gem5Timing, 0);
    let client_cfg = HostConfig::new(HostKind::Gem5Timing, 1);
    let (server_app, client_app) = workload.apps(&server_cfg);
    let (_s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
    let (_c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, c_eth],
    );
    exp
}

/// Assert two merged logs are bit-identical: fingerprint AND full entries
/// (the first diverging entry is reported for debuggability).
fn assert_logs_identical(got: &EventLog, want: &EventLog, label: &str) {
    assert_eq!(got.len(), want.len(), "event count differs ({label})");
    for (i, (g, w)) in got.entries().iter().zip(want.entries()).enumerate() {
        assert_eq!(g, w, "first diverging entry at index {i} ({label})");
    }
    assert_eq!(got.fingerprint(), want.fingerprint(), "fingerprint ({label})");
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simbricks-ckpt-{}-{tag}", std::process::id()))
}

/// The in-process matrix: {sequential, sharded×{1,2,4}} × {netperf, memcache}.
/// For every combination, (a) a run that checkpoints mid-way and continues
/// and (b) a fresh run restored from that checkpoint both reproduce the
/// uninterrupted baseline log bit for bit.
#[test]
fn checkpoint_restore_matrix_in_process() {
    for workload in [Workload::Netperf, Workload::Memcache] {
        let baseline = build(workload).run(Execution::Sequential).merged_log();
        assert!(
            baseline.len() > 100,
            "baseline log actually contains events ({})",
            baseline.len()
        );
        let execs = [
            ("seq", Execution::Sequential),
            ("sharded1", Execution::Sharded { workers: 1 }),
            ("sharded2", Execution::Sharded { workers: 2 }),
            ("sharded4", Execution::Sharded { workers: 4 }),
        ];
        for (ename, exec) in execs {
            let label = format!("{}/{ename}", workload.name());
            let path = tmp_path(&format!("{}-{ename}.ckpt", workload.name()));

            // (a) Checkpoint mid-run, continue to the end: the pause must be
            // invisible in the continuation.
            let mut exp = build(workload);
            exp.checkpoint_at(ckpt_time(), Some(path.clone()));
            let r = exp.run(exec);
            assert!(r.checkpoint.is_some(), "checkpoint captured ({label})");
            assert_logs_identical(&r.merged_log(), &baseline, &format!("{label} ckpt-run"));

            // (b) Restore from the file into a freshly built experiment and
            // run the continuation under the same executor.
            let mut exp = build(workload);
            let at = exp.restore(&path).expect("restore");
            assert_eq!(at, ckpt_time());
            let r2 = exp.run(exec);
            assert_logs_identical(&r2.merged_log(), &baseline, &format!("{label} restored"));

            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Restoring with mismatched topology or workload fails loudly, and a
/// restored experiment reports the application results of the full run.
#[test]
fn restore_rejects_wrong_experiment() {
    let path = tmp_path("wrong-exp.ckpt");
    let mut exp = build(Workload::Netperf);
    exp.checkpoint_at(ckpt_time(), Some(path.clone()));
    let _ = exp.run(Execution::Sequential);
    // Different experiment (name differs): clear error, not UB.
    let mut other = build(Workload::Memcache);
    match other.restore(&path) {
        Err(SnapError::Corrupt(msg)) => {
            assert!(msg.contains("name mismatch"), "got: {msg}")
        }
        other => panic!("expected Corrupt(name mismatch), got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Distributed matrix: the same workloads split into two partitions (server +
// switch in p0, client in p1) running as two worker OS processes, for both
// channel transports. Checkpoints are written one file per partition and
// exchanged over the control protocol.
// ---------------------------------------------------------------------------

/// Dist-aware build shared by the in-process baseline, discovery, and the
/// worker processes (which re-enter this test binary).
fn dist_build(scenario: &str, pb: &mut PartitionBuilder) {
    let workload = if scenario.contains("wl=memcache") {
        Workload::Memcache
    } else {
        Workload::Netperf
    };
    pb.init(
        Experiment::new(format!("ckpt-{}", workload.name()), end_time()).with_logging(),
    );
    let eth_params = pb.exp().eth_params();
    let server_cfg = HostConfig::new(HostKind::Gem5Timing, 0);
    let client_cfg = HostConfig::new(HostKind::Gem5Timing, 1);
    let (server_app, client_app) = workload.apps(&server_cfg);
    let (_s, _, s_eth) = pb.attach_host_nic("p0", "server", server_cfg, server_app, false);
    let (cli_eth_nic, cli_eth_sw) = pb.channel("client-eth", "p1", "p0", eth_params);
    pb.attach_host_nic_on("p1", "client", client_cfg, client_app, false, cli_eth_nic);
    pb.add(
        "p0",
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, cli_eth_sw],
    );
}

/// Hidden worker entry (see `integration_determinism.rs` for the pattern):
/// spawned worker processes re-enter this test binary here; `maybe_worker`
/// detects the control-socket environment and takes over.
#[test]
#[ignore = "internal: entry point for dist-test worker subprocesses"]
fn ckpt_dist_worker_entry() {
    dist::maybe_worker(&dist_build);
}

fn dist_opts(scenario: &str) -> DistOptions {
    DistOptions::new(vec!["p0".into(), "p1".into()], scenario).with_worker_args(vec![
        "ckpt_dist_worker_entry".into(),
        "--exact".into(),
        "--include-ignored".into(),
        "--nocapture".into(),
    ])
}

fn dist_matrix_for(transport: TransportKind) {
    for workload in [Workload::Netperf, Workload::Memcache] {
        let scenario = format!("wl={}", workload.name());
        let baseline =
            dist::run_local(&scenario, &dist_build, Execution::Sequential).merged_log();
        assert!(baseline.len() > 100, "baseline has events");
        let dir = tmp_path(&format!("dist-{}-{}", workload.name(), transport.to_arg()));

        // Checkpointing 2-process run: per-partition snapshot files written
        // through the control protocol; continuation bit-identical.
        let d1 = dist::run_distributed(
            &dist_opts(&scenario)
                .with_transport(transport)
                .with_checkpoint(ckpt_time(), dir.clone()),
            &dist_build,
        )
        .expect("distributed checkpoint run");
        assert_logs_identical(
            &d1.merged_log(),
            &baseline,
            &format!("dist-{}-{} ckpt-run", workload.name(), transport.to_arg()),
        );
        for p in ["p0", "p1"] {
            assert!(
                dir.join(format!("{p}.ckpt")).is_file(),
                "one region file per partition ({p})"
            );
        }

        // Restored 2-process run: resumes from the per-partition files and
        // reproduces the remainder bit for bit.
        let d2 = dist::run_distributed(
            &dist_opts(&scenario)
                .with_transport(transport)
                .with_restore(dir.clone()),
            &dist_build,
        )
        .expect("distributed restore run");
        assert_logs_identical(
            &d2.merged_log(),
            &baseline,
            &format!("dist-{}-{} restored", workload.name(), transport.to_arg()),
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// dist×tcp leg of the matrix (both workloads).
#[test]
fn checkpoint_restore_matrix_dist_tcp() {
    dist_matrix_for(TransportKind::Tcp);
}

/// dist×shm leg of the matrix (both workloads; skipped on platforms without
/// shared-memory support).
#[test]
fn checkpoint_restore_matrix_dist_shm() {
    if !simbricks::runner::shm_supported() {
        eprintln!("shm transport unsupported on this platform; skipping");
        return;
    }
    dist_matrix_for(TransportKind::Shm);
}
