//! Fault injection and recovery: a distributed run that loses a worker
//! mid-flight must recover from its checkpoint ring and still produce a
//! merged event log bit-identical to an undisturbed run — the §5.5 sync
//! protocol makes results independent of wall time, so a fleet restarted
//! from a quiesced ring entry replays the exact same virtual future.
//!
//! The matrix covers, over the deterministic fault schedules of
//! `DistOptions::with_faults`:
//!
//! * `kill_worker` + checkpoint ring → restore-and-resume, on both channel
//!   transports (tcp, shm);
//! * `kill_worker` without a ring → clean restart from zero, same identity;
//! * `sever_link` → fleet restart with proxy re-handshake;
//! * an exhausted restart budget → typed failure carrying the recovery
//!   report, with every worker process reaped (no orphans).

use std::path::PathBuf;
use std::time::Duration;

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::hostsim::{HostConfig, HostKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::dist::{self, DistError, DistOptions, FaultKind, FaultSpec, PartitionBuilder};
use simbricks::runner::{Execution, Experiment, TransportKind};
use simbricks::SimTime;

/// Virtual end of every experiment here.
fn end_time() -> SimTime {
    SimTime::from_ms(6)
}

/// Two-partition netperf build: server + switch in "p0", client in "p1",
/// with the client's Ethernet link crossing the process boundary. Shared by
/// the in-process baseline, the orchestrator, and worker subprocesses
/// re-entering this binary through `fault_worker_entry`. The scenario string
/// is an opaque marker (used by the orphan scan below) — the build ignores
/// it, so every run of this function is the identical experiment.
fn fault_build(_scenario: &str, pb: &mut PartitionBuilder) {
    let exp = Experiment::new("faults-dist", end_time()).with_logging();
    pb.init(exp);
    let eth_params = pb.exp().eth_params();
    let server_cfg = HostConfig::new(HostKind::Gem5Timing, 0);
    let client_cfg = HostConfig::new(HostKind::Gem5Timing, 1);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(
        server_cfg.ip,
        5201,
        5202,
        SimTime::from_ms(2),
        SimTime::from_ms(2),
    ));
    let (_s, _, s_eth) = pb.attach_host_nic("p0", "server", server_cfg, server_app, false);
    let (cli_eth_nic, cli_eth_sw) = pb.channel("client-eth", "p1", "p0", eth_params);
    pb.attach_host_nic_on("p1", "client", client_cfg, client_app, false, cli_eth_nic);
    pb.add(
        "p0",
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, cli_eth_sw],
    );
}

/// Hidden worker entry (see `integration_determinism.rs` for the pattern).
#[test]
#[ignore = "internal: entry point for dist-test worker subprocesses"]
fn fault_worker_entry() {
    dist::maybe_worker(&fault_build);
}

fn tmp_ring(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simbricks-faults-{}-{tag}", std::process::id()))
}

/// Base options: two workers re-entering this test binary, fast heartbeats
/// so fleet progress is visible to the fault scheduler well within the run.
fn fault_opts(scenario: &str, transport: TransportKind) -> DistOptions {
    DistOptions::new(vec!["p0".into(), "p1".into()], scenario)
        .with_worker_args(vec![
            "fault_worker_entry".into(),
            "--exact".into(),
            "--include-ignored".into(),
            "--nocapture".into(),
        ])
        .with_transport(transport)
        .with_heartbeat(Duration::from_millis(5))
}

/// The undisturbed in-process baseline fingerprint.
fn baseline() -> (u64, usize) {
    let local = dist::run_local("", &fault_build, Execution::Sequential);
    let merged = local.merged_log();
    assert!(merged.len() > 100, "logs actually contain events ({})", merged.len());
    (merged.fingerprint(), merged.len())
}

/// Kill a worker mid-run with a ring recorded: the fleet must restore from a
/// ring entry and finish with the undisturbed fingerprint.
fn assert_kill_recovers(transport: TransportKind, label: &str) {
    let (fp, n) = baseline();
    let ring_dir = tmp_ring(label);
    let _ = std::fs::remove_dir_all(&ring_dir);
    let opts = fault_opts(label, transport)
        .with_checkpoint_ring(SimTime::from_ms(1), 0, &ring_dir)
        .with_faults(vec![FaultSpec {
            at: SimTime::from_ms(3),
            kind: FaultKind::KillWorker { partition: "p1".into() },
        }])
        .with_max_restarts(2);
    let r = dist::run_distributed(&opts, &fault_build).expect("run recovers");
    let merged = r.merged_log();
    assert_eq!(n, merged.len(), "same event count after recovery ({label})");
    assert_eq!(
        fp,
        merged.fingerprint(),
        "recovered run bit-identical to undisturbed baseline ({label})"
    );
    assert_eq!(r.recovery.faults_injected.len(), 1, "exactly one fault fired");
    assert_eq!(r.recovery.restarts, 1, "one fleet restart ({label})");
    assert!(
        r.recovery.ring_entries_used[0].is_some(),
        "recovery used a ring entry, not restart-from-zero ({label}): {}",
        r.recovery
    );
    let _ = std::fs::remove_dir_all(&ring_dir);
}

#[test]
fn kill_worker_recovers_from_ring_tcp() {
    assert_kill_recovers(TransportKind::Tcp, "kill-tcp");
}

#[test]
fn kill_worker_recovers_from_ring_shm() {
    if simbricks::runner::shm_supported() {
        assert_kill_recovers(TransportKind::Shm, "kill-shm");
    }
}

/// Without a ring there is nothing to restore: recovery must fall back to a
/// clean restart from zero — and determinism makes even that bit-identical.
#[test]
fn kill_worker_without_ring_restarts_from_zero() {
    let (fp, n) = baseline();
    let opts = fault_opts("kill-noring", TransportKind::Tcp)
        .with_faults(vec![FaultSpec {
            at: SimTime::from_ms(3),
            kind: FaultKind::KillWorker { partition: "p0".into() },
        }])
        .with_max_restarts(2);
    let r = dist::run_distributed(&opts, &fault_build).expect("run recovers from zero");
    let merged = r.merged_log();
    assert_eq!(n, merged.len());
    assert_eq!(fp, merged.fingerprint(), "restart-from-zero is still bit-identical");
    assert_eq!(r.recovery.restarts, 1);
    assert_eq!(
        r.recovery.ring_entries_used,
        vec![None],
        "no ring entry available: {}",
        r.recovery
    );
}

/// A severed cross-partition link is a retryable failure: the fleet restarts
/// (from the ring), the proxies re-handshake, and the result is unchanged.
#[test]
fn sever_link_recovers_and_matches() {
    let (fp, n) = baseline();
    let ring_dir = tmp_ring("sever");
    let _ = std::fs::remove_dir_all(&ring_dir);
    let opts = fault_opts("sever", TransportKind::Tcp)
        .with_checkpoint_ring(SimTime::from_ms(1), 0, &ring_dir)
        .with_faults(vec![FaultSpec {
            at: SimTime::from_ms(3),
            kind: FaultKind::SeverLink { link: "client-eth".into() },
        }])
        .with_max_restarts(2);
    let r = dist::run_distributed(&opts, &fault_build).expect("run recovers from severed link");
    let merged = r.merged_log();
    assert_eq!(n, merged.len());
    assert_eq!(fp, merged.fingerprint(), "post-sever run bit-identical to baseline");
    assert_eq!(r.recovery.restarts, 1, "sever forced one fleet restart");
    let _ = std::fs::remove_dir_all(&ring_dir);
}

/// Count live processes whose environment carries our unique scenario
/// marker — i.e. worker subprocesses of *this* orchestration attempt.
fn count_marked_workers(marker: &str) -> usize {
    let mut n = 0;
    let entries = match std::fs::read_dir("/proc") {
        Ok(e) => e,
        Err(_) => return 0,
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        if pid == std::process::id() {
            continue;
        }
        if let Ok(env) = std::fs::read(e.path().join("environ")) {
            if env
                .windows(marker.len())
                .any(|w| w == marker.as_bytes())
            {
                n += 1;
            }
        }
    }
    n
}

/// With the restart budget exhausted the run must fail with a typed error
/// carrying the recovery report — and tear the whole fleet down: no worker
/// process may outlive the orchestration.
// Wall-clock here bounds the host-side reap wait, not simulated behaviour.
#[allow(clippy::disallowed_methods)]
#[test]
fn exhausted_restarts_fail_cleanly_without_orphans() {
    let marker = format!("orphan-marker-{}", std::process::id());
    let opts = fault_opts(&marker, TransportKind::Tcp).with_faults(vec![FaultSpec {
        at: SimTime::from_ms(2),
        kind: FaultKind::KillWorker { partition: "p1".into() },
    }]);
    // max_restarts defaults to 0: the injected kill exhausts the budget.
    let err = match dist::run_distributed(&opts, &fault_build) {
        Ok(_) => panic!("run must fail: restart budget is zero"),
        Err(e) => e,
    };
    match &err {
        DistError::RestartsExhausted { restarts, report, last } => {
            assert_eq!(*restarts, 0);
            assert_eq!(report.faults_injected.len(), 1, "report records the fault");
            // The kill races detection: the supervisor may see the process
            // exit or the control-socket EOF first. Either is the worker's
            // death, correctly classified.
            assert!(
                matches!(
                    **last,
                    DistError::WorkerExited { .. } | DistError::ControlLost { .. }
                ),
                "underlying failure is the killed worker, got: {last}"
            );
        }
        e => panic!("expected RestartsExhausted, got: {e}"),
    }
    assert!(!err.to_string().is_empty());
    // Workers are SIGKILLed on teardown; give the kernel a moment to reap,
    // then require that not a single marked process survives.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let alive = count_marked_workers(&marker);
        if alive == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{alive} worker process(es) outlived the failed orchestration"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The fault schedule is part of the orchestration options, so two disturbed
/// runs with the same schedule inject identically and agree with each other
/// (and, transitively via the tests above, with the undisturbed baseline).
#[test]
fn fault_schedule_replays_identically() {
    let ring_dir = tmp_ring("replay");
    let _ = std::fs::remove_dir_all(&ring_dir);
    let mk = || {
        fault_opts("replay", TransportKind::Tcp)
            .with_checkpoint_ring(SimTime::from_ms(1), 0, &ring_dir)
            .with_faults(vec![FaultSpec {
                at: SimTime::from_ms(3),
                kind: FaultKind::KillWorker { partition: "p1".into() },
            }])
            .with_max_restarts(2)
    };
    let a = dist::run_distributed(&mk(), &fault_build).expect("first disturbed run");
    let _ = std::fs::remove_dir_all(&ring_dir);
    let b = dist::run_distributed(&mk(), &fault_build).expect("second disturbed run");
    assert_eq!(
        a.merged_log().fingerprint(),
        b.merged_log().fingerprint(),
        "identical fault schedules produce identical results"
    );
    assert_eq!(a.recovery.faults_injected, b.recovery.faults_injected);
    let _ = std::fs::remove_dir_all(&ring_dir);
}
