//! Synchronization-focused integration tests: pairwise vs global-barrier
//! synchronization deliver identical simulation results, and link latency
//! only affects cost, not correctness (§5.5, §7.3.1, Fig. 9).

use simbricks::apps::{IperfUdpClient, IperfUdpServer};
use simbricks::hostsim::{HostConfig, HostKind, HostModel};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::netstack::SocketAddr;
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

fn udp_experiment(barrier: bool, link_ns: u64) -> (u64, u64, u64) {
    udp_experiment_mode(barrier, link_ns, false)
}

fn udp_experiment_mode(barrier: bool, link_ns: u64, hier: bool) -> (u64, u64, u64) {
    let mut exp = Experiment::new("sync-udp", SimTime::from_ms(8))
        .with_link_latency(SimTime::from_ns(link_ns))
        .with_pcie_latency(SimTime::from_ns(link_ns));
    if barrier {
        exp = exp.with_global_barrier();
    }
    if hier {
        exp = exp.with_hier_sync();
    }
    let server_cfg = HostConfig::new(HostKind::QemuTiming, 0);
    let client_cfg = HostConfig::new(HostKind::QemuTiming, 1);
    let server_app = Box::new(IperfUdpServer::new(9000));
    let client_app = Box::new(IperfUdpClient::new(
        SocketAddr::new(server_cfg.ip, 9000),
        250_000_000,
        800,
        SimTime::from_ms(6),
    ));
    let (s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
    let (_c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, c_eth],
    );
    let r = exp.run(Execution::Sequential);
    let server: &HostModel = r.model(s).unwrap();
    let stats = r.total_stats();
    (server.stats().rx_frames, stats.syncs_sent, stats.barrier_waits)
}

#[test]
fn pairwise_and_barrier_sync_deliver_the_same_traffic() {
    let (rx_pairwise, syncs, waits_pairwise) = udp_experiment(false, 500);
    let (rx_barrier, _, waits_barrier) = udp_experiment(true, 500);
    assert!(rx_pairwise > 100, "traffic flowed ({rx_pairwise} frames)");
    assert_eq!(rx_pairwise, rx_barrier, "sync mechanism does not change results");
    assert!(syncs > 0, "pairwise sync messages were exchanged");
    assert_eq!(waits_pairwise, 0);
    assert!(waits_barrier > 0, "barrier mode actually used the barrier");
}

#[test]
fn results_are_independent_of_link_latency_scale() {
    // Lowering the latency by 10x changes synchronization cost (more sync
    // messages) but the delivered traffic stays in the same ballpark.
    let (rx_hi, syncs_hi, _) = udp_experiment(false, 500);
    let (rx_lo, syncs_lo, _) = udp_experiment(false, 50);
    assert!(syncs_lo > syncs_hi, "lower latency => more frequent synchronization");
    let ratio = rx_lo as f64 / rx_hi as f64;
    assert!((0.8..1.2).contains(&ratio), "traffic comparable: {rx_lo} vs {rx_hi}");
}

/// Hierarchical sync domains must not change what the application observes —
/// the same frames arrive at the same virtual times — while strictly
/// reducing pure-SYNC traffic on the same topology (suppressed emissions,
/// widened promises, epoch batching).
#[test]
fn hier_sync_same_traffic_fewer_syncs() {
    let (rx_flat, syncs_flat, _) = udp_experiment_mode(false, 500, false);
    let (rx_hier, syncs_hier, _) = udp_experiment_mode(false, 500, true);
    assert!(rx_flat > 100, "traffic flowed ({rx_flat} frames)");
    assert_eq!(rx_flat, rx_hier, "sync protocol does not change results");
    // Quantitative regression gate: widened promises + domain batching +
    // reaction lookahead hold hierarchical SYNC traffic well under flat —
    // the committed fat-tree baselines sit near 0.45x, so 0.7x leaves
    // headroom for workload drift without letting the win silently rot.
    assert!(
        syncs_hier * 10 <= syncs_flat * 7,
        "hierarchical sync must stay <= 0.7x flat SYNC count: {syncs_hier} vs {syncs_flat}"
    );
}

#[test]
fn threaded_and_sequential_executors_agree() {
    let run = |mode| {
        let mut exp = Experiment::new("exec", SimTime::from_ms(4));
        let server_cfg = HostConfig::new(HostKind::QemuTiming, 0);
        let client_cfg = HostConfig::new(HostKind::QemuTiming, 1);
        let server_app = Box::new(IperfUdpServer::new(9000));
        let client_app = Box::new(IperfUdpClient::new(
            SocketAddr::new(server_cfg.ip, 9000),
            50_000_000,
            500,
            SimTime::from_ms(3),
        ));
        let (s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
        let (_c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
        exp.add(
            "switch",
            Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
            vec![s_eth, c_eth],
        );
        let r = exp.run(mode);
        let server: &HostModel = r.model(s).unwrap();
        server.stats().rx_frames
    };
    assert_eq!(run(Execution::Sequential), run(Execution::Threads));
}
