//! End-to-end integration tests: full software stack (application + TCP/UDP
//! stack + driver) over simulated NICs and networks, i.e. the configurations
//! of Tab. 1 at reduced duration.

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::hostsim::{HostConfig, HostKind, HostModel, NicModelKind};
use simbricks::netsim::{DesNetwork, LinkParams, SwitchBm, SwitchConfig};
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

/// Build and run a two-host netperf experiment; returns (throughput Gbps,
/// mean RR latency us).
fn netperf_pair(kind: HostKind, nic: NicModelKind, use_des: bool) -> (f64, f64) {
    let mut exp = Experiment::new("netperf-e2e", SimTime::from_ms(40));
    let server_cfg = HostConfig::new(kind, 0).with_nic(nic);
    let client_cfg = HostConfig::new(kind, 1).with_nic(nic);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(
        server_cfg.ip,
        5201,
        5202,
        SimTime::from_ms(18),
        SimTime::from_ms(18),
    ));
    let (_s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
    let (c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    if use_des {
        let mut net = DesNetwork::new();
        let sw = net.add_switch();
        let pa = net.add_external_port(0);
        let pb = net.add_external_port(1);
        net.connect(pa, sw, LinkParams::default());
        net.connect(pb, sw, LinkParams::default());
        exp.add("des-net", Box::new(net), vec![s_eth, c_eth]);
    } else {
        exp.add(
            "switch",
            Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
            vec![s_eth, c_eth],
        );
    }
    let result = exp.run(Execution::Sequential);
    let client: &HostModel = result.model(c).unwrap();
    let client_app: Option<&HostModel> = result.model(c);
    assert!(client_app.is_some());
    let report = client.app_report();
    // Parse the throughput / latency out of the report produced by the app.
    let tput = report
        .split_whitespace()
        .find_map(|t| t.strip_prefix("tput=").and_then(|v| v.strip_suffix("Gbps")).and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);
    let lat = report
        .split_whitespace()
        .find_map(|t| t.strip_prefix("rr_latency=").and_then(|v| v.strip_suffix("us")).and_then(|v| v.parse().ok()))
        .unwrap_or(0.0);
    (tput, lat)
}

#[test]
fn netperf_gem5_i40e_switch_reaches_useful_throughput() {
    let (tput, lat) = netperf_pair(HostKind::Gem5Timing, NicModelKind::I40e, false);
    assert!(tput > 0.3, "TCP stream achieves some throughput, got {tput} Gbps");
    assert!(lat > 1.0 && lat < 1000.0, "RR latency is plausible, got {lat} us");
}

#[test]
fn netperf_qemu_timing_corundum_switch_works() {
    let (tput, lat) = netperf_pair(HostKind::QemuTiming, NicModelKind::Corundum, false);
    assert!(tput > 0.1, "got {tput} Gbps");
    assert!(lat > 1.0, "got {lat} us");
}

#[test]
fn netperf_over_des_network_works() {
    let (tput, _lat) = netperf_pair(HostKind::QemuTiming, NicModelKind::I40e, true);
    assert!(tput > 0.1, "ns-3-style network carries the flow, got {tput} Gbps");
}

#[test]
fn corundum_is_more_sensitive_to_pcie_latency_than_i40e() {
    // §8.1: doubling the PCIe latency hurts the Corundum NIC (MMIO head-index
    // reads on the critical path) more than the i40e (descriptor polling in
    // host memory).
    let run = |nic: NicModelKind, pcie_ns: u64| -> f64 {
        let mut exp = Experiment::new("pcie-sens", SimTime::from_ms(30))
            .with_pcie_latency(SimTime::from_ns(pcie_ns));
        let server_cfg = HostConfig::new(HostKind::QemuTiming, 0).with_nic(nic);
        let client_cfg = HostConfig::new(HostKind::QemuTiming, 1).with_nic(nic);
        let server_app = Box::new(NetperfServer::new(5201, 5202));
        let client_app = Box::new(NetperfClient::new(
            server_cfg.ip, 5201, 5202, SimTime::from_ms(20), SimTime::from_ms(5)));
        let (s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
        let (_c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
        exp.add("switch",
            Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
            vec![s_eth, c_eth]);
        let result = exp.run(Execution::Sequential);
        let server: &HostModel = result.model(s).unwrap();
        server.stats().rx_frames as f64
    };
    let i40e_drop = run(NicModelKind::I40e, 500) / run(NicModelKind::I40e, 1000).max(1.0);
    let cor_drop = run(NicModelKind::Corundum, 500) / run(NicModelKind::Corundum, 1000).max(1.0);
    // Corundum suffers at least as much relative slowdown as the i40e.
    assert!(
        cor_drop >= i40e_drop * 0.95,
        "corundum ratio {cor_drop:.3} vs i40e ratio {i40e_drop:.3}"
    );
}
