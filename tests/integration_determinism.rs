//! Determinism (§7.6): repeated runs of a synchronized configuration produce
//! bit-identical timestamped event logs.

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::base::EventLog;
use simbricks::hostsim::{HostConfig, HostKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

fn run_once(mode: Execution) -> (u64, usize) {
    let mut exp = Experiment::new("determinism", SimTime::from_ms(10)).with_logging();
    let server_cfg = HostConfig::new(HostKind::Gem5Timing, 0);
    let client_cfg = HostConfig::new(HostKind::Gem5Timing, 1);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(
        server_cfg.ip,
        5201,
        5202,
        SimTime::from_ms(4),
        SimTime::from_ms(4),
    ));
    let (_s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
    let (_c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, c_eth],
    );
    let r = exp.run(mode);
    let logs: Vec<&EventLog> = r.logs.iter().collect();
    let merged = EventLog::merge(&logs);
    (merged.fingerprint(), merged.len())
}

#[test]
fn repeated_runs_produce_identical_event_logs() {
    let (f1, n1) = run_once(Execution::Sequential);
    let (f2, n2) = run_once(Execution::Sequential);
    let (f3, n3) = run_once(Execution::Sequential);
    assert!(n1 > 100, "logs actually contain events ({n1})");
    assert_eq!(n1, n2);
    assert_eq!(f1, f2, "run 1 and 2 identical");
    assert_eq!(n2, n3);
    assert_eq!(f2, f3, "run 2 and 3 identical");
}

/// The §5.5 protocol makes simulation results independent of the executor:
/// wall-clock scheduling only decides when promises arrive, never what any
/// component observes at a given virtual time. The sharded work-stealing
/// executor must therefore reproduce the sequential event logs bit for bit,
/// for any worker count.
#[test]
fn sharded_runs_match_sequential_event_logs() {
    let (f_seq, n_seq) = run_once(Execution::Sequential);
    assert!(n_seq > 100, "logs actually contain events ({n_seq})");
    for workers in [1usize, 2, 4] {
        let (f_sh, n_sh) = run_once(Execution::Sharded { workers });
        assert_eq!(n_seq, n_sh, "same event count with {workers} workers");
        assert_eq!(
            f_seq, f_sh,
            "sequential and sharded ({workers} workers) logs bit-identical"
        );
    }
}
