//! Determinism (§7.6): repeated runs of a synchronized configuration produce
//! bit-identical timestamped event logs — including true multi-process
//! distributed runs over loopback TCP proxies (§5.4), which must reproduce
//! the in-process sequential log bit for bit.

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::base::EventLog;
use simbricks::hostsim::{HostConfig, HostKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::dist::{self, DistOptions, PartitionBuilder};
use simbricks::runner::{attach_host_nic, Execution, Experiment, TransportKind};
use simbricks::SimTime;

fn run_once(mode: Execution, hier: bool) -> (u64, usize) {
    let mut exp = Experiment::new("determinism", SimTime::from_ms(10)).with_logging();
    if hier {
        exp = exp.with_hier_sync();
    }
    let server_cfg = HostConfig::new(HostKind::Gem5Timing, 0);
    let client_cfg = HostConfig::new(HostKind::Gem5Timing, 1);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(
        server_cfg.ip,
        5201,
        5202,
        SimTime::from_ms(4),
        SimTime::from_ms(4),
    ));
    let (_s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
    let (_c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, c_eth],
    );
    let r = exp.run(mode);
    let logs: Vec<&EventLog> = r.logs.iter().collect();
    let merged = EventLog::merge(&logs);
    (merged.fingerprint(), merged.len())
}

#[test]
fn repeated_runs_produce_identical_event_logs() {
    let (f1, n1) = run_once(Execution::Sequential, false);
    let (f2, n2) = run_once(Execution::Sequential, false);
    let (f3, n3) = run_once(Execution::Sequential, false);
    assert!(n1 > 100, "logs actually contain events ({n1})");
    assert_eq!(n1, n2);
    assert_eq!(f1, f2, "run 1 and 2 identical");
    assert_eq!(n2, n3);
    assert_eq!(f2, f3, "run 2 and 3 identical");
}

/// The §5.5 protocol makes simulation results independent of the executor:
/// wall-clock scheduling only decides when promises arrive, never what any
/// component observes at a given virtual time. The sharded work-stealing
/// executor must therefore reproduce the sequential event logs bit for bit,
/// for any worker count.
#[test]
fn sharded_runs_match_sequential_event_logs() {
    let (f_seq, n_seq) = run_once(Execution::Sequential, false);
    assert!(n_seq > 100, "logs actually contain events ({n_seq})");
    for workers in [1usize, 2, 4] {
        let (f_sh, n_sh) = run_once(Execution::Sharded { workers }, false);
        assert_eq!(n_seq, n_sh, "same event count with {workers} workers");
        assert_eq!(
            f_seq, f_sh,
            "sequential and sharded ({workers} workers) logs bit-identical"
        );
    }
}

/// Hierarchical sync domains (topology-aware widened promises, epoch-batched
/// emission) change only *when* promises travel, never the timestamps or
/// order of data messages — so every executor running with hierarchical sync
/// enabled must still reproduce the flat-sync sequential event log bit for
/// bit.
#[test]
fn hier_sync_runs_match_flat_sequential_event_logs() {
    let (f_flat, n_flat) = run_once(Execution::Sequential, false);
    assert!(n_flat > 100, "logs actually contain events ({n_flat})");
    let (f_seq, n_seq) = run_once(Execution::Sequential, true);
    assert_eq!(n_flat, n_seq, "same event count under hierarchical sync");
    assert_eq!(f_flat, f_seq, "hier sequential matches flat sequential");
    for workers in [1usize, 2, 4] {
        let (f_sh, n_sh) = run_once(Execution::Sharded { workers }, true);
        assert_eq!(n_flat, n_sh, "same event count, hier sharded {workers} workers");
        assert_eq!(
            f_flat, f_sh,
            "hier sharded ({workers} workers) matches flat sequential"
        );
    }
}

// ---------------------------------------------------------------------------
// Distributed determinism (§5.4): the same netperf experiment split into two
// partitions — server + switch in "p0", client in "p1" — running as two
// worker OS processes with the client's Ethernet link bridged by loopback
// TCP proxies. The merged event log must be bit-identical to the in-process
// sequential run.
// ---------------------------------------------------------------------------

/// Dist-aware build of the determinism experiment. Shared verbatim by the
/// in-process baseline, the orchestrator's discovery pass, and the two
/// spawned worker processes (which re-enter this test binary through
/// `dist_worker_entry`).
fn dist_build(scenario: &str, pb: &mut PartitionBuilder) {
    let mut exp = Experiment::new("determinism-dist", SimTime::from_ms(6)).with_logging();
    // The scenario string travels to every worker process, so flipping the
    // sync protocol here flips it consistently across all partitions.
    if scenario == "hier" {
        exp = exp.with_hier_sync();
    }
    pb.init(exp);
    let eth_params = pb.exp().eth_params();
    let server_cfg = HostConfig::new(HostKind::Gem5Timing, 0);
    let client_cfg = HostConfig::new(HostKind::Gem5Timing, 1);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(
        server_cfg.ip,
        5201,
        5202,
        SimTime::from_ms(2),
        SimTime::from_ms(2),
    ));
    let (_s, _, s_eth) = pb.attach_host_nic("p0", "server", server_cfg, server_app, false);
    // The client lives in the other partition; its NIC-to-switch Ethernet
    // link is the one that crosses the process boundary.
    let (cli_eth_nic, cli_eth_sw) = pb.channel("client-eth", "p1", "p0", eth_params);
    pb.attach_host_nic_on("p1", "client", client_cfg, client_app, false, cli_eth_nic);
    pb.add(
        "p0",
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, cli_eth_sw],
    );
}

/// Hidden worker entry: [`dist::run_distributed`] self-`exec`s this test
/// binary with `dist_worker_entry --exact --include-ignored`, which lands
/// here; `maybe_worker` detects the control-socket environment, runs the
/// worker protocol, and exits the process. Running it by hand (without the
/// environment) is a no-op.
#[test]
#[ignore = "internal: entry point for dist-test worker subprocesses"]
fn dist_worker_entry() {
    dist::maybe_worker(&dist_build);
}

/// Options for a 2-worker-process run that re-enters this test binary.
fn dist_opts(scenario: &str) -> DistOptions {
    DistOptions::new(vec!["p0".into(), "p1".into()], scenario).with_worker_args(vec![
        "dist_worker_entry".into(),
        "--exact".into(),
        "--include-ignored".into(),
        // Worker diagnostics must reach our stderr, not a captured buffer
        // that dies with the worker.
        "--nocapture".into(),
    ])
}

/// Assert a distributed run with the given options reproduces the in-process
/// sequential baseline bit for bit. The baseline is computed once by the
/// caller — it is transport-independent by construction.
fn assert_dist_matches_baseline(
    local: &simbricks::runner::RunResult,
    opts: DistOptions,
    label: &str,
) {
    let merged = local.merged_log();
    assert!(merged.len() > 100, "logs actually contain events ({})", merged.len());

    let dist = dist::run_distributed(&opts, &dist_build).expect("distributed run");

    assert_eq!(
        dist.component_names, local.component_names,
        "components reassembled in global build order ({label})"
    );
    let dist_merged = dist.merged_log();
    assert_eq!(merged.len(), dist_merged.len(), "same event count ({label})");
    assert_eq!(
        merged.fingerprint(),
        dist_merged.fingerprint(),
        "distributed ({label}) and in-process sequential event logs bit-identical"
    );
    // Stats travelled back too: the distributed run delivered the same
    // data messages as the baseline.
    let lt = local.total_stats();
    let dt = dist.total_stats();
    assert_eq!(lt.msgs_delivered, dt.msgs_delivered);
    assert_eq!(lt.final_time, dt.final_time);
}

/// Transport from `SIMBRICKS_TRANSPORT` (default auto) — the CI smoke step
/// runs this test once with `tcp` and once with `shm`.
#[test]
fn dist_two_partition_run_matches_sequential_event_log() {
    let t = TransportKind::from_env_or(TransportKind::Auto);
    let local = dist::run_local("", &dist_build, Execution::Sequential);
    assert_dist_matches_baseline(&local, dist_opts("").with_transport(t), t.to_arg());
}

/// Both concrete transports — loopback TCP proxies and mmap shared-memory
/// rings — must reproduce the identical merged event log: the §5.5 protocol
/// makes results independent of how promises travel between processes.
#[test]
fn dist_tcp_and_shm_transports_both_match_sequential_event_log() {
    let local = dist::run_local("", &dist_build, Execution::Sequential);
    assert_dist_matches_baseline(&local, dist_opts("").with_transport(TransportKind::Tcp), "tcp");
    if simbricks::runner::shm_supported() {
        assert_dist_matches_baseline(&local, dist_opts("").with_transport(TransportKind::Shm), "shm");
    }
}

/// Distributed workers running the hierarchical sync protocol (the "hier"
/// scenario flips it on inside every worker's build of the experiment) must
/// still reproduce the *flat*-sync in-process sequential log bit for bit, on
/// both transports — the strongest cross-executor statement of the protocol's
/// result-invariance.
#[test]
fn dist_hier_sync_matches_flat_sequential_event_log() {
    let local = dist::run_local("", &dist_build, Execution::Sequential);
    assert_dist_matches_baseline(
        &local,
        dist_opts("hier").with_transport(TransportKind::Tcp),
        "hier/tcp",
    );
    if simbricks::runner::shm_supported() {
        assert_dist_matches_baseline(
            &local,
            dist_opts("hier").with_transport(TransportKind::Shm),
            "hier/shm",
        );
    }
}
