//! Scale-out proxies (§5.4): a channel transparently bridged over TCP behaves
//! like a direct shared-memory channel, so simulations can be partitioned
//! across physical machines without the components noticing.

use simbricks::apps::{IperfUdpClient, IperfUdpServer};
use simbricks::hostsim::{HostConfig, HostKind, HostModel};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::netstack::SocketAddr;
use simbricks::runner::{host_component, nic_model, proxy_channel_over_tcp, Execution, Experiment};
use simbricks::SimTime;

#[test]
fn udp_traffic_flows_across_a_tcp_proxied_ethernet_link() {
    let mut exp = Experiment::new("proxy", SimTime::from_ms(6));
    let server_cfg = HostConfig::new(HostKind::QemuTiming, 0);
    let client_cfg = HostConfig::new(HostKind::QemuTiming, 1);
    let server_app = Box::new(IperfUdpServer::new(9000));
    let client_app = Box::new(IperfUdpClient::new(
        SocketAddr::new(server_cfg.ip, 9000),
        200_000_000,
        600,
        SimTime::from_ms(4),
    ));

    // Server host + NIC, with the NIC's Ethernet link bridged over TCP: this
    // is the link that would cross physical machines in a distributed run.
    let (srv_pcie_host, srv_pcie_nic) = simbricks::base::channel_pair(exp.pcie_params());
    let (srv_eth_nic, srv_eth_switch, _proxy_threads) =
        proxy_channel_over_tcp(exp.eth_params()).expect("proxy setup");
    let s = exp.add(
        "server.host",
        host_component(server_cfg, server_app),
        vec![srv_pcie_host],
    );
    exp.add(
        "server.nic",
        nic_model(server_cfg.nic, false),
        vec![srv_pcie_nic, srv_eth_nic],
    );

    // Client host + NIC with a direct (local) Ethernet channel.
    let (cli_pcie_host, cli_pcie_nic) = simbricks::base::channel_pair(exp.pcie_params());
    let (cli_eth_nic, cli_eth_switch) = simbricks::base::channel_pair(exp.eth_params());
    exp.add(
        "client.host",
        host_component(client_cfg, client_app),
        vec![cli_pcie_host],
    );
    exp.add(
        "client.nic",
        nic_model(client_cfg.nic, false),
        vec![cli_pcie_nic, cli_eth_nic],
    );

    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![srv_eth_switch, cli_eth_switch],
    );

    // Threads execution: proxies are real threads moving real TCP traffic.
    let r = exp.run(Execution::Threads);
    let server: &HostModel = r.model(s).unwrap();
    assert!(
        server.stats().rx_frames > 50,
        "traffic crossed the proxied link (got {} frames)",
        server.stats().rx_frames
    );
}
