//! Time-travel replay, proven end to end.
//!
//! * **Ring bit-identity**: a run that records a checkpoint ring produces the
//!   same merged event log as an uninterrupted run, and a fresh run restored
//!   from *every* ring entry reproduces it bit for bit — across the
//!   sequential and sharded executors and true 2-process distributed runs
//!   over both transports (the orchestrator merges per-partition snapshots
//!   into whole-experiment ring entries that restore locally).
//! * **Seek**: `Replay::seek(t)` yields exactly the simulation-visible state
//!   of a fresh run paused at `t` — clocks, event logs, per-port queue
//!   depths, and model state.
//! * **Bisect**: two rings whose runs were nudged apart (scenario seed +1,
//!   or a one-byte impairment-seed mutation) are bisected to the exact first
//!   divergent event — matching a ground-truth diff of the full logs —
//!   within the ⌈log2(epochs)⌉+1 replay budget; identical runs report no
//!   divergence in two replays.

use std::path::PathBuf;

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::base::{EventLog, LogEntry};
use simbricks::hostsim::{HostConfig, HostKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::dist::{self, DistOptions, PartitionBuilder};
use simbricks::runner::{Execution, Experiment, RingMeta, TransportKind, RING_SCENARIO_FILE};
use simbricks::scenario::build_from_toml;
use simbricks::SimTime;
use simbricks_replay::{record_ring, Replay, SeekState, Side};

/// Impaired host pair: the lossy, jittery, reordering link makes the event
/// stream sensitive to both the scenario seed and the impairment seed, which
/// the bisect tests mutate. 480 us of virtual time over 40 us epochs = 12
/// epochs. Reordering is on deliberately: a reorder-deferred packet once
/// stranded its peer on a stale promise and deadlocked ring quiescing, so
/// every ring recording here doubles as a regression test for that.
const SCENARIO: &str = r#"
[scenario]
name = "replay-b2b"
duration = "400us"
end_margin = "80us"
log = true
seed = 1

[[host]]
name = "s0"
kind = "qemu_timing"

[host.app]
type = "iperf_tcp_server"

[[host]]
name = "c0"
kind = "qemu_timing"

[host.app]
type = "iperf_tcp_client"
server = "s0"

[[link]]
name = "wire"
a = "s0"
b = "c0"

[link.impairment]
loss = "bernoulli"
loss_permille = 20
jitter = "200ns"
reorder_permille = 10
"#;

fn ring_period() -> SimTime {
    SimTime::from_us(40)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simbricks-replay-{}-{tag}", std::process::id()))
}

fn build_local(scenario: &str) -> Experiment {
    let mut pb = PartitionBuilder::new_local();
    build_from_toml(scenario, &mut pb);
    pb.into_experiment()
}

fn assert_logs_identical(got: &EventLog, want: &EventLog, label: &str) {
    assert_eq!(got.len(), want.len(), "event count differs ({label})");
    for (i, (g, w)) in got.entries().iter().zip(want.entries()).enumerate() {
        assert_eq!(g, w, "first diverging entry at index {i} ({label})");
    }
    assert_eq!(got.fingerprint(), want.fingerprint(), "fingerprint ({label})");
}

/// Ground truth for the bisect tests: run both scenarios uninterrupted with
/// full logs and diff their labeled merges directly (ordered by virtual
/// time, component build order, record order — the merge order the bisector
/// uses). Returns the first differing slot.
fn ground_truth_divergence(
    scn_a: &str,
    scn_b: &str,
) -> (SimTime, String, Option<LogEntry>, Option<LogEntry>) {
    let merge = |scn: &str| -> (Vec<String>, Vec<(usize, LogEntry)>) {
        let r = build_local(scn).run(Execution::Sequential);
        let mut all: Vec<(SimTime, usize, usize, LogEntry)> = Vec::new();
        for (ci, log) in r.logs.iter().enumerate() {
            for (ei, e) in log.entries().iter().enumerate() {
                all.push((e.time, ci, ei, *e));
            }
        }
        all.sort_by_key(|&(t, ci, ei, _)| (t, ci, ei));
        (
            r.component_names.clone(),
            all.into_iter().map(|(_, ci, _, e)| (ci, e)).collect(),
        )
    };
    let (names, wa) = merge(scn_a);
    let (_, wb) = merge(scn_b);
    for i in 0..wa.len().max(wb.len()) {
        let (ea, eb) = (wa.get(i), wb.get(i));
        if ea == eb {
            continue;
        }
        let first = match (ea, eb) {
            (Some(x), Some(y)) => {
                if (y.1.time, y.0) < (x.1.time, x.0) {
                    y
                } else {
                    x
                }
            }
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (None, None) => unreachable!(),
        };
        return (
            first.1.time,
            names[first.0].clone(),
            ea.map(|(_, e)| *e),
            eb.map(|(_, e)| *e),
        );
    }
    panic!("ground truth found no divergence — the mutation did not take");
}

/// Ring-recorded runs and replays from every ring entry are bit-identical to
/// the uninterrupted baseline, under the sequential and sharded executors.
#[test]
fn ring_replay_matrix_in_process() {
    let baseline = build_local(SCENARIO).run(Execution::Sequential).merged_log();
    assert!(baseline.len() > 100, "baseline log has events ({})", baseline.len());
    let execs = [
        ("seq", Execution::Sequential),
        ("sharded2", Execution::Sharded { workers: 2 }),
    ];
    for (ename, exec) in execs {
        let dir = tmp_dir(&format!("ring-{ename}"));
        let _ = std::fs::remove_dir_all(&dir);
        let r = record_ring(&dir, SCENARIO, build_from_toml, exec, ring_period(), 0)
            .expect("record ring");
        assert_logs_identical(&r.merged_log(), &baseline, &format!("{ename} recording run"));
        assert_eq!(r.ring.len(), 11, "snapshots at every period multiple below the end");

        let ring = Replay::open(&dir).expect("open ring");
        assert_eq!(ring.entries().len(), 11, "all entries on disk (keep = 0)");
        for (t, path) in ring.entries() {
            let mut exp = build_local(SCENARIO);
            let at = exp.restore(path).expect("restore ring entry");
            assert_eq!(at, *t, "entry restores to its slot time");
            let r2 = exp.run(exec);
            assert_logs_identical(
                &r2.merged_log(),
                &baseline,
                &format!("{ename} replayed from {t}"),
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `keep_n` prunes the ring (on disk and in the result) to the newest
/// entries while recording.
#[test]
fn ring_prunes_to_newest_keep() {
    let dir = tmp_dir("keep");
    let _ = std::fs::remove_dir_all(&dir);
    let r = record_ring(&dir, SCENARIO, build_from_toml, Execution::Sequential, ring_period(), 3)
        .expect("record ring");
    let times: Vec<SimTime> = r.ring.iter().map(|(t, _)| *t).collect();
    let want: Vec<SimTime> = (9..=11).map(|k| SimTime::from_us(40 * k)).collect();
    assert_eq!(times, want, "newest 3 slots survive in the result");
    let ring = Replay::open(&dir).expect("open ring");
    let disk: Vec<SimTime> = ring.entries().iter().map(|(t, _)| *t).collect();
    assert_eq!(disk, want, "newest 3 slots survive on disk");
    // The pruned ring still replays bit-identically from its oldest survivor.
    let baseline = build_local(SCENARIO).run(Execution::Sequential).merged_log();
    let mut exp = build_local(SCENARIO);
    exp.restore(&ring.entries()[0].1).expect("restore oldest survivor");
    assert_logs_identical(
        &exp.run(Execution::Sequential).merged_log(),
        &baseline,
        "replay from oldest surviving entry",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `seek(t)` equals a fresh run paused at `t` in everything the simulation
/// can observe, whether `t` is a snapshot slot or strictly inside an epoch.
#[test]
fn seek_matches_fresh_run_paused() {
    let dir = tmp_dir("seek");
    let _ = std::fs::remove_dir_all(&dir);
    record_ring(&dir, SCENARIO, build_from_toml, Execution::Sequential, ring_period(), 0)
        .expect("record ring");
    let ring = Replay::open(&dir).expect("open ring");
    let probes = [
        SimTime::from_us(40),             // exactly a snapshot slot
        SimTime::from_us(100),            // mid-epoch, steps 20 us past a slot
        SimTime::from_ps(217_000_123),    // unaligned picosecond inside epoch 5
        SimTime::from_us(470),            // past the newest snapshot (440 us)
    ];
    for t in probes {
        let seeked = ring.seek(t).expect("seek");
        assert_eq!(seeked.time, t);
        if t >= ring_period() {
            assert!(
                seeked.restored_from > SimTime::ZERO,
                "seek to {t} restores from a snapshot, not a fresh run"
            );
        }
        let mut exp = build_local(SCENARIO);
        exp.freeze_at(t).expect("fresh run paused at t");
        let fresh = SeekState::capture(&exp, t, SimTime::ZERO).expect("capture");
        for c in &seeked.components {
            assert_eq!(c.now, t, "{}: clock stands at the seek time", c.name);
        }
        assert!(
            seeked.sim_eq(&fresh),
            "seek({t}) differs from a fresh run paused there"
        );
    }
    assert!(
        ring.seek(SimTime::from_us(480)).is_err(),
        "seeking at/past the run end is rejected"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bisecting a run against itself (two rings, separate recordings) reports
/// no divergence and spends only the two fingerprint replays.
#[test]
fn bisect_identical_runs_reports_no_divergence() {
    let da = tmp_dir("ident-a");
    let db = tmp_dir("ident-b");
    let _ = std::fs::remove_dir_all(&da);
    let _ = std::fs::remove_dir_all(&db);
    record_ring(&da, SCENARIO, build_from_toml, Execution::Sequential, ring_period(), 0)
        .expect("record ring a");
    record_ring(&db, SCENARIO, build_from_toml, Execution::Sequential, ring_period(), 0)
        .expect("record ring b");
    let ra = Replay::open(&da).expect("open a");
    let rb = Replay::open(&db).expect("open b");
    let report = ra.bisect(&rb).expect("bisect");
    assert!(report.divergence.is_none(), "identical runs must not diverge");
    assert_eq!(report.replays, 2, "identical runs need only the fingerprint pass");
    assert_eq!(report.epochs, 12);
    let _ = std::fs::remove_dir_all(&da);
    let _ = std::fs::remove_dir_all(&db);
}

/// Shared harness for the injected-divergence legs: record rings of both
/// scenario texts, bisect, and pin the report against the ground-truth diff
/// of the full logs.
fn assert_bisect_pins(scn_a: &str, scn_b: &str, tag: &str) {
    let da = tmp_dir(&format!("{tag}-a"));
    let db = tmp_dir(&format!("{tag}-b"));
    let _ = std::fs::remove_dir_all(&da);
    let _ = std::fs::remove_dir_all(&db);
    record_ring(&da, scn_a, build_from_toml, Execution::Sequential, ring_period(), 0)
        .expect("record ring a");
    record_ring(&db, scn_b, build_from_toml, Execution::Sequential, ring_period(), 0)
        .expect("record ring b");
    let ra = Replay::open(&da).expect("open a");
    let rb = Replay::open(&db).expect("open b");
    let report = ra.bisect(&rb).expect("bisect");
    let d = report.divergence.as_ref().unwrap_or_else(|| {
        panic!("{tag}: mutated runs must diverge");
    });

    // Replay budget: within ⌈log2(epochs)⌉ + 1.
    assert!(report.epochs >= 12, "enough epochs for the budget to bind");
    let budget = report.epochs.next_power_of_two().trailing_zeros() as usize + 1;
    assert!(
        report.replays <= budget,
        "{tag}: {} replays exceeds the ⌈log2({})⌉+1 = {budget} budget",
        report.replays,
        report.epochs
    );

    // Exactness: virtual time, component, and both payloads match a direct
    // diff of the full uninterrupted logs.
    let (gt_time, gt_comp, gt_a, gt_b) = ground_truth_divergence(scn_a, scn_b);
    assert_eq!(d.time, gt_time, "{tag}: divergence time");
    assert_eq!(d.component, gt_comp, "{tag}: divergence component");
    assert_eq!(d.a, gt_a, "{tag}: side A entry");
    assert_eq!(d.b, gt_b, "{tag}: side B entry");
    assert_eq!(
        d.epoch as u64,
        gt_time.as_ps() / ring_period().as_ps(),
        "{tag}: pinned epoch contains the divergence time"
    );

    // A live re-run of side B (no ring) pins the same event.
    let live = ra
        .bisect_live(scn_b, build_from_toml)
        .expect("bisect against live re-run");
    assert_eq!(
        live.divergence.as_ref(),
        Some(d),
        "{tag}: ring-vs-live bisect agrees with ring-vs-ring"
    );

    let _ = std::fs::remove_dir_all(&da);
    let _ = std::fs::remove_dir_all(&db);
}

/// Scenario seed +1: every impairment stream reseeds, the runs drift apart
/// somewhere mid-run, and the bisect pins the exact first divergent event.
#[test]
fn bisect_pins_scenario_seed_divergence() {
    let scn_b = SCENARIO.replace("seed = 1", "seed = 2");
    assert_ne!(SCENARIO, scn_b);
    assert_bisect_pins(SCENARIO, &scn_b, "seed+1");
}

/// One-byte impairment-seed mutation: both sides pin the link's impairment
/// seed explicitly; side B's differs from side A's in exactly one byte
/// (0x05 vs 0x85). The scenario seed is untouched.
#[test]
fn bisect_pins_impairment_seed_mutation() {
    let scn_a = SCENARIO.replace("jitter = \"200ns\"", "jitter = \"200ns\"\nseed = 5");
    let scn_b = SCENARIO.replace("jitter = \"200ns\"", "jitter = \"200ns\"\nseed = 133");
    assert_ne!(scn_a, scn_b);
    assert_bisect_pins(&scn_a, &scn_b, "impair-byte");
}

/// Both sides being live re-runs is rejected: at least one ring supplies the
/// period, end, and snapshots.
#[test]
fn bisect_requires_a_ring() {
    let a = Side::Live { scenario: SCENARIO, build: build_from_toml };
    let b = Side::Live { scenario: SCENARIO, build: build_from_toml };
    assert!(simbricks_replay::bisect(&a, &b).is_err());
}

// ---------------------------------------------------------------------------
// Distributed matrix: ring recorded by a 2-process run (per-partition
// snapshots merged by the orchestrator into whole-experiment ring entries),
// replayed locally from every entry.
// ---------------------------------------------------------------------------

fn dist_end_time() -> SimTime {
    SimTime::from_ms(3)
}

/// Dist-aware build shared by the in-process baseline, discovery, the worker
/// processes, and the local replays (server + switch in p0, client in p1).
fn dist_build(_scenario: &str, pb: &mut PartitionBuilder) {
    pb.init(Experiment::new("replay-dist", dist_end_time()).with_logging());
    let eth_params = pb.exp().eth_params();
    let server_cfg = HostConfig::new(HostKind::Gem5Timing, 0);
    let client_cfg = HostConfig::new(HostKind::Gem5Timing, 1);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(
        server_cfg.ip,
        5201,
        5202,
        SimTime::from_ms(1),
        SimTime::from_ms(1),
    ));
    let (_s, _, s_eth) = pb.attach_host_nic("p0", "server", server_cfg, server_app, false);
    let (cli_eth_nic, cli_eth_sw) = pb.channel("client-eth", "p1", "p0", eth_params);
    pb.attach_host_nic_on("p1", "client", client_cfg, client_app, false, cli_eth_nic);
    pb.add(
        "p0",
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, cli_eth_sw],
    );
}

/// Hidden worker entry (see `integration_determinism.rs` for the pattern):
/// spawned worker processes re-enter this test binary here; `maybe_worker`
/// detects the control-socket environment and takes over.
#[test]
#[ignore = "internal: entry point for dist-test worker subprocesses"]
fn replay_dist_worker_entry() {
    dist::maybe_worker(&dist_build);
}

fn dist_opts(scenario: &str) -> DistOptions {
    DistOptions::new(vec!["p0".into(), "p1".into()], scenario).with_worker_args(vec![
        "replay_dist_worker_entry".into(),
        "--exact".into(),
        "--include-ignored".into(),
        "--nocapture".into(),
    ])
}

fn dist_ring_matrix_for(transport: TransportKind) {
    let period = SimTime::from_us(500);
    let baseline = dist::run_local("", &dist_build, Execution::Sequential).merged_log();
    assert!(baseline.len() > 100, "baseline has events");
    let dir = tmp_dir(&format!("dist-{}", transport.to_arg()));
    let _ = std::fs::remove_dir_all(&dir);

    // 2-process recording run: each worker snapshots its partition at every
    // slot; the orchestrator merges them into whole-experiment entries.
    let d = dist::run_distributed(
        &dist_opts("")
            .with_transport(transport)
            .with_checkpoint_ring(period, 0, dir.clone()),
        &dist_build,
    )
    .expect("distributed ring recording run");
    assert_logs_identical(
        &d.merged_log(),
        &baseline,
        &format!("dist-{} recording run", transport.to_arg()),
    );

    // The orchestrator does not know the scenario semantics, so the harness
    // writes the sidecars the replayer needs (simbricks-run does the same).
    RingMeta { name: "replay-dist".into(), period, keep: 0, end: dist_end_time() }
        .write_to(&dir)
        .expect("write ring meta");
    std::fs::write(dir.join(RING_SCENARIO_FILE), "").expect("write scenario sidecar");

    let ring = Replay::open_with(&dir, dist_build).expect("open dist ring");
    assert_eq!(ring.entries().len(), 5, "slots at every 500 us below 3 ms");
    for (t, path) in ring.entries() {
        let mut pb = PartitionBuilder::new_local();
        dist_build("", &mut pb);
        let mut exp = pb.into_experiment();
        let at = exp.restore(path).expect("restore merged ring entry locally");
        assert_eq!(at, *t);
        let r2 = exp.run(Execution::Sequential);
        assert_logs_identical(
            &r2.merged_log(),
            &baseline,
            &format!("dist-{} replayed from {t}", transport.to_arg()),
        );
    }

    // Seek through the merged entries works like any local ring.
    let t = SimTime::from_us(1250);
    let seeked = ring.seek(t).expect("seek dist ring");
    let mut exp = pb_local_dist();
    exp.freeze_at(t).expect("fresh run paused");
    let fresh = SeekState::capture(&exp, t, SimTime::ZERO).expect("capture");
    assert!(seeked.sim_eq(&fresh), "dist ring seek equals a fresh paused run");

    let _ = std::fs::remove_dir_all(&dir);
}

fn pb_local_dist() -> Experiment {
    let mut pb = PartitionBuilder::new_local();
    dist_build("", &mut pb);
    pb.into_experiment()
}

/// dist×tcp leg.
#[test]
fn ring_replay_matrix_dist_tcp() {
    dist_ring_matrix_for(TransportKind::Tcp);
}

/// dist×shm leg (skipped on platforms without shared-memory support).
#[test]
fn ring_replay_matrix_dist_shm() {
    if !simbricks::runner::shm_supported() {
        eprintln!("shm transport unsupported on this platform; skipping");
        return;
    }
    dist_ring_matrix_for(TransportKind::Shm);
}
