//! Storage-path integration tests: host + NVMe device over the SimBricks
//! PCIe interface, orchestrated by the runner (§7.2 generality).

use simbricks::apps::{AccessPattern, FioConfig, FioWorkload};
use simbricks::hostsim::{HostKind, StorageHostConfig, StorageHostModel};
use simbricks::nvmesim::{NvmeConfig, NvmeDev};
use simbricks::runner::{attach_host_nvme, Execution, Experiment};
use simbricks::SimTime;

fn run_fio(kind: HostKind, qd: usize, read_percent: u8, media_read_us: u64) -> (u64, f64, f64) {
    let duration = SimTime::from_ms(10);
    let mut exp = Experiment::new("storage-it", duration + SimTime::from_ms(2));
    let workload = FioWorkload::new(FioConfig {
        queue_depth: qd,
        pattern: AccessPattern::Random,
        read_percent,
        duration,
        ..Default::default()
    });
    let nvme = NvmeConfig {
        read_latency: SimTime::from_us(media_read_us),
        ..Default::default()
    };
    let (host_id, dev_id) =
        attach_host_nvme(&mut exp, "store", StorageHostConfig::new(kind), Box::new(workload), nvme);
    let r = exp.run(Execution::Sequential);
    let host: &StorageHostModel = r.model(host_id).unwrap();
    let dev: &NvmeDev = r.model(dev_id).unwrap();
    assert_eq!(
        host.stats().completed,
        dev.completions,
        "every device completion reached the driver"
    );
    let report = host.app_report();
    let field = |key: &str| -> f64 {
        report
            .split_whitespace()
            .find_map(|t| t.strip_prefix(key).map(|v| v.trim_end_matches("us").parse().unwrap_or(0.0)))
            .unwrap_or(0.0)
    };
    (host.stats().completed, field("iops="), field("mean_lat="))
}

#[test]
fn nvme_workload_completes_on_both_host_kinds() {
    let (ops_qemu, _, lat_qemu) = run_fio(HostKind::QemuTiming, 8, 100, 80);
    let (ops_gem5, _, lat_gem5) = run_fio(HostKind::Gem5Timing, 8, 100, 80);
    assert!(ops_qemu > 100, "qemu-timing host completed {ops_qemu} ops");
    assert!(ops_gem5 > 100, "gem5 host completed {ops_gem5} ops");
    // Latency is dominated by the 80 us media time plus PCIe crossings on
    // both hosts; the detailed host adds a little more software time.
    assert!(lat_qemu > 80.0 && lat_qemu < 200.0, "got {lat_qemu} us");
    assert!(lat_gem5 >= lat_qemu, "gem5 {lat_gem5} us >= qemu {lat_qemu} us");
}

#[test]
fn queue_depth_scales_iops_until_media_limited() {
    let (_, iops_1, _) = run_fio(HostKind::QemuTiming, 1, 100, 80);
    let (_, iops_16, _) = run_fio(HostKind::QemuTiming, 16, 100, 80);
    assert!(
        iops_16 > iops_1 * 5.0,
        "qd16 ({iops_16:.0}) should be well above 5x qd1 ({iops_1:.0})"
    );
}

#[test]
fn faster_media_means_lower_latency_and_more_iops() {
    let (_, iops_slow, lat_slow) = run_fio(HostKind::QemuTiming, 4, 100, 80);
    let (_, iops_fast, lat_fast) = run_fio(HostKind::QemuTiming, 4, 100, 20);
    assert!(lat_fast < lat_slow, "{lat_fast} < {lat_slow}");
    assert!(iops_fast > iops_slow, "{iops_fast} > {iops_slow}");
}

#[test]
fn mixed_read_write_workload_is_deterministic() {
    let a = run_fio(HostKind::Gem5Timing, 8, 50, 40);
    let b = run_fio(HostKind::Gem5Timing, 8, 50, 40);
    assert_eq!(a, b, "repeated synchronized runs are identical");
    assert!(a.0 > 50);
}
