//! Allocation-regression tests for the pooled packet-buffer hot path: once
//! the per-thread freelist is warm, a steady-state run must serve virtually
//! every buffer allocation from the pool (miss count ~0), and pooling must
//! not change simulation results.

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::base::KernelStats;
use simbricks::hostsim::{HostConfig, HostKind, NicModelKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

/// Run a two-host netperf experiment sequentially (everything on this
/// thread, so all runs share one thread-local freelist) and return the
/// merged kernel statistics.
fn netperf_run(stream_ms: u64) -> KernelStats {
    let stream = SimTime::from_ms(stream_ms);
    let mut exp = Experiment::new("pool-netperf", stream + SimTime::from_ms(4));
    let server_cfg = HostConfig::new(HostKind::QemuTiming, 0).with_nic(NicModelKind::I40e);
    let client_cfg = HostConfig::new(HostKind::QemuTiming, 1).with_nic(NicModelKind::I40e);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(
        server_cfg.ip,
        5201,
        5202,
        stream,
        SimTime::from_ms(2),
    ));
    let (_s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
    let (_c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig {
            ports: 2,
            ..Default::default()
        })),
        vec![s_eth, c_eth],
    );
    let r = exp.run(Execution::Sequential);
    r.total_stats()
}

/// After a warm-up run has populated the thread's freelist, a steady-state
/// netperf run must be allocation-free on the message path: pool misses stay
/// ~0 while hits run into the hundreds of thousands (hit rate >= 99%).
#[test]
fn steady_state_netperf_pool_misses_are_negligible() {
    // Warm-up: the first run takes the cold misses that populate the
    // freelist.
    let warmup = netperf_run(4);
    assert!(
        warmup.pool_hits + warmup.pool_misses > 10_000,
        "netperf exercises the pooled hot path (got {} allocations)",
        warmup.pool_hits + warmup.pool_misses
    );

    // Steady state: same workload, warm freelist.
    let steady = netperf_run(10);
    let total = steady.pool_hits + steady.pool_misses;
    assert!(
        total > 100_000,
        "expected a message-heavy run, got {total} pooled allocations"
    );
    assert!(
        steady.pool_hit_rate() >= 0.99,
        "steady-state pool hit rate must be >= 99%, got {:.4} ({} hits / {} misses)",
        steady.pool_hit_rate(),
        steady.pool_hits,
        steady.pool_misses
    );
    // "~0": what little misses remain must be a vanishing fraction, not a
    // per-message cost.
    assert!(
        steady.pool_misses <= total / 100,
        "misses must not scale with traffic ({} misses / {} allocations)",
        steady.pool_misses,
        total
    );
}

/// Pooling is an allocator change, not a semantics change: two identical
/// runs (cold pool vs warm pool) produce identical simulation statistics.
#[test]
fn warm_and_cold_pools_simulate_identically() {
    let a = netperf_run(5);
    let b = netperf_run(5);
    assert_eq!(a.final_time, b.final_time);
    assert_eq!(a.msgs_delivered, b.msgs_delivered);
    assert_eq!(a.timers_fired, b.timers_fired);
    assert_eq!(a.data_sent, b.data_sent);
    assert_eq!(a.syncs_sent, b.syncs_sent);
    // The allocator-facing counters are the only thing allowed to differ
    // (the second run is warmer), and only towards more hits.
    assert!(b.pool_misses <= a.pool_misses);
}
