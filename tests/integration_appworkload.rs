//! Application-workload determinism: the PR-7 hash-order audit converted
//! every simulation-path table (socket maps, key-value stores, in-flight
//! request tables, MAC tables) to ordered structures. This is the
//! end-to-end regression for that audit: realistic application workloads —
//! a memcached rack and a Multi-Paxos replica group — must produce merged
//! event logs bit-identical between the sequential executor and the
//! work-stealing sharded executor at every worker count.
//!
//! Under the pre-audit `HashMap` tables these workloads diverge: each
//! process (and each run) gets its own `RandomState`, so any
//! iteration-order-dependent effect (timer sweep order, snapshot bytes,
//! reply matching) shuffles the event timeline.

use simbricks::apps::paxos::{PaxosClient, PaxosMode, Replica, PAXOS_LEADER_PORT};
use simbricks::apps::{MemaslapClient, MemcachedServer};
use simbricks::base::EventLog;
use simbricks::hostsim::{HostConfig, HostKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::netstack::SocketAddr;
use simbricks::proto::Ipv4Addr;
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

/// A small memcached rack: two servers, two memaslap clients spraying GETs
/// and SETs across both (round-robin), one switch. Exercises the ordered
/// key-value store, the in-flight request table (FIFO matching + retry
/// sweep), UDP socket tables, and switch MAC learning.
fn run_memcache_rack(mode: Execution) -> (u64, usize) {
    let virt = SimTime::from_ms(4);
    let mut exp = Experiment::new("appwl-memcache", virt + SimTime::from_ms(1)).with_logging();
    let kind = HostKind::Gem5Timing;
    let mut eth = Vec::new();
    let server_cfgs: Vec<HostConfig> = (0..2u32).map(|i| HostConfig::new(kind, i)).collect();
    let server_addrs: Vec<SocketAddr> = server_cfgs
        .iter()
        .map(|c| SocketAddr::new(c.ip, simbricks::apps::memcache::MEMCACHE_PORT))
        .collect();
    for (i, cfg) in server_cfgs.iter().enumerate() {
        let (_h, _n, e) = attach_host_nic(
            &mut exp,
            &format!("server{i}"),
            *cfg,
            Box::new(MemcachedServer::new()),
            false,
        );
        eth.push(e);
    }
    for i in 0..2u32 {
        let cfg = HostConfig::new(kind, 10 + i);
        let app = Box::new(MemaslapClient::new(server_addrs.clone(), 4, 64, virt));
        let (_h, _n, e) = attach_host_nic(&mut exp, &format!("client{i}"), cfg, app, false);
        eth.push(e);
    }
    let ports = eth.len();
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports, ..Default::default() })),
        eth,
    );
    let r = exp.run(mode);
    let logs: Vec<&EventLog> = r.logs.iter().collect();
    let merged = EventLog::merge(&logs);
    (merged.fingerprint(), merged.len())
}

/// Leader-based Multi-Paxos: three replicas and a closed-loop client.
/// Exercises the replica's pending-proposal table and the client's
/// outstanding-request table (stuck-request sweep).
fn run_paxos(mode: Execution) -> (u64, usize) {
    let virt = SimTime::from_ms(6);
    let mut exp = Experiment::new("appwl-paxos", virt + SimTime::from_ms(2)).with_logging();
    let kind = HostKind::QemuTiming;
    let replica_cfgs: Vec<HostConfig> = (0..3u32).map(|i| HostConfig::new(kind, i)).collect();
    let replica_ips: Vec<Ipv4Addr> = replica_cfgs.iter().map(|c| c.ip).collect();
    let mut eth = Vec::new();
    for (i, cfg) in replica_cfgs.iter().enumerate() {
        let peers = replica_ips.iter().filter(|ip| **ip != cfg.ip).copied().collect();
        let app = Box::new(Replica::new(i as u8, PaxosMode::MultiPaxos, peers));
        let (_h, _n, e) = attach_host_nic(&mut exp, &format!("replica{i}"), *cfg, app, false);
        eth.push(e);
    }
    let client_cfg = HostConfig::new(kind, 20);
    let target = SocketAddr::new(replica_ips[0], PAXOS_LEADER_PORT);
    let client_app = Box::new(PaxosClient::new(PaxosMode::MultiPaxos, target, 1, virt));
    let (_c, _n, e) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    eth.push(e);
    let ports = eth.len();
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports, ..Default::default() })),
        eth,
    );
    let r = exp.run(mode);
    let logs: Vec<&EventLog> = r.logs.iter().collect();
    let merged = EventLog::merge(&logs);
    (merged.fingerprint(), merged.len())
}

#[test]
fn memcache_rack_sharded_matches_sequential() {
    let (f_seq, n_seq) = run_memcache_rack(Execution::Sequential);
    assert!(n_seq > 100, "logs actually contain events ({n_seq})");
    for workers in [1usize, 2, 4] {
        let (f_sh, n_sh) = run_memcache_rack(Execution::Sharded { workers });
        assert_eq!(n_seq, n_sh, "same event count with {workers} workers");
        assert_eq!(
            f_seq, f_sh,
            "memcache rack: sequential and sharded ({workers} workers) logs bit-identical"
        );
    }
}

#[test]
fn paxos_sharded_matches_sequential() {
    let (f_seq, n_seq) = run_paxos(Execution::Sequential);
    assert!(n_seq > 100, "logs actually contain events ({n_seq})");
    for workers in [1usize, 2, 4] {
        let (f_sh, n_sh) = run_paxos(Execution::Sharded { workers });
        assert_eq!(n_seq, n_sh, "same event count with {workers} workers");
        assert_eq!(
            f_seq, f_sh,
            "paxos: sequential and sharded ({workers} workers) logs bit-identical"
        );
    }
}

/// Repeated sequential runs of the memcache rack are self-identical — the
/// cheapest canary for ambient nondeterminism creeping into the apps.
#[test]
fn memcache_rack_repeated_runs_identical() {
    let (f1, n1) = run_memcache_rack(Execution::Sequential);
    let (f2, n2) = run_memcache_rack(Execution::Sequential);
    assert_eq!(n1, n2);
    assert_eq!(f1, f2);
}
