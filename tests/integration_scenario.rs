//! Declarative-scenario determinism matrix: one TOML document with an
//! impaired link and a CoDel egress queue must produce bit-identical merged
//! event logs across every executor (sequential, sharded with any worker
//! count), across true multi-process distributed runs over both transports,
//! and across checkpoint/restore — while remaining sensitive to the master
//! seed. Also proves the scenario lowering reproduces the event log of the
//! hand-rolled harness style it replaced, bit for bit.

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::hostsim::{HostConfig, HostKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::dist::{self, DistOptions, PartitionBuilder};
use simbricks::runner::{attach_host_nic, Execution, Experiment, TransportKind};
use simbricks::scenario::{build_from_toml, lower, Scenario};
use simbricks::SimTime;

/// The matrix workload: a TCP pair through a switch, the client link runs a
/// Bernoulli-loss + jitter + reordering impairment into a CoDel egress
/// queue. Two partitions so the same text drives the distributed runs.
const IMPAIRED_CODEL: &str = r#"
[scenario]
name = "impaired-codel"
duration = "400us"
log = true

[[host]]
name = "s0"
kind = "gem5_timing"
partition = "w0"

[host.app]
type = "iperf_tcp_server"

[[host]]
name = "c0"
kind = "gem5_timing"
partition = "w1"

[host.app]
type = "iperf_tcp_client"
server = "s0"

[[switch]]
name = "sw"
partition = "w0"

[[link]]
name = "srv"
a = "s0"
b = "sw"

[[link]]
name = "cli"
a = "c0"
b = "sw"

[link.impairment]
loss = "bernoulli"
loss_permille = 20
jitter = "200ns"
reorder_permille = 10

[link.aqm]
type = "codel"
target = "5us"
interval = "100us"
"#;

fn run_inproc(text: &str, exec: Execution) -> (u64, usize) {
    let r = dist::run_local(text, &build_from_toml, exec);
    let log = r.merged_log();
    (log.fingerprint(), log.len())
}

#[test]
fn impaired_codel_scenario_is_executor_invariant_and_seed_sensitive() {
    let (f_seq, n_seq) = run_inproc(IMPAIRED_CODEL, Execution::Sequential);
    assert!(n_seq > 100, "logs actually contain events ({n_seq})");

    // Same seed, repeated run: bit-identical.
    let (f_again, n_again) = run_inproc(IMPAIRED_CODEL, Execution::Sequential);
    assert_eq!((f_seq, n_seq), (f_again, n_again), "repeat run identical");

    // Every sharded worker count reproduces the sequential log.
    for workers in [1usize, 2, 4] {
        let (f_sh, n_sh) = run_inproc(IMPAIRED_CODEL, Execution::Sharded { workers });
        assert_eq!(
            (f_seq, n_seq),
            (f_sh, n_sh),
            "sharded ({workers} workers) matches sequential"
        );
    }

    // A different master seed steers the impairment and AQM streams.
    let reseeded = IMPAIRED_CODEL.replace("log = true", "log = true\nseed = 7");
    let (f_re, _) = run_inproc(&reseeded, Execution::Sequential);
    assert_ne!(f_seq, f_re, "seed change must alter the impaired event stream");
}

#[test]
fn impaired_codel_scenario_survives_checkpoint_restore() {
    let build = || {
        let spec = Scenario::from_toml_str(IMPAIRED_CODEL).expect("fixture parses");
        let mut pb = PartitionBuilder::new_local();
        lower(&spec, &mut pb);
        pb.into_experiment()
    };
    let r_full = build().run(Execution::Sequential);
    let full = r_full.merged_log();
    assert!(full.len() > 100, "logs actually contain events ({})", full.len());

    let path = std::env::temp_dir().join(format!("scenario-ckpt-{}.ckpt", std::process::id()));
    let mut exp = build();
    exp.checkpoint_at(SimTime::from_us(150), Some(path.clone()));
    let r_ck = exp.run(Execution::Sequential);
    let ck = r_ck.merged_log();
    assert_eq!(
        (full.fingerprint(), full.len()),
        (ck.fingerprint(), ck.len()),
        "checkpointing run diverged"
    );

    let mut exp = build();
    let at = exp.restore(&path).expect("restore checkpoint");
    assert_eq!(at, SimTime::from_us(150));
    let r_re = exp.run(Execution::Sequential);
    let re = r_re.merged_log();
    assert_eq!(
        (full.fingerprint(), full.len()),
        (re.fingerprint(), re.len()),
        "restored run diverged"
    );
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Distributed matrix: the TOML text itself is the scenario string, so the
// worker processes rebuild their partition from the identical document.
// ---------------------------------------------------------------------------

/// Hidden worker entry re-entered by `dist::run_distributed` worker
/// subprocesses; a no-op without the control-socket environment.
#[test]
#[ignore = "internal: entry point for dist-test worker subprocesses"]
fn dist_worker_entry() {
    dist::maybe_worker(&build_from_toml);
}

fn assert_dist_matches(transport: TransportKind) {
    let spec = Scenario::from_toml_str(IMPAIRED_CODEL).expect("fixture parses");
    let local = dist::run_local(IMPAIRED_CODEL, &build_from_toml, Execution::Sequential);
    let merged = local.merged_log();
    assert!(merged.len() > 100, "logs actually contain events ({})", merged.len());

    let opts = DistOptions::new(spec.partitions(), IMPAIRED_CODEL)
        .with_transport(transport)
        .with_worker_args(vec![
            "dist_worker_entry".into(),
            "--exact".into(),
            "--include-ignored".into(),
            "--nocapture".into(),
        ]);
    let dist = dist::run_distributed(&opts, &build_from_toml).expect("distributed run");
    assert_eq!(
        dist.component_names, local.component_names,
        "components reassembled in global build order"
    );
    let dist_merged = dist.merged_log();
    assert_eq!(
        (merged.fingerprint(), merged.len()),
        (dist_merged.fingerprint(), dist_merged.len()),
        "distributed ({}) and in-process logs bit-identical",
        transport.to_arg()
    );
}

#[test]
fn impaired_codel_scenario_dist_tcp_matches_sequential() {
    assert_dist_matches(TransportKind::Tcp);
}

#[test]
fn impaired_codel_scenario_dist_shm_matches_sequential() {
    assert_dist_matches(TransportKind::Shm);
}

// ---------------------------------------------------------------------------
// Equivalence: the scenario lowering reproduces a hand-rolled harness build
// bit for bit — same component names, same event log — even though the
// hand-rolled style creates each host's PCIe channel before its Ethernet
// channel while the lowering creates them in the opposite order (channel
// creation order affects internal connection ids only, never the log).
// ---------------------------------------------------------------------------

#[test]
fn scenario_lowering_matches_hand_rolled_build() {
    let stream = SimTime::from_ms(2);
    let rr = SimTime::from_ms(2);

    // Hand-rolled, the way every harness was written before the scenario
    // layer (free-function attach_host_nic on a bare Experiment).
    let mut exp = Experiment::new("sec76-netperf", stream + rr + SimTime::from_ms(2)).with_logging();
    let server_cfg = HostConfig::new(HostKind::Gem5Timing, 0);
    let client_cfg = HostConfig::new(HostKind::Gem5Timing, 1);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(server_cfg.ip, 5201, 5202, stream, rr));
    let (_s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
    let (_c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, c_eth],
    );
    let hand = exp.run(Execution::Sequential);
    let hand_log = hand.merged_log();
    assert!(hand_log.len() > 100, "logs actually contain events ({})", hand_log.len());

    // The same topology as a scenario document.
    let toml = r#"
[scenario]
name = "sec76-netperf"
duration = "4ms"
end_margin = "2ms"
log = true

[[host]]
name = "server"
kind = "gem5_timing"

[host.app]
type = "netperf_server"

[[host]]
name = "client"
kind = "gem5_timing"

[host.app]
type = "netperf_client"
server = "server"
stream_duration = "2ms"
rr_duration = "2ms"

[[switch]]
name = "switch"

[[link]]
name = "eth-server"
a = "server"
b = "switch"

[[link]]
name = "eth-client"
a = "client"
b = "switch"
"#;
    let scen = dist::run_local(toml, &build_from_toml, Execution::Sequential);
    assert_eq!(scen.component_names, hand.component_names);
    let scen_log = scen.merged_log();
    assert_eq!(
        (hand_log.fingerprint(), hand_log.len()),
        (scen_log.fingerprint(), scen_log.len()),
        "scenario lowering reproduces the hand-rolled event log bit for bit"
    );
}
