//! DCTCP on an ECN-marking fabric (the Fig. 1 setup, one point of the sweep).
//!
//! Two client/server pairs share a 10 Gbps bottleneck through the behavioural
//! switch with a DCTCP marking threshold K; hosts use the detailed
//! (gem5-like) timing model so host-induced delays are part of the result.
//!
//! Run with: `cargo run --release --example dctcp_fabric [K_packets]`

use simbricks::apps::{IperfTcpClient, IperfTcpServer};
use simbricks::hostsim::{HostConfig, HostKind, HostModel};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::netstack::CongestionControl;
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

fn main() {
    let k_thresh: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(20);
    let mut exp = Experiment::new("dctcp", SimTime::from_ms(40));
    let mut eth_ports = Vec::new();
    let mut server_hosts = Vec::new();

    for pair in 0..2u32 {
        let server_cfg = HostConfig::new(HostKind::Gem5Timing, pair * 2)
            .with_congestion(CongestionControl::Dctcp)
            .with_mtu(4000);
        let client_cfg = HostConfig::new(HostKind::Gem5Timing, pair * 2 + 1)
            .with_congestion(CongestionControl::Dctcp)
            .with_mtu(4000);
        let server_app = Box::new(IperfTcpServer::new(5000 + pair as u16));
        let client_app = Box::new(IperfTcpClient::new(
            server_cfg.ip,
            5000 + pair as u16,
            SimTime::from_ms(30),
        ));
        let (s_host, _, s_eth) =
            attach_host_nic(&mut exp, &format!("server{pair}"), server_cfg, server_app, false);
        let (_c_host, _, c_eth) =
            attach_host_nic(&mut exp, &format!("client{pair}"), client_cfg, client_app, false);
        eth_ports.push(s_eth);
        eth_ports.push(c_eth);
        server_hosts.push(s_host);
    }
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig {
            ports: 4,
            ecn_threshold_pkts: Some(k_thresh),
            ..Default::default()
        })),
        eth_ports,
    );

    let result = exp.run(Execution::Sequential);
    println!("marking threshold K = {k_thresh} packets");
    for (i, h) in server_hosts.iter().enumerate() {
        let host: &HostModel = result.model(*h).unwrap();
        println!("flow {i}: {}", host.app_report());
    }
}
