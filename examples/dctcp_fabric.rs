//! DCTCP on an ECN-marking fabric (the Fig. 1 setup, one point of the sweep),
//! loaded from the committed declarative scenario `scenarios/dctcp_fabric.toml`.
//!
//! The topology lives entirely in the TOML file; this example only reads it,
//! optionally overrides the marking threshold K programmatically, lowers it
//! onto an [`simbricks::runner::Experiment`], and prints the per-flow
//! goodput reports.
//!
//! Run with: `cargo run --release --example dctcp_fabric [K_packets]`

use simbricks::hostsim::HostModel;
use simbricks::runner::{Execution, PartitionBuilder};
use simbricks::scenario::{lower, Doc, Scenario, Value};

const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/dctcp_fabric.toml");

fn main() {
    let text = std::fs::read_to_string(SCENARIO)
        .unwrap_or_else(|e| panic!("reading {SCENARIO}: {e}"));
    let mut doc = Doc::parse(&text).expect("scenario file parses");
    // A command-line K overrides the file's marking threshold — same
    // mechanism as `simbricks-run --sweep switch.switch.ecn_k=...`.
    let k_thresh = std::env::args().nth(1).and_then(|a| a.parse::<i64>().ok());
    if let Some(k) = k_thresh {
        for sec in &mut doc.sections {
            if sec.path == ["switch"] {
                sec.set("ecn_k", Value::Int(k));
            }
        }
    }
    let spec = Scenario::from_doc(&doc).expect("scenario file validates");
    let mut pb = PartitionBuilder::new_local();
    let lowered = lower(&spec, &mut pb);
    let result = pb.into_experiment().run(Execution::Sequential);

    println!(
        "marking threshold K = {} packets",
        k_thresh.unwrap_or(20)
    );
    for (name, id) in lowered.hosts.iter().filter(|(n, _)| n.starts_with("server")) {
        let host: &HostModel = result.model(*id).unwrap();
        println!("{name}: {}", host.app_report());
    }
}
