//! Visibility example (§8.1): synchronized simulations can log every
//! component's activity without perturbing results, and the per-component
//! logs can be merged into an end-to-end view of where request/response
//! latency is spent — host TX, NIC/PCIe, network, remote host processing,
//! and the way back.
//!
//! The example runs a netperf request/response workload over two hosts with
//! Corundum NICs and a behavioural switch, then prints the activity summary
//! and the per-segment latency breakdown derived from the merged trace.
//!
//! Run with: `cargo run --release --example rpc_latency_breakdown`

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::base::trace::Phase;
use simbricks::hostsim::{HostConfig, HostKind, HostModel, NicModelKind};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

fn main() {
    // Request/response only (no stream phase): each transaction is one small
    // request and one small reply, so the breakdown below is per-RPC.
    let mut exp = Experiment::new("rpc-breakdown", SimTime::from_ms(12)).with_logging();
    let server_cfg = HostConfig::new(HostKind::Gem5Timing, 0).with_nic(NicModelKind::Corundum);
    let client_cfg = HostConfig::new(HostKind::Gem5Timing, 1).with_nic(NicModelKind::Corundum);
    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(
        server_cfg.ip,
        5201,
        5202,
        SimTime::from_ms(1), // minimal stream phase
        SimTime::from_ms(9), // request/response phase
    ));
    let (_s, _, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
    let (c, _, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig {
            ports: 2,
            ..Default::default()
        })),
        vec![s_eth, c_eth],
    );
    let result = exp.run(Execution::Sequential);

    let client: &HostModel = result.model(c).expect("client host");
    println!("client report: {}\n", client.report());

    let trace = result.trace();
    println!("trace entries: {}", trace.len());
    println!("\nper-component activity (tag -> events):");
    for ((component, tag), count) in trace.activity_summary() {
        println!("  {component:<14} {tag:<14} {count}");
    }

    // End-to-end RPC latency breakdown, restricted to the RR phase (after the
    // 1 ms stream phase has drained).
    let phases = vec![
        Phase::new("client.host", "host_tx", "client sends request"),
        Phase::new("client.nic", "nic_tx", "client NIC puts it on the wire"),
        Phase::new("server.nic", "nic_rx", "server NIC receives it"),
        Phase::new("server.host", "host_irq", "server interrupt raised"),
        Phase::new("server.host", "host_rx", "server app processes request"),
        Phase::new("server.nic", "nic_tx", "reply on the wire"),
        Phase::new("client.host", "host_rx", "client app sees the reply"),
    ];
    let breakdown = trace.breakdown(&phases);
    println!("\nend-to-end RPC latency breakdown (mean over all transactions):");
    println!("{breakdown}");
}
