//! Storage end-to-end example: a simulated host drives an NVMe SSD device
//! model through the SimBricks PCIe interface, running a fio-style random
//! read workload at several queue depths (§7.2: the PCIe interface
//! generalizes beyond NICs).
//!
//! Run with: `cargo run --release --example nvme_storage`

use simbricks::apps::{AccessPattern, FioConfig, FioWorkload};
use simbricks::hostsim::{HostKind, StorageHostConfig, StorageHostModel};
use simbricks::nvmesim::NvmeConfig;
use simbricks::runner::{attach_host_nvme, Execution, Experiment};
use simbricks::SimTime;

fn main() {
    println!("queue-depth sweep, 4 KiB random reads, QEMU-timing-like host, synchronized");
    println!("{:>4} {:>10} {:>14} {:>14}", "qd", "ops", "IOPS", "mean lat [us]");
    for qd in [1usize, 2, 4, 8, 16, 32] {
        let duration = SimTime::from_ms(20);
        let mut exp = Experiment::new("nvme-quickstart", duration + SimTime::from_ms(2));
        let workload = FioWorkload::new(FioConfig {
            queue_depth: qd,
            pattern: AccessPattern::Random,
            read_percent: 100,
            duration,
            ..Default::default()
        });
        let (host_id, _dev_id) = attach_host_nvme(
            &mut exp,
            "store",
            StorageHostConfig::new(HostKind::QemuTiming),
            Box::new(workload),
            NvmeConfig::default(),
        );
        let result = exp.run(Execution::Sequential);
        let host: &StorageHostModel = result.model(host_id).expect("storage host");
        let report = host.app_report();
        let field = |key: &str| {
            report
                .split_whitespace()
                .find_map(|t| t.strip_prefix(key).map(|v| v.trim_end_matches("us").to_string()))
                .unwrap_or_default()
        };
        println!(
            "{:>4} {:>10} {:>14} {:>14}",
            qd,
            host.stats().completed,
            field("iops="),
            field("mean_lat=")
        );
    }
}
