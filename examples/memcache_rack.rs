//! A small memcached rack: two servers and two memaslap-style clients on one
//! top-of-rack switch (a single rack of the Fig. 8 scale-out configuration).
//!
//! Run with: `cargo run --release --example memcache_rack`

use simbricks::apps::{MemaslapClient, MemcachedServer};
use simbricks::apps::memcache::MEMCACHE_PORT;
use simbricks::hostsim::{HostConfig, HostKind, HostModel};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::netstack::SocketAddr;
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

fn main() {
    let mut exp = Experiment::new("memcache-rack", SimTime::from_ms(50));
    let mut eth = Vec::new();
    let mut clients = Vec::new();

    let server_cfgs: Vec<_> = (0..2).map(|i| HostConfig::new(HostKind::QemuTiming, i)).collect();
    let server_addrs: Vec<SocketAddr> = server_cfgs
        .iter()
        .map(|c| SocketAddr::new(c.ip, MEMCACHE_PORT))
        .collect();

    for (i, cfg) in server_cfgs.iter().enumerate() {
        let (_h, _n, e) = attach_host_nic(
            &mut exp,
            &format!("server{i}"),
            *cfg,
            Box::new(MemcachedServer::new()),
            false,
        );
        eth.push(e);
    }
    for i in 0..2u32 {
        let cfg = HostConfig::new(HostKind::QemuTiming, 10 + i);
        let app = Box::new(MemaslapClient::new(server_addrs.clone(), 4, 64, SimTime::from_ms(40)));
        let (h, _n, e) = attach_host_nic(&mut exp, &format!("client{i}"), cfg, app, false);
        eth.push(e);
        clients.push(h);
    }
    exp.add(
        "tor-switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 4, ..Default::default() })),
        eth,
    );

    let result = exp.run(Execution::Sequential);
    println!("simulated {} in {:.2?}", result.virtual_time, result.wall);
    for (i, c) in clients.iter().enumerate() {
        let host: &HostModel = result.model(*c).unwrap();
        println!("client {i}: {}", host.app_report());
    }
}
