//! A small memcached rack — two servers, two memaslap-style clients, one
//! top-of-rack switch — loaded from the committed declarative scenario
//! `scenarios/memcache_rack.toml`.
//!
//! Run with: `cargo run --release --example memcache_rack`

use simbricks::hostsim::HostModel;
use simbricks::runner::{Execution, PartitionBuilder};
use simbricks::scenario::{lower, Scenario};

const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/memcache_rack.toml");

fn main() {
    let text = std::fs::read_to_string(SCENARIO)
        .unwrap_or_else(|e| panic!("reading {SCENARIO}: {e}"));
    let spec = Scenario::from_toml_str(&text).expect("scenario file validates");
    let mut pb = PartitionBuilder::new_local();
    let lowered = lower(&spec, &mut pb);
    let result = pb.into_experiment().run(Execution::Sequential);

    println!("simulated {} in {:.2?}", result.virtual_time, result.wall);
    for (name, id) in lowered.hosts.iter().filter(|(n, _)| n.starts_with("client")) {
        let host: &HostModel = result.model(*id).unwrap();
        println!("{name}: {}", host.app_report());
    }
}
