//! Quickstart: the smallest useful end-to-end simulation.
//!
//! Two simulated hosts (QEMU-timing-like), each with an Intel i40e NIC model,
//! connected through the behavioural Ethernet switch, running a netperf
//! TCP_STREAM + TCP_RR benchmark — the same shape as the paper's Tab. 1
//! configurations, scaled down to run in a few seconds.
//!
//! Run with: `cargo run --release --example quickstart`

use simbricks::apps::{NetperfClient, NetperfServer};
use simbricks::hostsim::{HostConfig, HostKind, HostModel};
use simbricks::netsim::{SwitchBm, SwitchConfig};
use simbricks::runner::{attach_host_nic, Execution, Experiment};
use simbricks::SimTime;

fn main() {
    let mut exp = Experiment::new("quickstart", SimTime::from_ms(60));

    let server_cfg = HostConfig::new(HostKind::QemuTiming, 0);
    let client_cfg = HostConfig::new(HostKind::QemuTiming, 1);

    let server_app = Box::new(NetperfServer::new(5201, 5202));
    let client_app = Box::new(NetperfClient::new(
        server_cfg.ip,
        5201,
        5202,
        SimTime::from_ms(25), // stream phase
        SimTime::from_ms(25), // request/response phase
    ));

    let (_s_host, _s_nic, s_eth) = attach_host_nic(&mut exp, "server", server_cfg, server_app, false);
    let (c_host, _c_nic, c_eth) = attach_host_nic(&mut exp, "client", client_cfg, client_app, false);
    exp.add(
        "switch",
        Box::new(SwitchBm::new(SwitchConfig { ports: 2, ..Default::default() })),
        vec![s_eth, c_eth],
    );

    let result = exp.run(Execution::Sequential);
    let client: &HostModel = result.model(c_host).expect("client host");
    println!("simulated {} of virtual time in {:.2?} wall clock", result.virtual_time, result.wall);
    println!("client report: {}", client.report());
    println!("total sync messages exchanged: {}", result.total_stats().syncs_sent);
}
